//! The deterministic data generator.

use crate::schema::create_schema;
use fto_common::{Result, Rng, Row, Value};
use fto_storage::Database;

/// Days-since-epoch bounds of the TPC-D order-date window (1992-01-01 to
/// 1998-08-02, as in the specification).
pub const DATE_LO: i32 = 8035;
/// Upper bound of the order-date window.
pub const DATE_HI: i32 = 10440;

/// The five TPC-D market segments.
pub const SEGMENTS: [&str; 5] = [
    "automobile",
    "building",
    "furniture",
    "machinery",
    "household",
];

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpcdConfig {
    /// Scale factor: 1.0 ≈ the paper's 1 GB database. The default 0.02
    /// generates ~120k lineitems — laptop-scale but large enough for the
    /// Table 1 shape to show.
    pub scale: f64,
    /// RNG seed; the same seed always yields the same database.
    pub seed: u64,
}

impl Default for TpcdConfig {
    fn default() -> Self {
        TpcdConfig {
            scale: 0.02,
            seed: 0x05ee_df70,
        }
    }
}

impl TpcdConfig {
    /// Row counts at this scale (TPC-D base cardinalities × scale).
    pub fn cardinalities(&self) -> Cardinalities {
        let s = self.scale.max(1e-4);
        Cardinalities {
            customers: ((150_000.0 * s) as i64).max(10),
            orders: ((1_500_000.0 * s) as i64).max(100),
            parts: ((200_000.0 * s) as i64).max(10),
            suppliers: ((10_000.0 * s) as i64).max(5),
        }
    }
}

/// Derived row counts.
#[derive(Clone, Copy, Debug)]
pub struct Cardinalities {
    /// customer rows.
    pub customers: i64,
    /// orders rows (lineitems are ~4× this).
    pub orders: i64,
    /// part rows.
    pub parts: i64,
    /// supplier rows.
    pub suppliers: i64,
}

/// Builds and loads the full database at the configured scale.
pub fn build_database(cfg: TpcdConfig) -> Result<Database> {
    let cat = create_schema()?;
    let mut db = Database::new(cat);
    let mut rng = Rng::new(cfg.seed);
    let n = cfg.cardinalities();

    // region / nation: fixed small dimensions.
    let region_names = ["africa", "america", "asia", "europe", "middle east"];
    let regions: Vec<Row> = region_names
        .iter()
        .enumerate()
        .map(|(i, name)| row(vec![Value::Int(i as i64), Value::str(*name)]))
        .collect();
    load(&mut db, "region", regions)?;

    let nations: Vec<Row> = (0..25)
        .map(|i| {
            row(vec![
                Value::Int(i),
                Value::Int(i % 5),
                Value::str(format!("nation{i:02}")),
            ])
        })
        .collect();
    load(&mut db, "nation", nations)?;

    let suppliers: Vec<Row> = (0..n.suppliers)
        .map(|i| {
            row(vec![
                Value::Int(i),
                Value::Int(rng.range_i64(0, 25)),
                Value::str(format!("supplier{i}")),
                Value::Double(round2(rng.range_f64(-999.0, 9999.0))),
            ])
        })
        .collect();
    load(&mut db, "supplier", suppliers)?;

    let customers: Vec<Row> = (0..n.customers)
        .map(|i| {
            row(vec![
                Value::Int(i),
                Value::str(format!("customer{i}")),
                Value::str(SEGMENTS[rng.range_usize(0, SEGMENTS.len())]),
                Value::Int(rng.range_i64(0, 25)),
                Value::Double(round2(rng.range_f64(-999.0, 9999.0))),
            ])
        })
        .collect();
    load(&mut db, "customer", customers)?;

    let parts: Vec<Row> = (0..n.parts)
        .map(|i| {
            row(vec![
                Value::Int(i),
                Value::str(format!("part{i}")),
                Value::str(format!("brand#{}", rng.range_i64(10, 60))),
                Value::Double(round2(rng.range_f64(900.0, 2000.0))),
            ])
        })
        .collect();
    load(&mut db, "part", parts)?;

    // orders + lineitem, correlated as in dbgen: each order has 1..7
    // lineitems whose ship dates follow the order date.
    let mut orders = Vec::with_capacity(n.orders as usize);
    let mut lineitems = Vec::new();
    let flags = ["a", "n", "r"];
    let statuses = ["f", "o"];
    for okey in 0..n.orders {
        let custkey = rng.range_i64(0, n.customers);
        let orderdate = rng.range_i32(DATE_LO, DATE_HI - 150);
        let nlines = rng.range_incl_i64(1, 7);
        let mut total = 0.0;
        for line in 0..nlines {
            let qty = rng.range_incl_i64(1, 50) as f64;
            let price = round2(qty * rng.range_f64(900.0, 2000.0) / 10.0);
            let discount = (rng.range_incl_i64(0, 10) as f64) / 100.0;
            let shipdate = orderdate + rng.range_incl_i64(1, 121) as i32;
            total += price * (1.0 - discount);
            lineitems.push(row(vec![
                Value::Int(okey),
                Value::Int(line),
                Value::Int(rng.range_i64(0, n.parts)),
                Value::Int(rng.range_i64(0, n.suppliers)),
                Value::Double(qty),
                Value::Double(price),
                Value::Double(discount),
                Value::Date(shipdate),
                Value::str(*rng.pick(&flags)),
                Value::str(*rng.pick(&statuses)),
            ]));
        }
        orders.push(row(vec![
            Value::Int(okey),
            Value::Int(custkey),
            Value::Date(orderdate),
            Value::Int(rng.range_i64(0, 3)),
            Value::Double(round2(total)),
        ]));
    }
    load(&mut db, "orders", orders)?;
    load(&mut db, "lineitem", lineitems)?;

    Ok(db)
}

fn load(db: &mut Database, table: &str, rows: Vec<Row>) -> Result<()> {
    let id = db.catalog().table_by_name(table)?.id;
    db.load_table(id, rows)
}

fn row(values: Vec<Value>) -> Row {
    values.into_boxed_slice()
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_at_tiny_scale() {
        let db = build_database(TpcdConfig {
            scale: 0.001,
            seed: 1,
        })
        .unwrap();
        let cat = db.catalog();
        let orders = cat.table_by_name("orders").unwrap().id;
        let lineitem = cat.table_by_name("lineitem").unwrap().id;
        let o = cat.stats(orders).row_count;
        let l = cat.stats(lineitem).row_count;
        assert!(o >= 100);
        // ~4 lineitems per order on average (1..=7 uniform).
        let ratio = l as f64 / o as f64;
        assert!((3.0..5.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = TpcdConfig {
            scale: 0.001,
            seed: 42,
        };
        let a = build_database(cfg).unwrap();
        let b = build_database(cfg).unwrap();
        let ta = a.catalog().table_by_name("lineitem").unwrap().id;
        let tb = b.catalog().table_by_name("lineitem").unwrap().id;
        assert_eq!(a.heap(ta).unwrap().rows(), b.heap(tb).unwrap().rows());
    }

    #[test]
    fn lineitem_heap_is_clustered_by_orderkey() {
        let db = build_database(TpcdConfig {
            scale: 0.001,
            seed: 7,
        })
        .unwrap();
        let li = db.catalog().table_by_name("lineitem").unwrap().id;
        let heap = db.heap(li).unwrap();
        let mut last = i64::MIN;
        for r in heap.rows() {
            let k = r[0].as_int().unwrap();
            assert!(k >= last);
            last = k;
        }
    }

    #[test]
    fn shipdate_follows_orderdate() {
        let db = build_database(TpcdConfig {
            scale: 0.001,
            seed: 7,
        })
        .unwrap();
        let cat = db.catalog();
        let orders = db.heap(cat.table_by_name("orders").unwrap().id).unwrap();
        let li = db.heap(cat.table_by_name("lineitem").unwrap().id).unwrap();
        let odates: std::collections::HashMap<i64, i32> = orders
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[2].as_date().unwrap()))
            .collect();
        for r in li.rows().iter().take(500) {
            let ok = r[0].as_int().unwrap();
            let ship = r[7].as_date().unwrap();
            let odate = odates[&ok];
            assert!(ship > odate && ship <= odate + 121);
        }
    }

    #[test]
    fn segments_are_spread() {
        let db = build_database(TpcdConfig {
            scale: 0.002,
            seed: 9,
        })
        .unwrap();
        let cust = db
            .heap(db.catalog().table_by_name("customer").unwrap().id)
            .unwrap();
        let building = cust
            .rows()
            .iter()
            .filter(|r| r[2].as_str() == Some("building"))
            .count();
        let frac = building as f64 / cust.row_count() as f64;
        assert!((0.1..0.35).contains(&frac), "{frac}");
    }

    #[test]
    fn cardinalities_scale() {
        let c = TpcdConfig {
            scale: 0.1,
            seed: 0,
        }
        .cardinalities();
        assert_eq!(c.customers, 15_000);
        assert_eq!(c.orders, 150_000);
        assert_eq!(c.suppliers, 1_000);
    }
}
