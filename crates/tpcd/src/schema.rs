//! The TPC-D-style schema definition.

use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Result};

/// Creates the seven-table TPC-D schema in a fresh catalog.
pub fn create_schema() -> Result<Catalog> {
    let mut cat = Catalog::new();

    cat.create_table(
        "region",
        vec![
            ColumnDef::new("r_regionkey", DataType::Int),
            ColumnDef::new("r_name", DataType::Str),
        ],
        vec![KeyDef::primary([0])],
    )?;

    cat.create_table(
        "nation",
        vec![
            ColumnDef::new("n_nationkey", DataType::Int),
            ColumnDef::new("n_regionkey", DataType::Int),
            ColumnDef::new("n_name", DataType::Str),
        ],
        vec![KeyDef::primary([0])],
    )?;

    let supplier = cat.create_table(
        "supplier",
        vec![
            ColumnDef::new("s_suppkey", DataType::Int),
            ColumnDef::new("s_nationkey", DataType::Int),
            ColumnDef::new("s_name", DataType::Str),
            ColumnDef::new("s_acctbal", DataType::Double),
        ],
        vec![KeyDef::primary([0])],
    )?;
    cat.create_index(
        "s_nation_ix",
        supplier,
        vec![(1, Direction::Asc)],
        false,
        false,
    )?;

    let customer = cat.create_table(
        "customer",
        vec![
            ColumnDef::new("c_custkey", DataType::Int),
            ColumnDef::new("c_name", DataType::Str),
            ColumnDef::new("c_mktsegment", DataType::Str),
            ColumnDef::new("c_nationkey", DataType::Int),
            ColumnDef::new("c_acctbal", DataType::Double),
        ],
        vec![KeyDef::primary([0])],
    )?;
    cat.create_index(
        "c_mktsegment_ix",
        customer,
        vec![(2, Direction::Asc)],
        false,
        false,
    )?;

    let part = cat.create_table(
        "part",
        vec![
            ColumnDef::new("p_partkey", DataType::Int),
            ColumnDef::new("p_name", DataType::Str),
            ColumnDef::new("p_brand", DataType::Str),
            ColumnDef::new("p_retailprice", DataType::Double),
        ],
        vec![KeyDef::primary([0])],
    )?;
    let _ = part;

    let orders = cat.create_table(
        "orders",
        vec![
            ColumnDef::new("o_orderkey", DataType::Int),
            ColumnDef::new("o_custkey", DataType::Int),
            ColumnDef::new("o_orderdate", DataType::Date),
            ColumnDef::new("o_shippriority", DataType::Int),
            ColumnDef::new("o_totalprice", DataType::Double),
        ],
        vec![KeyDef::primary([0])],
    )?;
    cat.create_index(
        "o_custkey_ix",
        orders,
        vec![(1, Direction::Asc)],
        false,
        false,
    )?;
    cat.create_index(
        "o_orderdate_ix",
        orders,
        vec![(2, Direction::Asc)],
        false,
        false,
    )?;

    let lineitem = cat.create_table(
        "lineitem",
        vec![
            ColumnDef::new("l_orderkey", DataType::Int),
            ColumnDef::new("l_linenumber", DataType::Int),
            ColumnDef::new("l_partkey", DataType::Int),
            ColumnDef::new("l_suppkey", DataType::Int),
            ColumnDef::new("l_quantity", DataType::Double),
            ColumnDef::new("l_extendedprice", DataType::Double),
            ColumnDef::new("l_discount", DataType::Double),
            ColumnDef::new("l_shipdate", DataType::Date),
            ColumnDef::new("l_returnflag", DataType::Str),
            ColumnDef::new("l_linestatus", DataType::Str),
        ],
        vec![KeyDef::unique([0, 1])],
    )?;
    // The clustered index on l_orderkey: the paper's ordered nested-loop
    // join into lineitem depends on it (Figure 7's "clustered index on
    // l_orderkey").
    cat.create_index(
        "l_orderkey_ix",
        lineitem,
        vec![(0, Direction::Asc), (1, Direction::Asc)],
        true,
        true,
    )?;
    cat.create_index(
        "l_shipdate_ix",
        lineitem,
        vec![(7, Direction::Asc)],
        false,
        false,
    )?;

    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_with_expected_tables() {
        let cat = create_schema().unwrap();
        for t in [
            "region", "nation", "supplier", "customer", "part", "orders", "lineitem",
        ] {
            assert!(cat.table_by_name(t).is_ok(), "{t}");
        }
    }

    #[test]
    fn lineitem_clustered_on_orderkey() {
        let cat = create_schema().unwrap();
        let li = cat.table_by_name("lineitem").unwrap();
        let clustered: Vec<_> = cat.indexes_for(li.id).filter(|ix| ix.clustered).collect();
        assert_eq!(clustered.len(), 1);
        assert_eq!(clustered[0].key[0].0, 0); // leads with l_orderkey
        assert!(clustered[0].unique);
    }

    #[test]
    fn orders_has_pk_and_secondary_indexes() {
        let cat = create_schema().unwrap();
        let orders = cat.table_by_name("orders").unwrap();
        assert_eq!(cat.indexes_for(orders.id).count(), 3);
        assert!(orders.primary_key().is_some());
    }
}
