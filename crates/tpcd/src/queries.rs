//! The workload queries, as SQL text for the fto-sql front end.

/// TPC-D Query 3 exactly as the paper states it (§8.1): shipping priority
/// and potential revenue of the orders with the largest revenue among
/// those not yet shipped as of a date.
pub fn q3(date: &str, segment: &str) -> String {
    format!(
        "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as rev, \
         o_orderdate, o_shippriority \
         from customer, orders, lineitem \
         where o_orderkey = l_orderkey \
         and c_custkey = o_custkey \
         and c_mktsegment = '{segment}' \
         and o_orderdate < date('{date}') \
         and l_shipdate > date('{date}') \
         group by l_orderkey, o_orderdate, o_shippriority \
         order by rev desc, o_orderdate"
    )
}

/// Q3 with the paper's parameters.
pub fn q3_default() -> String {
    q3("1995-03-15", "building")
}

/// A TPC-D Q1-style pricing summary: wide aggregation over lineitem with
/// a small grouping key.
pub fn q1(ship_cutoff: &str) -> String {
    format!(
        "select l_returnflag, l_linestatus, \
         sum(l_quantity) as sum_qty, \
         sum(l_extendedprice) as sum_base_price, \
         sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
         avg(l_quantity) as avg_qty, \
         avg(l_discount) as avg_disc, \
         count(*) as count_order \
         from lineitem \
         where l_shipdate <= date('{ship_cutoff}') \
         group by l_returnflag, l_linestatus \
         order by l_returnflag, l_linestatus"
    )
}

/// An order-priority style query: joins orders to customer, groups on a
/// key column plus functionally dependent columns (the redundancy the
/// paper says real queries are full of — reduction removes it).
pub fn order_report() -> String {
    "select o_orderkey, o_orderdate, o_totalprice, c_name \
     from customer, orders \
     where c_custkey = o_custkey \
     group by o_orderkey, o_orderdate, o_totalprice, c_name \
     order by o_orderkey"
        .to_string()
}

/// The paper's §6 example shape: a three-table join whose single
/// sort-ahead satisfies a merge join, the GROUP BY, and the ORDER BY.
pub fn section6_example() -> String {
    "select o_orderkey, o_orderdate, sum(l_extendedprice) \
     from orders, lineitem \
     where o_orderkey = l_orderkey \
     group by o_orderkey, o_orderdate \
     order by o_orderkey"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q3_contains_paper_parameters() {
        let sql = q3_default();
        assert!(sql.contains("'building'"));
        assert!(sql.contains("1995-03-15"));
        assert!(sql.contains("order by rev desc, o_orderdate"));
        assert!(sql.contains("group by l_orderkey, o_orderdate, o_shippriority"));
    }

    #[test]
    fn queries_are_nonempty() {
        for q in [
            q3_default(),
            q1("1998-09-02"),
            order_report(),
            section6_example(),
        ] {
            assert!(q.to_lowercase().starts_with("select"));
        }
    }
}
