//! External-sort machinery: row-granular run formation under a memory
//! budget, byte-serialized spill runs, and streaming multi-pass K-way
//! merges over them.
//!
//! The bounded [`SortOp`](crate::stream) drives a [`RunFormer`]: input
//! rows accumulate in memory until the next row would push the working
//! set past the budget, at which point the buffered rows are sorted with
//! the shared kernel and spilled as one [`SortedRun`] — tagged with the
//! rows' global input positions, so merging the runs by `(keys, seq)`
//! reproduces the unbounded stable sort bit for bit. When the input ends,
//! runs beyond the merge fan-in ([`fto_planner::cost::MERGE_FAN_IN`]) are
//! reduced level by level (each level is one *merge pass*, the unit the
//! cost model prices in [`fto_planner::cost::sort_spill_passes`]); the
//! final ≤F runs stream through a [`RunMerge`] that the operator pulls
//! batch by batch, so the sorted output is never materialized whole.
//!
//! On-spill record format (one length-prefixed record per row, via
//! [`SpillFile::append_record`]):
//!
//! ```text
//! [u64 seq LE][u32 klen LE][klen key bytes][row (spill value serde)]
//! ```
//!
//! `klen` is zero on the legacy (non-codec) path; on the codec path the
//! key is the decorated normalized key (`key ‖ big-endian seq`), so a
//! merge compares one byte slice per heap step exactly like the in-memory
//! [`crate::sortkernel::merge_runs`].

use crate::sortkernel::{self, cmp_rows, SortKeys, SortedRun};
use fto_common::{row_bytes, Row};
use fto_planner::cost::MERGE_FAN_IN;
use fto_storage::{spill, IoStats, SpillCursor, SpillFile};
use std::cmp::Ordering;

/// Extent (byte range) of one sorted run inside a spill file.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RunExtent {
    start: u64,
    end: u64,
}

/// Appends one run row record to `file` (see the module docs for the
/// format), reusing `payload` as scratch.
fn append_run_row(
    file: &mut SpillFile,
    payload: &mut Vec<u8>,
    row: &Row,
    seq: u64,
    key: &[u8],
    io: &mut IoStats,
) {
    payload.clear();
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    spill::write_row(row, payload);
    file.append_record(payload, io);
}

/// Serializes a sorted run to the spill file, charging
/// `spill_pages_written` as pages fill.
fn spill_sorted_run(file: &mut SpillFile, run: &SortedRun, io: &mut IoStats) -> RunExtent {
    let start = file.len();
    let mut payload = Vec::new();
    for i in 0..run.rows.len() {
        let key: &[u8] = run.enc.get(i).map(Vec::as_slice).unwrap_or(&[]);
        append_run_row(file, &mut payload, &run.rows[i], run.seqs[i], key, io);
    }
    RunExtent {
        start,
        end: file.len(),
    }
}

/// One decoded run head waiting in a merge.
struct Head {
    row: Row,
    seq: u64,
    /// Decorated normalized key; empty on the legacy path.
    key: Vec<u8>,
}

fn read_head(cursor: &mut SpillCursor, file: &SpillFile, io: &mut IoStats) -> Option<Head> {
    let rec = cursor.read_record(file, io)?;
    let seq = u64::from_le_bytes(rec[0..8].try_into().expect("spill record truncated"));
    let klen = u32::from_le_bytes(rec[8..12].try_into().expect("spill record truncated")) as usize;
    let key = rec[12..12 + klen].to_vec();
    let mut pos = 12 + klen;
    let row = spill::read_row(&rec, &mut pos);
    Some(Head { row, seq, key })
}

/// A streaming K-way merge over spilled run extents: holds one decoded
/// head per run plus a cursor, so memory stays O(fan-in) regardless of
/// run sizes. Reads charge `spill_pages_read` through the cursors.
pub(crate) struct RunMerge {
    cursors: Vec<SpillCursor>,
    heads: Vec<Option<Head>>,
}

impl RunMerge {
    fn new(file: &SpillFile, extents: &[RunExtent], io: &mut IoStats) -> RunMerge {
        let mut cursors: Vec<SpillCursor> = extents
            .iter()
            .map(|e| SpillCursor::new(e.start, e.end))
            .collect();
        let heads = cursors.iter_mut().map(|c| read_head(c, file, io)).collect();
        RunMerge { cursors, heads }
    }

    /// Pops the minimum head by `(keys, seq)` and refills it from its
    /// cursor. Runs that both carry stored keys compare by memcmp (the
    /// seq suffix embedded in the key decides ties); otherwise the
    /// `Value` comparator with the explicit seq tiebreak — the same
    /// contract as the in-memory merge.
    fn next_head(&mut self, file: &SpillFile, keys: &SortKeys, io: &mut IoStats) -> Option<Head> {
        let mut best: Option<usize> = None;
        let mut cmps = 0u64;
        for (k, head) in self.heads.iter().enumerate() {
            let Some(h) = head else { continue };
            best = match best {
                None => Some(k),
                Some(b) => {
                    let bh = self.heads[b].as_ref().expect("best head vacated");
                    cmps += 1;
                    let less = if !h.key.is_empty() && !bh.key.is_empty() {
                        h.key < bh.key
                    } else {
                        cmp_rows(&h.row, &bh.row, keys).then(h.seq.cmp(&bh.seq)) == Ordering::Less
                    };
                    if less {
                        Some(k)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        sortkernel::charge(0, cmps);
        let k = best?;
        let next = read_head(&mut self.cursors[k], file, io);
        std::mem::replace(&mut self.heads[k], next)
    }
}

/// Reduces spilled runs to at most `MERGE_FAN_IN` by merging groups of up
/// to F runs into new runs appended to the same file, level by level.
/// Each level is one merge pass ([`sortkernel::SpillStats`]); reads and
/// writes charge the spill page counters as the data actually moves.
fn reduce_to_fan_in(
    file: &mut SpillFile,
    mut extents: Vec<RunExtent>,
    keys: &SortKeys,
    io: &mut IoStats,
) -> Vec<RunExtent> {
    while extents.len() > MERGE_FAN_IN {
        sortkernel::note_merge_pass();
        let mut next = Vec::with_capacity(extents.len().div_ceil(MERGE_FAN_IN));
        for chunk in extents.chunks(MERGE_FAN_IN) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let start = file.len();
            let mut merge = RunMerge::new(file, chunk, io);
            let mut payload = Vec::new();
            while let Some(h) = merge.next_head(file, keys, io) {
                append_run_row(file, &mut payload, &h.row, h.seq, &h.key, io);
            }
            next.push(RunExtent {
                start,
                end: file.len(),
            });
        }
        extents = next;
    }
    extents
}

/// The spilled half of a finished external sort: the final ≤F runs and
/// the streaming merge over them, pulled row by row from `next_batch`.
pub(crate) struct SpilledSort {
    file: SpillFile,
    merge: RunMerge,
}

impl SpilledSort {
    /// The next row of the merged (fully sorted) output, or `None` when
    /// every run is drained.
    pub(crate) fn next_row(&mut self, keys: &SortKeys, io: &mut IoStats) -> Option<Row> {
        self.merge.next_head(&self.file, keys, io).map(|h| h.row)
    }
}

/// What a [`RunFormer`] produced once the input ended.
pub(crate) enum FinishedSort {
    /// Nothing spilled: the whole input, sorted in memory (the unbounded
    /// fast path, with identical I/O and kernel accounting).
    InMemory(Vec<Row>),
    /// At least one run spilled: stream the final merge.
    Spilled(SpilledSort),
}

/// Row-granular run formation for the bounded sort. The working set —
/// buffered rows ([`fto_common::row_bytes`]) plus their decorated keys on
/// the codec path — never exceeds `max(budget, one row)`; crossing the
/// budget seals the buffer into a sorted, spilled run.
pub(crate) struct RunFormer {
    budget: usize,
    codec: bool,
    keys: SortKeys,
    file: SpillFile,
    extents: Vec<RunExtent>,
    rows: Vec<Row>,
    /// Key arena for the buffered rows (codec path): row `i`'s normalized
    /// key is `key_bytes[key_offsets[i]..key_offsets[i + 1]]`.
    key_bytes: Vec<u8>,
    key_offsets: Vec<usize>,
    bytes: usize,
    /// Global input position of `rows[0]`.
    base_seq: u64,
    next_seq: u64,
}

impl RunFormer {
    pub(crate) fn new(budget: usize, codec: bool, keys: SortKeys) -> RunFormer {
        RunFormer {
            budget,
            codec,
            keys,
            file: SpillFile::new(),
            extents: Vec::new(),
            rows: Vec::new(),
            key_bytes: Vec::new(),
            key_offsets: vec![0],
            bytes: 0,
            base_seq: 0,
            next_seq: 0,
        }
    }

    /// Buffers one input row (with its arena-encoded normalized key on
    /// the codec path), sealing the current run first when the row would
    /// push the working set past the budget.
    pub(crate) fn push(&mut self, row: Row, key: Option<&[u8]>, io: &mut IoStats) {
        debug_assert_eq!(key.is_some(), self.codec);
        // The decorated key a sealed run stores is `key ‖ 8-byte seq`.
        let cost = row_bytes(&row) + key.map_or(0, |k| k.len() + 8);
        if !self.rows.is_empty() && self.bytes + cost > self.budget {
            self.seal(io);
        }
        self.bytes += cost;
        if let Some(k) = key {
            self.key_bytes.extend_from_slice(k);
            self.key_offsets.push(self.key_bytes.len());
        }
        self.rows.push(row);
        self.next_seq += 1;
    }

    /// Sorts the buffered rows into a run tagged with their global input
    /// positions and spills it. Charges `sort_rows` per run, so the
    /// external sort's total equals the unbounded operator's.
    fn seal(&mut self, io: &mut IoStats) {
        if self.rows.is_empty() {
            return;
        }
        let rows = std::mem::take(&mut self.rows);
        io.sort_rows += rows.len() as u64;
        let run = if self.codec {
            let mut run = sortkernel::sort_run_arena(rows, &self.key_bytes, &self.key_offsets);
            run.shift(self.base_seq);
            run
        } else {
            sortkernel::sort_tagged(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, r)| (self.base_seq + i as u64, r))
                    .collect(),
                &self.keys,
            )
        };
        let extent = spill_sorted_run(&mut self.file, &run, io);
        self.extents.push(extent);
        sortkernel::note_spill_runs(1);
        self.key_bytes.clear();
        self.key_offsets.clear();
        self.key_offsets.push(0);
        self.bytes = 0;
        self.base_seq = self.next_seq;
    }

    /// Ends the input. When nothing spilled, the buffer is sorted in
    /// memory exactly as the unbounded operator would (arena kernel on
    /// the codec path, comparator otherwise). Otherwise the tail seals as
    /// the last run, runs reduce to the merge fan-in, and the final
    /// streaming merge — itself one pass — takes over.
    pub(crate) fn finish(mut self, io: &mut IoStats) -> FinishedSort {
        if self.extents.is_empty() {
            let mut rows = std::mem::take(&mut self.rows);
            io.sort_rows += rows.len() as u64;
            if self.codec {
                sortkernel::sort_rows_arena(
                    &mut rows,
                    &self.key_bytes,
                    &self.key_offsets,
                    &self.keys,
                );
            } else {
                sortkernel::sort_rows_with(&mut rows, &self.keys, false);
            }
            return FinishedSort::InMemory(rows);
        }
        self.seal(io);
        let extents = reduce_to_fan_in(&mut self.file, self.extents, &self.keys, io);
        sortkernel::note_merge_pass();
        let merge = RunMerge::new(&self.file, &extents, io);
        FinishedSort::Spilled(SpilledSort {
            file: self.file,
            merge,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::{Direction, Value};

    fn row(k: i64, v: &str) -> Row {
        vec![Value::Int(k), Value::Str(v.into())].into_boxed_slice()
    }

    fn drive(budget: usize, codec: bool, n: i64) -> (Vec<Row>, IoStats) {
        let keys: SortKeys = vec![(0, Direction::Desc), (1, Direction::Asc)];
        let mut io = IoStats::new();
        let mut former = RunFormer::new(budget, codec, keys.clone());
        for i in 0..n {
            let r = row(i % 7, &format!("row-{i}"));
            let key: Option<Vec<u8>> = codec.then(|| {
                let mut k = Vec::new();
                fto_common::sortkey::encode_key_into(&r, &keys, &mut k);
                k
            });
            former.push(r, key.as_deref(), &mut io);
        }
        let mut out = Vec::new();
        match former.finish(&mut io) {
            FinishedSort::InMemory(rows) => out = rows,
            FinishedSort::Spilled(mut s) => {
                while let Some(r) = s.next_row(&keys, &mut io) {
                    out.push(r);
                }
            }
        }
        (out, io)
    }

    #[test]
    fn spilled_sort_matches_in_memory_both_paths() {
        let (unbounded, io0) = drive(usize::MAX, true, 500);
        assert_eq!(io0.spill_pages_written, 0);
        for codec in [false, true] {
            for budget in [1usize, 512, 4096, 1 << 20] {
                let (got, io) = drive(budget, codec, 500);
                assert_eq!(got, unbounded, "codec={codec} budget={budget}");
                assert_eq!(io.sort_rows, 500, "sort_rows must match unbounded");
                if budget < 4096 {
                    assert!(io.spill_pages_written > 0, "budget={budget} must spill");
                    assert!(io.spill_pages_read > 0, "budget={budget} must read back");
                }
            }
        }
    }

    #[test]
    fn tiny_budget_forms_many_runs_and_multi_passes() {
        let before = sortkernel::spill_stats_snapshot();
        let (out, io) = drive(1, true, 200);
        let delta = sortkernel::spill_stats_snapshot().delta_since(before);
        assert_eq!(out.len(), 200);
        // One row per run: 200 runs need ceil(log_8 200) = 3 passes. Other
        // tests share the process-wide counters, so assert lower bounds.
        assert!(delta.runs_formed >= 200, "runs {}", delta.runs_formed);
        assert!(delta.merge_passes >= 3, "passes {}", delta.merge_passes);
        assert!(io.spill_pages_written > 0 && io.spill_pages_read > 0);
    }
}
