//! Machine-readable per-operator execution metrics.
//!
//! [`crate::stream::execute_plan_instrumented`] wraps every operator in
//! the lowered tree and records, per plan node, the rows and batches it
//! produced, the simulated I/O charged while its subtree was running, and
//! the wall-clock time spent inside it. Nodes are identified by their
//! *pre-order* position in the plan tree (root = 0, children visited
//! outer/left first) — the same numbering
//! [`fto_planner::Plan::explain_annotated`] passes to its annotation
//! callback, so metrics line up with rendered plans without any joins.
//!
//! Recorded counters are **inclusive** of children: an operator's slot
//! accumulates everything charged between entering and leaving its
//! subtree. Exclusive ("self") figures are derived by subtracting the
//! children's inclusive counters, which makes the rollup loss-free by
//! construction: summing every node's self delta telescopes back to the
//! root's inclusive total, which is exactly the session-level
//! [`IoStats`]. The subtraction is checked — a child charging more than
//! its parent observed is an attribution bug and surfaces as `None`
//! rather than a silently wrong report.

use fto_storage::IoStats;
use std::time::Duration;

/// The cardinality Q-error between an estimate and an actual: the
/// multiplicative factor `max(est, act) / min(est, act)` by which the
/// estimate missed, always ≥ 1.0 (1.0 = exact). Both sides are clamped
/// to ≥ 1.0 first, so "estimated 0.2 rows, saw 0" is not an infinite
/// error — sub-row disagreements cannot be acted on and are treated as
/// exact.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let est = est.max(1.0);
    let actual = actual.max(1.0);
    est.max(actual) / est.min(actual)
}

/// Execution metrics recorded for one plan operator.
///
/// `io` and `elapsed` are inclusive of the operator's children; see the
/// module docs. Use [`PlanMetrics::self_io`] / [`PlanMetrics::self_elapsed`]
/// for exclusive figures.
#[derive(Clone, Debug, Default)]
pub struct OpMetrics {
    /// Operator name, as [`fto_planner::Plan::op_name`] renders it.
    pub name: String,
    /// Rows this operator returned to its parent.
    pub rows: u64,
    /// Non-empty batches this operator returned to its parent.
    pub batches: u64,
    /// Simulated I/O charged while this operator's subtree was running
    /// (inclusive of children).
    pub io: IoStats,
    /// Wall-clock time spent inside this operator's subtree (inclusive).
    pub elapsed: Duration,
    /// Per-worker contributions when this node ran under an exchange at
    /// parallel degree > 1. Empty for serial execution. The workers'
    /// rows sum to the exchange input's total; their `io` sums into this
    /// node's inclusive `io`, so the rollup invariant is unaffected.
    pub workers: Vec<WorkerOpMetrics>,
    /// The planner's row estimate for this operator
    /// ([`fto_planner::Cost::rows`]), recorded at lowering time so
    /// estimates sit next to actuals in one place.
    pub est_rows: f64,
    /// The planner's page-cost estimate for this operator's own work
    /// ([`fto_planner::Plan::self_cost`]).
    pub est_cost: f64,
    /// For segmented sorts, the planner's prefix-group-count estimate;
    /// `None` for every other operator.
    pub est_groups: Option<u64>,
    /// For segmented sorts, the number of prefix groups actually sealed;
    /// 0 elsewhere.
    pub segment_groups: u64,
}

impl OpMetrics {
    /// The cardinality Q-error of this operator's row estimate
    /// (see [`q_error`]).
    pub fn rows_q_error(&self) -> f64 {
        q_error(self.est_rows, self.rows as f64)
    }
}

/// One worker's share of an exchange-parallel operator's work.
#[derive(Clone, Debug, Default)]
pub struct WorkerOpMetrics {
    /// Rows this worker produced into the exchange.
    pub rows: u64,
    /// Non-empty batches this worker pulled from its partition pipeline.
    pub batches: u64,
    /// Simulated I/O charged by this worker's partition pipeline.
    pub io: IoStats,
    /// Wall-clock time this worker spent draining (and, for parallel
    /// sorts, sorting) its partition.
    pub elapsed: Duration,
}

/// Per-operator metrics for one execution of a plan.
///
/// `ops[id]` holds the metrics of the plan node with pre-order id `id`;
/// `children[id]` lists that node's direct children's ids.
#[derive(Clone, Debug)]
pub struct PlanMetrics {
    /// One entry per plan node, indexed by pre-order id.
    pub ops: Vec<OpMetrics>,
    /// Direct-children ids per node, parallel to `ops`.
    pub children: Vec<Vec<usize>>,
}

impl PlanMetrics {
    /// Number of instrumented operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operators were instrumented.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// I/O charged by operator `id` itself, excluding its children:
    /// the node's inclusive counters minus each child's inclusive
    /// counters. Returns `None` when a child recorded more than the
    /// parent observed — an attribution bug, never a legitimate state.
    pub fn self_io(&self, id: usize) -> Option<IoStats> {
        let mut acc = self.ops[id].io;
        for &c in &self.children[id] {
            acc = acc.checked_sub(&self.ops[c].io)?;
        }
        Some(acc)
    }

    /// Wall-clock time spent in operator `id` itself, excluding children
    /// (saturating: timer jitter can make the difference marginally
    /// negative).
    pub fn self_elapsed(&self, id: usize) -> Duration {
        let mut acc = self.ops[id].elapsed;
        for &c in &self.children[id] {
            acc = acc.saturating_sub(self.ops[c].elapsed);
        }
        acc
    }

    /// The root's inclusive I/O — equal to the session-level totals for
    /// the execution that produced these metrics.
    pub fn total_io(&self) -> IoStats {
        self.ops.first().map(|m| m.io).unwrap_or_default()
    }

    /// Sum of every operator's *self* I/O. Equals [`PlanMetrics::total_io`]
    /// whenever attribution is consistent (the sum telescopes); `None` if
    /// any node fails [`PlanMetrics::self_io`].
    pub fn summed_self_io(&self) -> Option<IoStats> {
        let mut total = IoStats::new();
        for id in 0..self.ops.len() {
            total.merge(&self.self_io(id)?);
        }
        Some(total)
    }

    /// The operator with the worst row-estimate Q-error, as
    /// `(pre-order id, q_error)`. Ties resolve to the smallest id, so
    /// the answer is deterministic. `None` only when there are no ops.
    pub fn worst_q_error(&self) -> Option<(usize, f64)> {
        let mut worst: Option<(usize, f64)> = None;
        for (id, op) in self.ops.iter().enumerate() {
            let q = op.rows_q_error();
            if worst.map(|(_, w)| q > w).unwrap_or(true) {
                worst = Some((id, q));
            }
        }
        worst
    }

    /// Checks the rollup invariant: every node's self delta is
    /// well-defined and their sum equals the root's inclusive total.
    /// Returns a description of the first violation, if any.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for id in 0..self.ops.len() {
            if self.self_io(id).is_none() {
                return Err(format!(
                    "operator {id} ({}): children charged more I/O than the node observed",
                    self.ops[id].name
                ));
            }
        }
        let summed = self.summed_self_io().expect("checked above");
        let total = self.total_io();
        if summed != total {
            return Err(format!(
                "summed self I/O ({summed}) != root inclusive I/O ({total})"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(seq: u64, rand: u64) -> IoStats {
        IoStats {
            sequential_pages: seq,
            random_pages: rand,
            ..IoStats::new()
        }
    }

    fn m(name: &str, rows: u64, io: IoStats) -> OpMetrics {
        OpMetrics {
            name: name.to_string(),
            rows,
            batches: 1,
            io,
            elapsed: Duration::from_micros(10),
            est_rows: rows as f64,
            ..OpMetrics::default()
        }
    }

    #[test]
    fn self_io_subtracts_children_and_sums_to_total() {
        // sort(0) -> filter(1) -> scan(2); scan charges 5 seq pages,
        // filter adds nothing, sort adds 2 random (spill proxy).
        let pm = PlanMetrics {
            ops: vec![
                m("sort", 10, io(5, 2)),
                m("filter", 10, io(5, 0)),
                m("table-scan", 40, io(5, 0)),
            ],
            children: vec![vec![1], vec![2], vec![]],
        };
        assert_eq!(pm.self_io(0), Some(io(0, 2)));
        assert_eq!(pm.self_io(1), Some(io(0, 0)));
        assert_eq!(pm.self_io(2), Some(io(5, 0)));
        assert_eq!(pm.summed_self_io(), Some(io(5, 2)));
        assert_eq!(pm.total_io(), io(5, 2));
        assert!(pm.validate().is_ok());
    }

    #[test]
    fn inconsistent_attribution_is_detected() {
        // Child claims more pages than the parent observed.
        let pm = PlanMetrics {
            ops: vec![m("limit", 1, io(1, 0)), m("table-scan", 1, io(3, 0))],
            children: vec![vec![1], vec![]],
        };
        assert_eq!(pm.self_io(0), None);
        assert!(pm.validate().is_err());
    }

    #[test]
    fn q_error_is_symmetric_and_clamps_below_one_row() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        // Sub-row estimates and zero actuals are treated as exact-ish:
        // both sides clamp to 1 before dividing.
        assert_eq!(q_error(0.2, 0.0), 1.0);
        assert_eq!(q_error(0.0, 5.0), 5.0);
        assert!(q_error(f64::NAN.max(1.0), 1.0) >= 1.0);
    }

    #[test]
    fn worst_q_error_picks_largest_with_smallest_id_on_ties() {
        let mut a = m("scan", 100, io(1, 0));
        a.est_rows = 100.0; // q = 1
        let mut b = m("filter", 10, io(1, 0));
        b.est_rows = 40.0; // q = 4
        let mut c = m("sort", 10, io(1, 0));
        c.est_rows = 40.0; // q = 4, ties with b -> b (smaller id) wins
        let pm = PlanMetrics {
            ops: vec![a, b, c],
            children: vec![vec![1], vec![2], vec![]],
        };
        assert_eq!(pm.worst_q_error(), Some((1, 4.0)));
    }
}
