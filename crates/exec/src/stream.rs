//! The streaming, batched (Volcano-style) executor — columnar batches.
//!
//! Plans are lowered to a tree of [`Operator`]s. Each operator exposes
//! `open` / `next_batch` / `close` and data flows upward in columnar
//! [`Batch`]es ([`fto_common::column`]) of at most
//! [`ExecContext::batch_size`] rows (default 1024). Scans pull through
//! the batched cursors in `fto_storage::scan`, so simulated page I/O is
//! charged as pages are actually touched — a `LIMIT 10` over a
//! million-row table pays for the handful of pages behind the ten rows it
//! returns, not the whole heap.
//!
//! Hot operators run columnar: filters refine a selection vector with
//! typed kernels and gather survivors (never materializing rows),
//! projections of bare column references are `Arc` clones, hash group-by
//! computes its keys by byte-encoding the grouping columns
//! column-at-a-time, and the sort's codec path encodes normalized keys
//! straight from the column vectors. Operators with inherently row-wise
//! logic (joins, order-based group-by, distinct) materialize rows through
//! `Batch::row`/`to_rows` — the transition shims the columnar redesign
//! keeps until those paths are vectorized in turn.
//!
//! Pipeline breakers: [`PlanNode::Sort`], [`PlanNode::TopN`], and
//! [`PlanNode::HashGroupBy`] must consume their whole input before
//! producing anything and drain it at `open`. Join operators materialize
//! only their *inner* (build) side; the outer side streams. Everything
//! else — filter, project, order-based group-by / distinct, merge join,
//! limit, union — is fully streaming.
//!
//! The executor is row-for-row equivalent to the materializing reference
//! interpreter in [`crate::interp`] (enforced by the differential test
//! suite), including output order: streaming operators reproduce the
//! reference engine's exact emission order, not merely the same bag of
//! rows.

use crate::extsort::{FinishedSort, RunFormer, SpilledSort};
use crate::interp::{concat, eval_preds, positions};
use crate::metrics::{OpMetrics, PlanMetrics};
use crate::parallel::{
    GatherOp, MergeExchangeOp, PartitionSpec, RepartitionSortOp, TopNExchangeOp,
};
use crate::sortkernel::{self, resolve_keys, SortKeys};
use fto_common::column::encode_batch_keys_arena;
use fto_common::{
    row_bytes, sortkey, ColId, Direction, FtoError, IndexId, Result, Row, TableId, Value,
};
use fto_expr::{agg::Accumulator, vector, AggCall, Expr, PredId, RowLayout};
use fto_obs::profile;
use fto_planner::{Plan, PlanNode, ScanRange};
use fto_qgm::QueryGraph;
use fto_storage::{
    spill, BufferPool, Database, HeapScanState, IndexScanState, IoStats, PageCursor, SpillCursor,
    SpillFile,
};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The columnar batch flowing between operators. Operators never return
/// an empty batch: exhaustion is signalled by `None` from
/// [`Operator::next_batch`].
pub use fto_common::column::Batch;

/// Result of a streaming execution: the produced batches plus I/O and
/// timing. The row-based reference engine keeps its own
/// [`crate::interp::QueryResult`]; the differential suites hold the two
/// bit-identical.
#[derive(Debug)]
pub struct StreamResult {
    /// Output batches in emission order (none of them empty).
    pub batches: Vec<Batch>,
    /// Simulated I/O charged during execution.
    pub io: IoStats,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl StreamResult {
    /// Total output row count (no materialization).
    pub fn num_rows(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }

    /// Materializes the output as rows, in emission order.
    pub fn rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.num_rows());
        for b in &self.batches {
            b.append_rows_to(&mut out);
        }
        out
    }
}

/// Execution-wide state passed to every operator call.
pub struct ExecContext<'a> {
    /// The database supplying heaps and indexes.
    pub db: &'a Database,
    /// The query graph (predicate definitions live here).
    pub graph: &'a QueryGraph,
    /// Maximum rows per batch (always ≥ 1).
    pub batch_size: usize,
    /// Degree of parallelism this execution was lowered with (always ≥ 1;
    /// worker-side contexts are always 1 so pipelines never nest
    /// exchanges).
    pub threads: usize,
    /// Whether sort-heavy operators use the normalized binary key codec
    /// ([`fto_common::sortkey`]) instead of the `Value` comparator. Both
    /// paths produce bit-identical output; this gates the fast path so
    /// the differential suite can prove it.
    pub sort_key_codec: bool,
    /// Per-query memory budget in bytes for pipeline breakers, or `None`
    /// for unbounded in-memory execution. When set, sort and Top-N bound
    /// their buffered working sets (spilling sorted runs), hash group-by
    /// spills overflow partitions, and the hash-join build side spills
    /// rows past the budget — all bit-identical to unbounded execution.
    pub memory_budget: Option<usize>,
    /// The bounded buffer pool heap-page touches route through when a
    /// budget is set (`budget / PAGE_SIZE` frames, clock eviction);
    /// `None` leaves page charging exactly as before. `RefCell` because
    /// operators share the context immutably; each context (coordinator
    /// or per-worker, which gets `budget / P`) owns a private pool used
    /// only by its own thread, and borrows are taken only around leaf
    /// page touches, never across child calls.
    pub pool: Option<RefCell<BufferPool>>,
    /// Timeline profiler for this execution, or `None` (the default).
    /// Event *emission* is thread-local (see [`fto_obs::profile`]); this
    /// handle exists so exchange coordinators can allocate and install
    /// per-worker lanes deterministically before spawning. Profiling
    /// only observes: rows, [`IoStats`], and metric rollups are
    /// bit-identical with or without it.
    pub profiler: Option<fto_obs::Profiler>,
}

impl<'a> ExecContext<'a> {
    /// The single construction site for execution contexts: clamps
    /// `batch_size` and `threads` to at least 1 in one place, so the
    /// serial, instrumented, and per-worker contexts cannot diverge on
    /// the clamping rule.
    ///
    /// A memory budget composes with parallelism: the coordinator's
    /// pipeline keeps the full budget (and its buffer pool), while each
    /// exchange worker rebuilds its context with `budget / P` (at least
    /// one byte) and a private pool — see
    /// [`crate::parallel`]. Workers' spill streams are private and merge
    /// into the session stream in partition order, so the exact-
    /// accounting invariants hold and rows stay bit-identical at every
    /// `(budget, threads)` combination.
    pub fn new(db: &'a Database, graph: &'a QueryGraph, opts: &ExecOptions) -> ExecContext<'a> {
        let memory_budget = opts.memory_budget;
        let threads = opts.threads.max(1);
        ExecContext {
            db,
            graph,
            batch_size: opts.batch_size.max(1),
            threads,
            sort_key_codec: opts.sort_key_codec,
            memory_budget,
            pool: memory_budget.map(|b| RefCell::new(BufferPool::new(b))),
            profiler: opts.profiler.clone(),
        }
    }

    /// Runs `f` with a mutable borrow of the buffer pool (or `None` when
    /// unbounded). Callers must not re-enter child operators inside `f`.
    fn with_pool<R>(&self, f: impl FnOnce(Option<&mut BufferPool>) -> R) -> R {
        match &self.pool {
            Some(pool) => f(Some(&mut pool.borrow_mut())),
            None => f(None),
        }
    }
}

/// A streaming operator in the lowered plan tree.
///
/// Lifecycle: `open` once, `next_batch` until it returns `Ok(None)`,
/// then `close`. Operators own their children and drive them through the
/// same protocol.
pub trait Operator {
    /// Acquires resources and opens children. Pipeline breakers drain
    /// their input here, charging any buffering I/O (e.g. `sort_rows`).
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()>;

    /// Produces the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>>;

    /// Releases buffered state. Called once; also safe to call early to
    /// abandon a partially consumed stream.
    fn close(&mut self) {}
}

/// Tuning options for [`execute_plan`].
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Rows per batch (clamped to ≥ 1).
    pub batch_size: usize,
    /// Degree of intra-query parallelism (clamped to ≥ 1). With `1`,
    /// lowering inserts no exchange operators and execution is exactly
    /// the classic single-threaded pipeline.
    pub threads: usize,
    /// Use the normalized binary key codec for sorts, exchange merges,
    /// merge-join tie detection, and index probes (default on). Off
    /// keeps the legacy `Value`-comparator paths; output is identical
    /// either way.
    pub sort_key_codec: bool,
    /// Per-query memory budget in bytes, or `None` (the default) for
    /// unbounded execution. See [`ExecContext::memory_budget`].
    pub memory_budget: Option<usize>,
    /// Timeline profiler to attach, or `None` (the default; zero
    /// overhead beyond one thread-local branch per hook). See
    /// [`ExecContext::profiler`].
    pub profiler: Option<fto_obs::Profiler>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            batch_size: 1024,
            threads: 1,
            sort_key_codec: true,
            memory_budget: None,
            profiler: None,
        }
    }
}

/// Lowers a plan to its streaming operator tree without running it.
///
/// Most callers want [`execute_plan`] (or [`crate::Session`]); this is
/// exposed for drivers that consume batches incrementally.
pub fn compile_pipeline(plan: &Plan) -> Result<Box<dyn Operator>> {
    lower(plan)
}

/// Executes a plan to completion through the streaming executor.
pub fn execute_plan(
    db: &Database,
    graph: &QueryGraph,
    plan: &Plan,
    opts: &ExecOptions,
) -> Result<StreamResult> {
    let start = Instant::now();
    let mut io = IoStats::new();
    let cx = ExecContext::new(db, graph, opts);
    let mut root = lower_impl(plan, &mut LowerCx::new(None, cx.threads))?;
    root.open(&cx, &mut io)?;
    let mut batches = Vec::new();
    while let Some(batch) = root.next_batch(&cx, &mut io)? {
        batches.push(batch);
    }
    root.close();
    Ok(StreamResult {
        batches,
        io,
        elapsed: start.elapsed(),
    })
}

/// [`execute_plan`] with per-operator instrumentation: every lowered
/// operator is wrapped so that rows/batches produced, subtree-inclusive
/// [`IoStats`] deltas, and elapsed time are recorded per plan node,
/// returned as a [`PlanMetrics`] alongside the normal result.
///
/// Metric slots are indexed by the plan's pre-order node id (root = 0,
/// children outer/left first), matching
/// [`fto_planner::Plan::explain_annotated`]. The query result is
/// identical to the uninstrumented path — the wrappers only observe.
pub fn execute_plan_instrumented(
    db: &Database,
    graph: &QueryGraph,
    plan: &Plan,
    opts: &ExecOptions,
) -> Result<(StreamResult, PlanMetrics)> {
    let start = Instant::now();
    let mut io = IoStats::new();
    let cx = ExecContext::new(db, graph, opts);
    // Lane 0 = the coordinator thread, for the lifetime of this
    // execution. Workers install their own lanes (see crate::parallel).
    let _lane = cx.profiler.as_ref().map(|p| p.install_lane("coordinator"));
    let slots = Arc::new(Mutex::new(Vec::new()));
    let mut root = lower_impl(
        plan,
        &mut LowerCx::new(Some(Arc::clone(&slots)), cx.threads),
    )?;
    root.open(&cx, &mut io)?;
    let mut batches = Vec::new();
    while let Some(batch) = root.next_batch(&cx, &mut io)? {
        batches.push(batch);
    }
    root.close();
    drop(root);
    let ops = Arc::try_unwrap(slots)
        .expect("all operator wrappers dropped")
        .into_inner()
        .expect("metrics mutex poisoned");
    let metrics = PlanMetrics {
        ops,
        children: preorder_children(plan),
    };
    Ok((
        StreamResult {
            batches,
            io,
            elapsed: start.elapsed(),
        },
        metrics,
    ))
}

/// Direct-children ids per plan node under pre-order numbering — the
/// tree shape half of [`PlanMetrics`].
fn preorder_children(plan: &Plan) -> Vec<Vec<usize>> {
    fn walk(p: &Plan, out: &mut Vec<Vec<usize>>) -> usize {
        let id = out.len();
        out.push(Vec::new());
        for c in p.children() {
            let cid = walk(c, out);
            out[id].push(cid);
        }
        id
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

// ---------------------------------------------------------------------
// Shared bits
// ---------------------------------------------------------------------

/// Rows produced faster than they are consumed; drained in batch-size
/// chunks.
#[derive(Default)]
struct OutQueue {
    rows: VecDeque<Row>,
}

impl OutQueue {
    fn push(&mut self, row: Row) {
        self.rows.push_back(row);
    }

    fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn take(&mut self, n: usize) -> Batch {
        let n = n.min(self.rows.len());
        let rows: Vec<Row> = self.rows.drain(..n).collect();
        Batch::from_rows(&rows)
    }

    fn clear(&mut self) {
        self.rows.clear();
    }
}

pub(crate) fn drain_all(
    child: &mut Box<dyn Operator>,
    cx: &ExecContext<'_>,
    io: &mut IoStats,
) -> Result<Vec<Row>> {
    child.open(cx, io)?;
    let mut rows = Vec::new();
    while let Some(batch) = child.next_batch(cx, io)? {
        batch.append_rows_to(&mut rows);
    }
    child.close();
    Ok(rows)
}

fn key_of(row: &Row, pos: &[usize]) -> Vec<Value> {
    pos.iter().map(|&p| row[p].clone()).collect()
}

// ---------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------

struct ScanOp {
    table: TableId,
    /// Which page-aligned partition of the heap this cursor walks;
    /// `(0, 1)` outside worker pipelines, i.e. the whole heap.
    part: usize,
    parts: usize,
    state: HeapScanState,
}

impl Operator for ScanOp {
    fn open(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<()> {
        let heap = cx.db.heap(self.table)?;
        self.state = HeapScanState::partition(heap, self.part, self.parts);
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        let heap = cx.db.heap(self.table)?;
        let batch = cx.with_pool(|pool| {
            self.state
                .next_columns_pooled(heap, cx.batch_size, io, pool)
        });
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

struct IndexScanOp {
    index: IndexId,
    table: TableId,
    range: Option<ScanRange>,
    reverse: bool,
    /// Which leaf-aligned partition of the matching entries this cursor
    /// walks, in *emission* order; `(0, 1)` outside worker pipelines.
    part: usize,
    parts: usize,
    state: Option<IndexScanState>,
}

impl Operator for IndexScanOp {
    fn open(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<()> {
        let ix = cx.db.index(self.index)?;
        let (lo, hi) = match &self.range {
            Some(ScanRange { lo, hi }) => (lo.as_ref(), hi.as_ref()),
            None => (None, None),
        };
        // `open_partition` counts partitions in key order; a reverse scan
        // emits high keys first, so emission-order partition `part` is
        // key-order partition `parts - 1 - part`.
        let kpart = if self.reverse {
            self.parts - 1 - self.part
        } else {
            self.part
        };
        self.state = Some(IndexScanState::open_partition(
            ix,
            lo,
            hi,
            self.reverse,
            kpart,
            self.parts,
        ));
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        let ix = cx.db.index(self.index)?;
        let heap = cx.db.heap(self.table)?;
        let state = self
            .state
            .as_mut()
            .ok_or_else(|| FtoError::internal("index scan used before open"))?;
        let batch =
            cx.with_pool(|pool| state.next_columns_pooled(ix, heap, cx.batch_size, io, pool));
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }

    fn close(&mut self) {
        self.state = None;
    }
}

// ---------------------------------------------------------------------
// Row-at-a-time streamers
// ---------------------------------------------------------------------

struct FilterOp {
    child: Box<dyn Operator>,
    predicates: Vec<PredId>,
    layout: RowLayout,
}

impl Operator for FilterOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.child.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        loop {
            let Some(batch) = self.child.next_batch(cx, io)? else {
                return Ok(None);
            };
            // Refine a selection vector predicate by predicate — typed
            // column kernels where the predicate shape allows, the row
            // evaluator over still-selected rows otherwise. Sequential
            // refinement preserves the row path's short-circuit AND:
            // rows rejected by an earlier predicate never reach (and so
            // never error in) a later one.
            let mut sel: Vec<u32> = (0..batch.len() as u32).collect();
            for pid in &self.predicates {
                if sel.is_empty() {
                    break;
                }
                vector::filter_selection(cx.graph.predicate(*pid), &batch, &self.layout, &mut sel)?;
            }
            if sel.len() == batch.len() {
                return Ok(Some(batch));
            }
            if !sel.is_empty() {
                return Ok(Some(batch.gather(&sel)));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

struct ProjectOp {
    child: Box<dyn Operator>,
    exprs: Vec<Expr>,
    layout: RowLayout,
}

impl Operator for ProjectOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.child.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        let Some(batch) = self.child.next_batch(cx, io)? else {
            return Ok(None);
        };
        Ok(Some(vector::project_batch(
            &self.exprs,
            &batch,
            &self.layout,
        )?))
    }

    fn close(&mut self) {
        self.child.close();
    }
}

struct LimitOp {
    child: Box<dyn Operator>,
    remaining: u64,
}

impl Operator for LimitOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.child.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            // Early termination: the child is never pulled again, so the
            // pages behind unproduced rows are never charged.
            self.child.close();
            return Ok(None);
        }
        let Some(mut batch) = self.child.next_batch(cx, io)? else {
            return Ok(None);
        };
        if batch.len() as u64 > self.remaining {
            let keep: Vec<u32> = (0..self.remaining as u32).collect();
            batch = batch.gather(&keep);
        }
        self.remaining -= batch.len() as u64;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// All of a batch's columns as ascending sort keys — the encoding keys a
/// distinct operator deduplicates whole rows under.
fn all_cols_asc(batch: &Batch) -> SortKeys {
    (0..batch.arity()).map(|p| (p, Direction::Asc)).collect()
}

struct StreamDistinctOp {
    child: Box<dyn Operator>,
    /// Last emitted row (legacy comparator path).
    last: Option<Row>,
    /// Last emitted row's encoded key (codec path). The codec
    /// canonicalizes exactly like `Value`'s `Eq` (both follow
    /// `total_cmp`), so byte equality drops precisely the rows the
    /// legacy path drops.
    last_key: Option<Vec<u8>>,
}

impl Operator for StreamDistinctOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.last = None;
        self.last_key = None;
        self.child.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        let (mut kb, mut ko) = (Vec::new(), Vec::new());
        loop {
            let Some(batch) = self.child.next_batch(cx, io)? else {
                return Ok(None);
            };
            let mut out = Vec::new();
            if cx.sort_key_codec {
                // Vectorized: rows become memcmp-able byte strings
                // column-at-a-time; adjacent duplicates drop on slice
                // inequality without walking `Value`s per column.
                encode_batch_keys_arena(&batch, &all_cols_asc(&batch), &mut kb, &mut ko);
                for i in 0..batch.len() {
                    let key = &kb[ko[i]..ko[i + 1]];
                    if self.last_key.as_deref() != Some(key) {
                        self.last_key = Some(key.to_vec());
                        out.push(batch.row(i));
                    }
                }
            } else {
                for i in 0..batch.len() {
                    let row = batch.row(i);
                    if self.last.as_ref().map(|prev| prev != &row).unwrap_or(true) {
                        self.last = Some(row.clone());
                        out.push(row);
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(&out)));
            }
        }
    }

    fn close(&mut self) {
        self.last = None;
        self.last_key = None;
        self.child.close();
    }
}

struct HashDistinctOp {
    child: Box<dyn Operator>,
    /// Legacy comparator path: rows seen so far.
    seen: HashSet<Row>,
    /// Codec path: encoded keys seen so far (byte equality ≡ the legacy
    /// path's `Value` equality, see [`StreamDistinctOp`]).
    seen_keys: HashSet<Vec<u8>>,
}

impl Operator for HashDistinctOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.seen.clear();
        self.seen_keys.clear();
        self.child.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        let (mut kb, mut ko) = (Vec::new(), Vec::new());
        loop {
            let Some(batch) = self.child.next_batch(cx, io)? else {
                return Ok(None);
            };
            let mut out = Vec::new();
            if cx.sort_key_codec {
                encode_batch_keys_arena(&batch, &all_cols_asc(&batch), &mut kb, &mut ko);
                for i in 0..batch.len() {
                    let key = &kb[ko[i]..ko[i + 1]];
                    if !self.seen_keys.contains(key) {
                        self.seen_keys.insert(key.to_vec());
                        out.push(batch.row(i));
                    }
                }
            } else {
                for i in 0..batch.len() {
                    let row = batch.row(i);
                    if self.seen.insert(row.clone()) {
                        out.push(row);
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(Batch::from_rows(&out)));
            }
        }
    }

    fn close(&mut self) {
        self.seen.clear();
        self.seen_keys.clear();
        self.child.close();
    }
}

struct UnionAllOp {
    children: Vec<Box<dyn Operator>>,
    current: usize,
    opened: bool,
}

impl Operator for UnionAllOp {
    fn open(&mut self, _cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<()> {
        // Children open lazily, one at a time, as the union advances.
        self.current = 0;
        self.opened = false;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        while self.current < self.children.len() {
            let child = &mut self.children[self.current];
            if !self.opened {
                child.open(cx, io)?;
                self.opened = true;
            }
            match child.next_batch(cx, io)? {
                Some(batch) => return Ok(Some(batch)),
                None => {
                    child.close();
                    self.current += 1;
                    self.opened = false;
                }
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        for c in &mut self.children {
            c.close();
        }
    }
}

// ---------------------------------------------------------------------
// Pipeline breakers
// ---------------------------------------------------------------------

struct SortOp {
    child: Box<dyn Operator>,
    keys: SortKeys,
    buf: Vec<Row>,
    pos: usize,
    /// The spilled external sort, when a memory budget forced one; the
    /// final K-way merge streams from here instead of `buf`.
    spilled: Option<SpilledSort>,
}

impl SortOp {
    /// The bounded path: rows feed a [`RunFormer`] that seals and spills
    /// sorted runs as the working set crosses the budget. Run tags are
    /// global input positions, so the merged output — and `sort_rows`,
    /// charged per run — is bit-identical to the unbounded operator at
    /// any budget.
    fn open_bounded(
        &mut self,
        budget: usize,
        cx: &ExecContext<'_>,
        io: &mut IoStats,
    ) -> Result<()> {
        let encode = cx.sort_key_codec && !self.keys.is_empty();
        self.child.open(cx, io)?;
        let mut former = RunFormer::new(budget, encode, self.keys.clone());
        let (mut bb, mut bo) = (Vec::new(), Vec::new());
        let mut rows = Vec::new();
        while let Some(batch) = self.child.next_batch(cx, io)? {
            if encode {
                encode_batch_keys_arena(&batch, &self.keys, &mut bb, &mut bo);
            }
            rows.clear();
            batch.append_rows_to(&mut rows);
            for (i, row) in rows.drain(..).enumerate() {
                let key = encode.then(|| &bb[bo[i]..bo[i + 1]]);
                former.push(row, key, io);
            }
        }
        self.child.close();
        match former.finish(io) {
            FinishedSort::InMemory(sorted) => {
                self.buf = sorted;
                self.pos = 0;
            }
            FinishedSort::Spilled(s) => self.spilled = Some(s),
        }
        Ok(())
    }
}

impl Operator for SortOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        if let Some(budget) = cx.memory_budget {
            return self.open_bounded(budget, cx, io);
        }
        // Under the codec, sort keys are encoded column-at-a-time while
        // the input is still columnar — a tight per-type loop per key
        // column — and the pre-encoded keys are handed to the kernel.
        // Byte output (and therefore `sort.key_bytes` accounting) is
        // identical to the kernel's own per-row encoding pass.
        let encode = cx.sort_key_codec && !self.keys.is_empty();
        self.child.open(cx, io)?;
        let mut rows = Vec::new();
        // Key arena accumulated across batches: one backing buffer, no
        // per-row allocation during encoding.
        let mut key_bytes: Vec<u8> = Vec::new();
        let mut key_offsets: Vec<usize> = vec![0];
        let (mut bb, mut bo) = (Vec::new(), Vec::new());
        while let Some(batch) = self.child.next_batch(cx, io)? {
            if encode {
                encode_batch_keys_arena(&batch, &self.keys, &mut bb, &mut bo);
                let base = key_bytes.len();
                key_bytes.extend_from_slice(&bb);
                key_offsets.extend(bo[1..].iter().map(|&o| base + o));
            }
            batch.append_rows_to(&mut rows);
        }
        self.child.close();
        io.sort_rows += rows.len() as u64;
        if encode {
            sortkernel::sort_rows_arena(&mut rows, &key_bytes, &key_offsets, &self.keys);
        } else {
            sortkernel::sort_rows_with(&mut rows, &self.keys, cx.sort_key_codec);
        }
        self.buf = rows;
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        if let Some(spilled) = &mut self.spilled {
            // Stream the final merge: the fully sorted output is never
            // materialized whole, only one batch of rows at a time.
            let mut rows = Vec::with_capacity(cx.batch_size);
            while rows.len() < cx.batch_size {
                match spilled.next_row(&self.keys, io) {
                    Some(row) => rows.push(row),
                    None => break,
                }
            }
            if rows.is_empty() {
                return Ok(None);
            }
            return Ok(Some(Batch::from_rows(&rows)));
        }
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let end = (self.pos + cx.batch_size).min(self.buf.len());
        let batch = Batch::from_rows(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.buf = Vec::new();
        self.spilled = None;
    }
}

/// One sealed prefix group awaiting emission from a segmented sort: an
/// in-memory sorted group, or the streaming merge of an oversized group
/// that external-sorted under the memory budget.
enum SegmentEmit {
    Mem(Vec<Row>, usize),
    Spill(SpilledSort),
}

/// Segmented (partial) sort: the input already arrives ordered on the
/// first `prefix_len` sort keys, so rows sharing a prefix value are
/// contiguous and only the residual suffix keys need sorting — one
/// prefix group at a time.
///
/// Unlike [`SortOp`], this is *not* a pipeline breaker: groups are pulled,
/// sorted, and emitted incrementally, so memory stays bounded by the
/// largest group (plus one input batch) and a `LIMIT n` above stops
/// pulling input after the first ⌈n / group⌉ groups. Group boundaries are
/// detected by encoded-prefix byte equality on the codec path and by
/// `Value::total_cmp` equality otherwise — the codec is injective up to
/// `total_cmp`, so both paths cut identical groups. Each group sorts
/// stably on the suffix keys alone (its prefix columns are all equal, so
/// this equals the full-key sort), and concatenating groups in arrival
/// order reproduces the global stable sort bit for bit. Under a memory
/// budget every group feeds a per-group [`RunFormer`], so a single
/// oversized group external-sorts exactly like the bounded [`SortOp`].
struct SegmentedSortOp {
    child: Box<dyn Operator>,
    /// Prefix keys (boundary detection) and suffix keys (per-group sort).
    pkeys: SortKeys,
    skeys: SortKeys,
    /// Prefix key positions for the legacy comparator path.
    ppos: Vec<usize>,
    /// Current group: rows plus their suffix-key arena (codec path).
    grp_rows: Vec<Row>,
    grp_kb: Vec<u8>,
    grp_ko: Vec<usize>,
    /// Current group's prefix identity: encoded bytes (codec path) or a
    /// representative row (legacy path).
    lead_enc: Vec<u8>,
    lead_row: Option<Row>,
    group_started: bool,
    /// Per-group run former (present only under a memory budget).
    former: Option<RunFormer>,
    /// Sealed groups not yet emitted, in arrival order.
    emits: VecDeque<SegmentEmit>,
    input_done: bool,
    /// This node's metric slot, when instrumented: sealed groups count
    /// into [`OpMetrics::segment_groups`] so EXPLAIN ANALYZE can show
    /// the actual group count next to the planner's estimate.
    slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
}

impl SegmentedSortOp {
    fn new(
        child: Box<dyn Operator>,
        keys: SortKeys,
        prefix_len: usize,
        slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    ) -> SegmentedSortOp {
        let (pkeys, skeys) = {
            let (p, s) = keys.split_at(prefix_len.min(keys.len()));
            (p.to_vec(), s.to_vec())
        };
        SegmentedSortOp {
            child,
            ppos: pkeys.iter().map(|&(p, _)| p).collect(),
            pkeys,
            skeys,
            grp_rows: Vec::new(),
            grp_kb: Vec::new(),
            grp_ko: vec![0],
            lead_enc: Vec::new(),
            lead_row: None,
            group_started: false,
            former: None,
            emits: VecDeque::new(),
            input_done: false,
            slot,
        }
    }

    /// Sorts and queues the current group for emission (no-op when no
    /// group is open). Counts one formed group toward the process-wide
    /// segmented-sort statistics.
    fn seal_group(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) {
        if !self.group_started {
            return;
        }
        sortkernel::note_segment_groups(1);
        if let Some((id, slots)) = &self.slot {
            slots.lock().expect("metrics mutex poisoned")[*id].segment_groups += 1;
        }
        if let Some(former) = self.former.take() {
            // The former charged `sort_rows` per run itself.
            match former.finish(io) {
                FinishedSort::InMemory(sorted) => self.emits.push_back(SegmentEmit::Mem(sorted, 0)),
                FinishedSort::Spilled(s) => self.emits.push_back(SegmentEmit::Spill(s)),
            }
        } else {
            let mut rows = std::mem::take(&mut self.grp_rows);
            io.sort_rows += rows.len() as u64;
            if cx.sort_key_codec {
                sortkernel::sort_rows_arena(&mut rows, &self.grp_kb, &self.grp_ko, &self.skeys);
            } else {
                sortkernel::sort_rows_with(&mut rows, &self.skeys, false);
            }
            self.emits.push_back(SegmentEmit::Mem(rows, 0));
        }
        self.grp_kb.clear();
        self.grp_ko.clear();
        self.grp_ko.push(0);
        self.group_started = false;
    }

    /// Absorbs one input batch, sealing groups at every prefix boundary.
    fn absorb(&mut self, batch: &Batch, cx: &ExecContext<'_>, io: &mut IoStats) {
        let codec = cx.sort_key_codec;
        let (mut pb, mut po) = (Vec::new(), Vec::new());
        let (mut sb, mut so) = (Vec::new(), Vec::new());
        if codec {
            encode_batch_keys_arena(batch, &self.pkeys, &mut pb, &mut po);
            encode_batch_keys_arena(batch, &self.skeys, &mut sb, &mut so);
        }
        for i in 0..batch.len() {
            let row = batch.row(i);
            let pref = codec.then(|| &pb[po[i]..po[i + 1]]);
            let boundary = self.group_started
                && match &pref {
                    Some(pref) => **pref != self.lead_enc[..],
                    None => {
                        let lead = self.lead_row.as_ref().expect("open group without lead");
                        !same_key(lead, &row, &self.ppos)
                    }
                };
            if boundary {
                self.seal_group(cx, io);
            }
            if !self.group_started {
                self.group_started = true;
                match &pref {
                    Some(pref) => {
                        self.lead_enc.clear();
                        self.lead_enc.extend_from_slice(pref);
                    }
                    None => self.lead_row = Some(row.clone()),
                }
                if let Some(budget) = cx.memory_budget {
                    self.former = Some(RunFormer::new(budget, codec, self.skeys.clone()));
                }
            }
            match &mut self.former {
                Some(former) => former.push(row, codec.then(|| &sb[so[i]..so[i + 1]]), io),
                None => {
                    if codec {
                        self.grp_kb.extend_from_slice(&sb[so[i]..so[i + 1]]);
                        self.grp_ko.push(self.grp_kb.len());
                    }
                    self.grp_rows.push(row);
                }
            }
        }
    }
}

impl Operator for SegmentedSortOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.grp_rows = Vec::new();
        self.grp_kb = Vec::new();
        self.grp_ko = vec![0];
        self.group_started = false;
        self.former = None;
        self.emits = VecDeque::new();
        self.input_done = false;
        self.child.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        loop {
            // Drain sealed groups first, in arrival order.
            match self.emits.front_mut() {
                Some(SegmentEmit::Mem(rows, pos)) => {
                    if *pos < rows.len() {
                        let end = (*pos + cx.batch_size).min(rows.len());
                        let batch = Batch::from_rows(&rows[*pos..end]);
                        *pos = end;
                        return Ok(Some(batch));
                    }
                    self.emits.pop_front();
                    continue;
                }
                Some(SegmentEmit::Spill(s)) => {
                    let mut rows = Vec::with_capacity(cx.batch_size);
                    while rows.len() < cx.batch_size {
                        match s.next_row(&self.skeys, io) {
                            Some(row) => rows.push(row),
                            None => break,
                        }
                    }
                    if !rows.is_empty() {
                        return Ok(Some(Batch::from_rows(&rows)));
                    }
                    self.emits.pop_front();
                    continue;
                }
                None => {}
            }
            if self.input_done {
                return Ok(None);
            }
            match self.child.next_batch(cx, io)? {
                Some(batch) => self.absorb(&batch, cx, io),
                None => {
                    self.input_done = true;
                    self.child.close();
                    self.seal_group(cx, io);
                }
            }
        }
    }

    fn close(&mut self) {
        self.grp_rows = Vec::new();
        self.grp_kb = Vec::new();
        self.former = None;
        self.emits = VecDeque::new();
        self.child.close();
    }
}

struct TopNOp {
    child: Box<dyn Operator>,
    keys: SortKeys,
    n: u64,
    buf: Vec<Row>,
    pos: usize,
}

impl TopNOp {
    /// The bounded path: candidates carry their global input positions
    /// and the buffer is pruned back to the current top `n` by
    /// `(keys, seq)` whenever it crosses the budget (or `2n` rows,
    /// whichever comes first). A row outside the running top `n` can
    /// never re-enter it, so the survivors — and their order — are
    /// exactly the unbounded operator's stable-sort prefix. Memory stays
    /// under `max(budget, 2n rows)` with no spilling.
    fn open_bounded(
        &mut self,
        budget: usize,
        cx: &ExecContext<'_>,
        io: &mut IoStats,
    ) -> Result<()> {
        let n = self.n as usize;
        self.child.open(cx, io)?;
        let mut pending: Vec<(u64, Row)> = Vec::new();
        let mut bytes = 0usize;
        let mut seq = 0u64;
        while let Some(batch) = self.child.next_batch(cx, io)? {
            for i in 0..batch.len() {
                let row = batch.row(i);
                bytes += row_bytes(&row);
                pending.push((seq, row));
                seq += 1;
                if pending.len() > n && (bytes > budget || pending.len() >= 2 * n.max(1)) {
                    pending = sortkernel::top_n_tagged(std::mem::take(&mut pending), &self.keys, n);
                    bytes = pending.iter().map(|(_, r)| row_bytes(r)).sum();
                }
            }
        }
        self.child.close();
        let top = sortkernel::top_n_tagged(pending, &self.keys, n);
        io.sort_rows += top.len() as u64;
        self.buf = top.into_iter().map(|(_, row)| row).collect();
        self.pos = 0;
        Ok(())
    }
}

impl Operator for TopNOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        if let Some(budget) = cx.memory_budget {
            return self.open_bounded(budget, cx, io);
        }
        let rows = drain_all(&mut self.child, cx, io)?;
        let top = sortkernel::top_n_with(rows, &self.keys, self.n as usize, cx.sort_key_codec);
        io.sort_rows += top.len() as u64;
        self.buf = top;
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<Option<Batch>> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let end = (self.pos + cx.batch_size).min(self.buf.len());
        let batch = Batch::from_rows(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.buf = Vec::new();
    }
}

/// Number of key-hash partitions a budgeted hash group-by (or its
/// recursive sub-aggregations) spills overflow rows into.
const GROUP_SPILL_PARTITIONS: usize = 8;

/// Recursion depth past which a partition aggregates fully in memory — a
/// correctness backstop; the per-level salted hash makes reaching it
/// essentially impossible (each level also retires at least one key).
const MAX_GROUP_SPILL_DEPTH: usize = 6;

/// FNV-1a over an encoded grouping key, salted per recursion level so a
/// partition's keys re-split differently when it recurses. Hashing the
/// *encoded* key makes the partitioning codec-independent: the group-by
/// always encodes keys for its hash table, on either comparator path.
fn partition_hash(key: &[u8], salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The grouping machinery resolved once per execution: key positions,
/// their ascending sort keys (for the codec encoder), and the aggregate
/// argument expressions.
struct GroupEnv {
    gpos: Vec<usize>,
    gkeys: SortKeys,
    args: Vec<Expr>,
}

/// In-flight state of one (sub)aggregation in the bounded hash group-by:
/// the in-memory groups (each remembering the global position of its
/// first row, which fixes its output rank), the byte-keyed index over
/// them, the tracked working-set size, and — once the budget is crossed —
/// the key-hash partitions overflow rows spill into.
#[derive(Default)]
struct GroupState {
    groups: Vec<(Vec<Value>, Vec<Accumulator>, u64)>,
    index: HashMap<Vec<u8>, usize>,
    bytes: usize,
    parts: Vec<SpillFile>,
}

struct HashGroupByOp {
    child: Box<dyn Operator>,
    grouping: Vec<ColId>,
    aggs: Vec<(ColId, AggCall)>,
    layout: RowLayout,
    buf: Vec<Row>,
    pos: usize,
}

impl HashGroupByOp {
    fn env(&self) -> Result<GroupEnv> {
        let gpos: Vec<usize> = self
            .grouping
            .iter()
            .map(|c| {
                self.layout
                    .position(*c)
                    .ok_or_else(|| FtoError::internal("grouping column missing from layout"))
            })
            .collect::<Result<_>>()?;
        Ok(GroupEnv {
            gkeys: gpos.iter().map(|&p| (p, Direction::Asc)).collect(),
            gpos,
            args: self.aggs.iter().map(|(_, c)| c.arg.clone()).collect(),
        })
    }

    /// Absorbs one batch into `state`. Rows of already-admitted keys
    /// aggregate in place (no new memory); a first-seen key is admitted
    /// while the working set fits the budget, and once it no longer does,
    /// new keys' rows spill `[u64 seq][row]` records to the partition
    /// their key hashes to. A key therefore lives entirely in memory or
    /// entirely in one partition — the hash is deterministic — which is
    /// what lets each partition re-aggregate independently.
    #[allow(clippy::too_many_arguments)]
    fn absorb_batch(
        &self,
        state: &mut GroupState,
        batch: &Batch,
        seqs: &[u64],
        env: &GroupEnv,
        budget: usize,
        salt: u64,
        kb: &mut Vec<u8>,
        ko: &mut Vec<usize>,
        io: &mut IoStats,
    ) -> Result<()> {
        encode_batch_keys_arena(batch, &env.gkeys, kb, ko);
        let argcols = vector::eval_agg_args(&env.args, batch, &self.layout)?;
        let mut payload = Vec::new();
        for i in 0..batch.len() {
            let key = &kb[ko[i]..ko[i + 1]];
            let slot = match state.index.get(key) {
                Some(&slot) => Some(slot),
                None => {
                    let kvals: Vec<Value> =
                        env.gpos.iter().map(|&p| batch.column(p).value(i)).collect();
                    // Estimated resident cost of admitting this group:
                    // its index key, key values, and rough per-
                    // accumulator (64) and hash-entry (48) overheads.
                    let cost = key.len() + row_bytes(&kvals) + 64 * self.aggs.len() + 48;
                    if state.bytes + cost > budget && !state.groups.is_empty() {
                        if state.parts.is_empty() {
                            state.parts = (0..GROUP_SPILL_PARTITIONS)
                                .map(|_| SpillFile::new())
                                .collect();
                        }
                        let p = (partition_hash(key, salt) as usize) % GROUP_SPILL_PARTITIONS;
                        payload.clear();
                        payload.extend_from_slice(&seqs[i].to_le_bytes());
                        spill::write_row(&batch.row(i), &mut payload);
                        state.parts[p].append_record(&payload, io);
                        None
                    } else {
                        state.bytes += cost;
                        let accs: Vec<_> = self.aggs.iter().map(|(_, c)| c.accumulator()).collect();
                        state.index.insert(key.to_vec(), state.groups.len());
                        state.groups.push((kvals, accs, seqs[i]));
                        Some(state.groups.len() - 1)
                    }
                }
            };
            if let Some(slot) = slot {
                for (acc, col) in state.groups[slot].1.iter_mut().zip(&argcols) {
                    acc.update_value(col.value(i));
                }
            }
        }
        Ok(())
    }

    /// Finishes a state: in-memory groups emit `(first_seq, output_row)`
    /// pairs, then each non-empty partition streams back through a fresh
    /// sub-aggregation under a salted hash (records re-batch and re-spill
    /// under the same budget, so the read-back stays bounded too).
    #[allow(clippy::too_many_arguments)]
    fn drain_state(
        &self,
        state: GroupState,
        env: &GroupEnv,
        budget: usize,
        depth: usize,
        cx: &ExecContext<'_>,
        io: &mut IoStats,
        out: &mut Vec<(u64, Row)>,
    ) -> Result<()> {
        let GroupState { groups, parts, .. } = state;
        for (kvals, accs, first_seq) in groups {
            let mut row = kvals;
            row.extend(accs.iter().map(|a| a.finish()));
            out.push((first_seq, row.into_boxed_slice()));
        }
        let (mut kb, mut ko) = (Vec::new(), Vec::new());
        for file in parts {
            if file.is_empty() {
                continue;
            }
            sortkernel::note_spill_runs(1);
            let sub_budget = if depth + 1 >= MAX_GROUP_SPILL_DEPTH {
                usize::MAX
            } else {
                budget
            };
            let mut sub = GroupState::default();
            let mut cursor = SpillCursor::new(0, file.len());
            let mut rows: Vec<Row> = Vec::new();
            let mut seqs: Vec<u64> = Vec::new();
            loop {
                let rec = cursor.read_record(&file, io);
                if let Some(rec) = &rec {
                    seqs.push(u64::from_le_bytes(
                        rec[0..8].try_into().expect("spill record truncated"),
                    ));
                    let mut pos = 8;
                    rows.push(spill::read_row(rec, &mut pos));
                }
                let done = rec.is_none();
                if !rows.is_empty() && (done || rows.len() >= cx.batch_size) {
                    let batch = Batch::from_rows(&rows);
                    self.absorb_batch(
                        &mut sub,
                        &batch,
                        &seqs,
                        env,
                        sub_budget,
                        depth as u64 + 1,
                        &mut kb,
                        &mut ko,
                        io,
                    )?;
                    rows.clear();
                    seqs.clear();
                }
                if done {
                    break;
                }
            }
            self.drain_state(sub, env, budget, depth + 1, cx, io, out)?;
        }
        Ok(())
    }

    /// The bounded path. Output rows sort by their group's first-seen
    /// global position, which *is* the unbounded operator's first-seen
    /// insertion order — and every row of a key aggregates in arrival
    /// order whether the key stayed in memory or spilled, so accumulator
    /// results (float sums included) are bit-identical too.
    fn open_bounded(
        &mut self,
        budget: usize,
        env: &GroupEnv,
        cx: &ExecContext<'_>,
        io: &mut IoStats,
    ) -> Result<()> {
        let mut state = GroupState::default();
        let (mut kb, mut ko) = (Vec::new(), Vec::new());
        let mut saw_input = false;
        let mut seq = 0u64;
        let mut seqs: Vec<u64> = Vec::new();
        while let Some(batch) = self.child.next_batch(cx, io)? {
            saw_input = true;
            seqs.clear();
            seqs.extend(seq..seq + batch.len() as u64);
            seq += batch.len() as u64;
            self.absorb_batch(
                &mut state, &batch, &seqs, env, budget, 0, &mut kb, &mut ko, io,
            )?;
        }
        self.child.close();
        let mut out: Vec<(u64, Row)> = Vec::new();
        self.drain_state(state, env, budget, 0, cx, io, &mut out)?;
        out.sort_unstable_by_key(|&(s, _)| s);
        if !saw_input && self.grouping.is_empty() {
            // A global aggregate over an empty input still produces one
            // row (COUNT(*) = 0, SUM = NULL).
            let accs: Vec<_> = self.aggs.iter().map(|(_, c)| c.accumulator()).collect();
            let row: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            out.push((0, row.into_boxed_slice()));
        }
        self.buf = out.into_iter().map(|(_, row)| row).collect();
        self.pos = 0;
        Ok(())
    }
}

impl Operator for HashGroupByOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        // Columnar grouping: per input batch, grouping keys become
        // memcmp-comparable byte strings via the sort-key codec (encoded
        // column-at-a-time) and the hash table is keyed on bytes instead
        // of `Vec<Value>`. The codec is an order-preserving injection up
        // to `Value::total_cmp` equality, which canonicalizes exactly
        // like `Value`'s `Eq`/`Hash` (Int 5 ≡ Double 5.0, one NaN, one
        // zero) — so byte equality groups precisely the rows the row
        // engine groups, and insertion order matches its output order.
        self.child.open(cx, io)?;
        let env = self.env()?;
        if let Some(budget) = cx.memory_budget {
            return self.open_bounded(budget, &env, cx, io);
        }
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut saw_input = false;
        let (mut key_bytes, mut key_offsets) = (Vec::new(), Vec::new());
        while let Some(batch) = self.child.next_batch(cx, io)? {
            saw_input = true;
            // Keys land in one contiguous arena; only a first-seen group
            // copies its key out (HashMap probes borrow the slice).
            encode_batch_keys_arena(&batch, &env.gkeys, &mut key_bytes, &mut key_offsets);
            let argcols = vector::eval_agg_args(&env.args, &batch, &self.layout)?;
            for i in 0..batch.len() {
                let key = &key_bytes[key_offsets[i]..key_offsets[i + 1]];
                let slot = match index.get(key) {
                    Some(&slot) => slot,
                    None => {
                        let kvals: Vec<Value> =
                            env.gpos.iter().map(|&p| batch.column(p).value(i)).collect();
                        let accs: Vec<_> = self.aggs.iter().map(|(_, c)| c.accumulator()).collect();
                        groups.push((kvals, accs));
                        index.insert(key.to_vec(), groups.len() - 1);
                        groups.len() - 1
                    }
                };
                for (acc, col) in groups[slot].1.iter_mut().zip(&argcols) {
                    acc.update_value(col.value(i));
                }
            }
        }
        self.child.close();
        if !saw_input && self.grouping.is_empty() {
            // A global aggregate over an empty input still produces one
            // row (COUNT(*) = 0, SUM = NULL).
            let accs: Vec<_> = self.aggs.iter().map(|(_, c)| c.accumulator()).collect();
            groups.push((Vec::new(), accs));
        }
        self.buf = groups
            .into_iter()
            .map(|(key, accs)| {
                let mut row = key;
                row.extend(accs.iter().map(|a| a.finish()));
                row.into_boxed_slice()
            })
            .collect();
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<Option<Batch>> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let end = (self.pos + cx.batch_size).min(self.buf.len());
        let batch = Batch::from_rows(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.buf = Vec::new();
    }
}

// ---------------------------------------------------------------------
// Order-based group-by (fully streaming)
// ---------------------------------------------------------------------

struct StreamGroupByOp {
    child: Box<dyn Operator>,
    aggs: Vec<(ColId, AggCall)>,
    layout: RowLayout,
    gpos: Vec<usize>,
    grouping_is_empty: bool,
    current: Option<(Vec<Value>, Vec<Accumulator>)>,
    saw_input: bool,
    input_done: bool,
    out: OutQueue,
}

impl StreamGroupByOp {
    fn flush(&mut self, key: Vec<Value>, accs: Vec<Accumulator>) {
        let mut row: Vec<Value> = key;
        row.extend(accs.iter().map(|a| a.finish()));
        self.out.push(row.into_boxed_slice());
    }

    fn absorb(&mut self, batch: Batch) -> Result<()> {
        for i in 0..batch.len() {
            let row = batch.row(i);
            let key = key_of(&row, &self.gpos);
            match &mut self.current {
                Some((ckey, accs)) if *ckey == key => {
                    for (acc, (_, call)) in accs.iter_mut().zip(&self.aggs) {
                        acc.update(call, &row, &self.layout)?;
                    }
                }
                _ => {
                    if let Some((ckey, accs)) = self.current.take() {
                        self.flush(ckey, accs);
                    }
                    let mut accs: Vec<_> = self.aggs.iter().map(|(_, c)| c.accumulator()).collect();
                    for (acc, (_, call)) in accs.iter_mut().zip(&self.aggs) {
                        acc.update(call, &row, &self.layout)?;
                    }
                    self.current = Some((key, accs));
                }
            }
        }
        Ok(())
    }
}

impl Operator for StreamGroupByOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.current = None;
        self.saw_input = false;
        self.input_done = false;
        self.child.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        loop {
            if !self.out.is_empty() {
                return Ok(Some(self.out.take(cx.batch_size)));
            }
            if self.input_done {
                return Ok(None);
            }
            match self.child.next_batch(cx, io)? {
                Some(batch) => {
                    self.saw_input |= !batch.is_empty();
                    self.absorb(batch)?;
                }
                None => {
                    self.input_done = true;
                    if let Some((ckey, accs)) = self.current.take() {
                        self.flush(ckey, accs);
                    } else if !self.saw_input && self.grouping_is_empty {
                        // A global aggregate over an empty input still
                        // produces one row (COUNT(*) = 0, SUM = NULL).
                        let accs: Vec<_> = self.aggs.iter().map(|(_, c)| c.accumulator()).collect();
                        self.flush(Vec::new(), accs);
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.current = None;
        self.out.clear();
        self.child.close();
    }
}

// ---------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------

/// Nested-loop join: inner side materialized once at open, outer side
/// streamed through it batch by batch.
struct NestedLoopJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    predicates: Vec<PredId>,
    layout: RowLayout,
    inner_rows: Vec<Row>,
    out: OutQueue,
}

impl Operator for NestedLoopJoinOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.inner_rows = drain_all(&mut self.inner, cx, io)?;
        self.outer.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        loop {
            if !self.out.is_empty() {
                return Ok(Some(self.out.take(cx.batch_size)));
            }
            let Some(batch) = self.outer.next_batch(cx, io)? else {
                return Ok(None);
            };
            for i in 0..batch.len() {
                let orow = batch.row(i);
                for irow in &self.inner_rows {
                    let joined = concat(&orow, irow);
                    if eval_preds(cx.graph, &self.predicates, &joined, &self.layout)? {
                        self.out.push(joined);
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.inner_rows = Vec::new();
        self.out.clear();
        self.outer.close();
    }
}

/// Index nested-loop join: streams the outer, probing the inner table's
/// index per row. One [`PageCursor`] persists for the operator's
/// lifetime, so probes arriving in inner-page order (the paper's ordered
/// nested-loop join) hit the just-read page for free.
struct IndexNestedLoopJoinOp {
    outer: Box<dyn Operator>,
    table: TableId,
    index: IndexId,
    probe_pos: Vec<usize>,
    predicates: Vec<PredId>,
    layout: RowLayout,
    cursor: PageCursor,
    out: OutQueue,
}

impl Operator for IndexNestedLoopJoinOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        // Probe streams pay a full seek on their first fetch.
        self.cursor = PageCursor::probing();
        self.outer.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        let heap = cx.db.heap(self.table)?;
        let ix = cx.db.index(self.index)?;
        loop {
            if !self.out.is_empty() {
                return Ok(Some(self.out.take(cx.batch_size)));
            }
            let Some(batch) = self.outer.next_batch(cx, io)? else {
                return Ok(None);
            };
            for oi in 0..batch.len() {
                let orow = batch.row(oi);
                let key = key_of(&orow, &self.probe_pos);
                io.index_pages += 1; // descent touches one leaf
                                     // Codec path: encode the probe once, binary-search the
                                     // index's stored normalized keys by memcmp. Identical
                                     // hits either way (asserted in the storage tests).
                let hits = if cx.sort_key_codec {
                    ix.probe_encoded(&ix.encode_probe(&key))
                } else {
                    ix.probe(&key)
                };
                for (_, rid) in hits {
                    // Probe fetches share the budgeted buffer pool with
                    // the scans (keyed by table id); unbounded executions
                    // charge exactly as before.
                    cx.with_pool(|pool| {
                        self.cursor.touch_pooled(
                            heap.table().0 as u64,
                            heap.page_of(*rid),
                            io,
                            pool,
                        )
                    });
                    io.rows_read += 1;
                    let joined = concat(&orow, heap.row(*rid));
                    if eval_preds(cx.graph, &self.predicates, &joined, &self.layout)? {
                        self.out.push(joined);
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.out.clear();
        self.outer.close();
    }
}

/// Where a hash-join build row lives: resident in `build_rows`, or at a
/// byte offset in the build-side spill file. Either way the table entry
/// vector keeps rows in build (arrival) order, so match order — and with
/// it output order — is identical on both paths.
enum BuildRef {
    Mem(usize),
    Spilled(u64),
}

/// Hash join: build side (inner) materialized at open, probe side
/// streamed. Output preserves the outer's order.
struct HashJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    opos: Vec<usize>,
    predicates: Vec<PredId>,
    layout: RowLayout,
    /// Inner rows in materialization order; the table maps keys to
    /// [`BuildRef`]s so matches come back in build order, like the
    /// reference engine.
    build_rows: Vec<Row>,
    table: HashMap<Vec<Value>, Vec<BuildRef>>,
    /// Build rows past the memory budget (None when unbounded or the
    /// build fit).
    spill: Option<SpillFile>,
    out: OutQueue,
}

impl HashJoinOp {
    fn build(&mut self, cx: &ExecContext<'_>, io: &mut IoStats, ipos: &[usize]) -> Result<()> {
        self.table.clear();
        self.build_rows = Vec::new();
        self.spill = None;
        if let Some(budget) = cx.memory_budget {
            // Bounded build: rows that fit stay resident, overflow rows
            // spill by value and are re-read on probe hits. NULL-key rows
            // can never join, so the bounded path drops them outright
            // instead of spending budget on them.
            self.inner.open(cx, io)?;
            let mut file = SpillFile::new();
            let mut bytes = 0usize;
            let mut payload = Vec::new();
            while let Some(batch) = self.inner.next_batch(cx, io)? {
                for i in 0..batch.len() {
                    let row = batch.row(i);
                    let key = key_of(&row, ipos);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    let cost = row_bytes(&row);
                    let r = if bytes + cost > budget && !self.build_rows.is_empty() {
                        payload.clear();
                        spill::write_row(&row, &mut payload);
                        BuildRef::Spilled(file.append_record(&payload, io))
                    } else {
                        bytes += cost;
                        self.build_rows.push(row);
                        BuildRef::Mem(self.build_rows.len() - 1)
                    };
                    self.table.entry(key).or_default().push(r);
                }
            }
            self.inner.close();
            if !file.is_empty() {
                sortkernel::note_spill_runs(1);
                self.spill = Some(file);
            }
            return Ok(());
        }
        self.build_rows = drain_all(&mut self.inner, cx, io)?;
        for (i, irow) in self.build_rows.iter().enumerate() {
            let key = key_of(irow, ipos);
            if key.iter().any(Value::is_null) {
                continue; // NULL never joins
            }
            self.table.entry(key).or_default().push(BuildRef::Mem(i));
        }
        Ok(())
    }
}

struct HashJoinWrap {
    op: HashJoinOp,
    ipos: Vec<usize>,
}

impl Operator for HashJoinWrap {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        let ipos = self.ipos.clone();
        self.op.build(cx, io, &ipos)?;
        self.op.outer.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        let op = &mut self.op;
        loop {
            if !op.out.is_empty() {
                return Ok(Some(op.out.take(cx.batch_size)));
            }
            let Some(batch) = op.outer.next_batch(cx, io)? else {
                return Ok(None);
            };
            for oi in 0..batch.len() {
                let orow = batch.row(oi);
                let key = key_of(&orow, &op.opos);
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = op.table.get(&key) {
                    for r in matches {
                        let joined = match r {
                            BuildRef::Mem(i) => concat(&orow, &op.build_rows[*i]),
                            BuildRef::Spilled(off) => {
                                let file =
                                    op.spill.as_ref().expect("spilled build ref without file");
                                let rec = SpillCursor::new(*off, file.len())
                                    .read_record(file, io)
                                    .expect("spilled build record missing");
                                let mut pos = 0;
                                concat(&orow, &spill::read_row(&rec, &mut pos))
                            }
                        };
                        if eval_preds(cx.graph, &op.predicates, &joined, &op.layout)? {
                            op.out.push(joined);
                        }
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.op.build_rows = Vec::new();
        self.op.table.clear();
        self.op.spill = None;
        self.op.out.clear();
        self.op.outer.close();
    }
}

/// Left outer join: inner materialized at open (hash build when equi keys
/// exist), outer streamed; unmatched outer rows are null-padded in place,
/// preserving the outer's order.
struct LeftOuterJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    opos: Vec<usize>,
    ipos: Vec<usize>,
    keyed: bool,
    predicates: Vec<PredId>,
    layout: RowLayout,
    null_pad: Row,
    build_rows: Vec<Row>,
    table: HashMap<Vec<Value>, Vec<BuildRef>>,
    /// Build rows in arrival order for the non-keyed nested-loop path
    /// (the keyed path reaches rows through `table` instead).
    refs: Vec<BuildRef>,
    /// Build rows past the memory budget (None when unbounded or the
    /// build fit), re-read on probe hits like the hash join's.
    spill: Option<SpillFile>,
    out: OutQueue,
}

/// Materializes the row behind a [`BuildRef`] and joins it to `orow`.
fn concat_build(
    orow: &Row,
    r: &BuildRef,
    build_rows: &[Row],
    spill: &Option<SpillFile>,
    io: &mut IoStats,
) -> Row {
    match r {
        BuildRef::Mem(i) => concat(orow, &build_rows[*i]),
        BuildRef::Spilled(off) => {
            let file = spill.as_ref().expect("spilled build ref without file");
            let rec = SpillCursor::new(*off, file.len())
                .read_record(file, io)
                .expect("spilled build record missing");
            let mut pos = 0;
            concat(orow, &spill::read_row(&rec, &mut pos))
        }
    }
}

impl Operator for LeftOuterJoinOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.table.clear();
        self.refs = Vec::new();
        self.build_rows = Vec::new();
        self.spill = None;
        if let Some(budget) = cx.memory_budget {
            // Bounded build, mirroring the hash join: rows that fit stay
            // resident, overflow rows spill by value. On the keyed path
            // NULL-key build rows can never match and are dropped; the
            // non-keyed nested loop needs every build row, in arrival
            // order, so `refs` preserves the mem/spilled interleaving.
            self.inner.open(cx, io)?;
            let mut file = SpillFile::new();
            let mut bytes = 0usize;
            let mut payload = Vec::new();
            while let Some(batch) = self.inner.next_batch(cx, io)? {
                for i in 0..batch.len() {
                    let row = batch.row(i);
                    let key = self.keyed.then(|| key_of(&row, &self.ipos));
                    if let Some(key) = &key {
                        if key.iter().any(Value::is_null) {
                            continue;
                        }
                    }
                    let cost = row_bytes(&row);
                    let r = if bytes + cost > budget && !self.build_rows.is_empty() {
                        payload.clear();
                        spill::write_row(&row, &mut payload);
                        BuildRef::Spilled(file.append_record(&payload, io))
                    } else {
                        bytes += cost;
                        self.build_rows.push(row);
                        BuildRef::Mem(self.build_rows.len() - 1)
                    };
                    match key {
                        Some(key) => self.table.entry(key).or_default().push(r),
                        None => self.refs.push(r),
                    }
                }
            }
            self.inner.close();
            if !file.is_empty() {
                sortkernel::note_spill_runs(1);
                self.spill = Some(file);
            }
            return self.outer.open(cx, io);
        }
        self.build_rows = drain_all(&mut self.inner, cx, io)?;
        if self.keyed {
            for (i, irow) in self.build_rows.iter().enumerate() {
                let key = key_of(irow, &self.ipos);
                if key.iter().any(Value::is_null) {
                    continue;
                }
                self.table.entry(key).or_default().push(BuildRef::Mem(i));
            }
        } else {
            self.refs = (0..self.build_rows.len()).map(BuildRef::Mem).collect();
        }
        self.outer.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        loop {
            if !self.out.is_empty() {
                return Ok(Some(self.out.take(cx.batch_size)));
            }
            let Some(batch) = self.outer.next_batch(cx, io)? else {
                return Ok(None);
            };
            for oi in 0..batch.len() {
                let orow = batch.row(oi);
                let mut matched = false;
                if self.keyed {
                    let key = key_of(&orow, &self.opos);
                    if !key.iter().any(Value::is_null) {
                        if let Some(candidates) = self.table.get(&key) {
                            for r in candidates {
                                let joined =
                                    concat_build(&orow, r, &self.build_rows, &self.spill, io);
                                if eval_preds(cx.graph, &self.predicates, &joined, &self.layout)? {
                                    self.out.push(joined);
                                    matched = true;
                                }
                            }
                        }
                    }
                } else {
                    // No equi keys: nested loop with ON residuals.
                    for r in &self.refs {
                        let joined = concat_build(&orow, r, &self.build_rows, &self.spill, io);
                        if eval_preds(cx.graph, &self.predicates, &joined, &self.layout)? {
                            self.out.push(joined);
                            matched = true;
                        }
                    }
                }
                if !matched {
                    self.out.push(concat(&orow, &self.null_pad));
                }
            }
        }
    }

    fn close(&mut self) {
        self.build_rows = Vec::new();
        self.table.clear();
        self.refs = Vec::new();
        self.spill = None;
        self.out.clear();
        self.outer.close();
    }
}

// ---------------------------------------------------------------------
// Merge join (fully streaming)
// ---------------------------------------------------------------------

/// One side of an in-progress merge join: a window of buffered rows plus
/// the cursor into it. Consumed prefixes are dropped on refill, so memory
/// stays bounded by the current tie group plus one batch.
struct MergeSide {
    buf: Vec<Row>,
    pos: usize,
    done: bool,
    kpos: Vec<usize>,
    /// The key positions as ascending sort keys — the codec tie-detection
    /// path encodes equality keys under these (direction is irrelevant
    /// for equality; ascending keeps the encoding canonical).
    keys_asc: SortKeys,
}

impl MergeSide {
    fn new(kpos: Vec<usize>) -> MergeSide {
        MergeSide {
            buf: Vec::new(),
            pos: 0,
            done: false,
            keys_asc: kpos.iter().map(|&p| (p, Direction::Asc)).collect(),
            kpos,
        }
    }

    fn key_is_null(&self) -> bool {
        self.kpos.iter().any(|&p| self.buf[self.pos][p].is_null())
    }
}

/// Ensures `side.buf[side.pos]` exists; returns false when the input is
/// exhausted.
fn merge_fill(
    side: &mut MergeSide,
    child: &mut Box<dyn Operator>,
    cx: &ExecContext<'_>,
    io: &mut IoStats,
) -> Result<bool> {
    while side.pos >= side.buf.len() && !side.done {
        if side.pos > 0 {
            side.buf.drain(..side.pos);
            side.pos = 0;
        }
        match child.next_batch(cx, io)? {
            Some(batch) => batch.append_rows_to(&mut side.buf),
            None => side.done = true,
        }
    }
    Ok(side.pos < side.buf.len())
}

/// Removes and returns the full run of rows sharing the current row's
/// key, pulling more input as needed to find the run's end.
fn merge_take_group(
    side: &mut MergeSide,
    child: &mut Box<dyn Operator>,
    cx: &ExecContext<'_>,
    io: &mut IoStats,
) -> Result<Vec<Row>> {
    let start = side.pos;
    let mut end = start + 1;
    // Codec path: encode the group leader's key once; each candidate
    // re-encodes into a scratch buffer and extends the group on memcmp
    // equality — same outcome as the per-column `Value` walk, without
    // re-dispatching on type tags for every candidate column.
    let lead = cx
        .sort_key_codec
        .then(|| sortkey::encode_key(&side.buf[start], &side.keys_asc));
    let mut scratch = Vec::new();
    loop {
        while end < side.buf.len() && {
            match &lead {
                Some(lead) => {
                    scratch.clear();
                    sortkey::encode_key_into(&side.buf[end], &side.keys_asc, &mut scratch);
                    scratch == *lead
                }
                None => same_key(&side.buf[start], &side.buf[end], &side.kpos),
            }
        } {
            end += 1;
        }
        if end < side.buf.len() || side.done {
            break;
        }
        match child.next_batch(cx, io)? {
            Some(batch) => batch.append_rows_to(&mut side.buf),
            None => side.done = true,
        }
    }
    let group: Vec<Row> = side.buf.drain(start..end).collect();
    Ok(group)
}

fn same_key(a: &Row, b: &Row, kpos: &[usize]) -> bool {
    kpos.iter()
        .all(|&p| a[p].total_cmp(&b[p]) == Ordering::Equal)
}

struct MergeJoinOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    o: MergeSide,
    i: MergeSide,
    predicates: Vec<PredId>,
    layout: RowLayout,
    done: bool,
    out: OutQueue,
}

impl Operator for MergeJoinOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        self.done = false;
        self.outer.open(cx, io)?;
        self.inner.open(cx, io)
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        loop {
            if !self.out.is_empty() {
                return Ok(Some(self.out.take(cx.batch_size)));
            }
            if self.done {
                return Ok(None);
            }
            if !merge_fill(&mut self.o, &mut self.outer, cx, io)?
                || !merge_fill(&mut self.i, &mut self.inner, cx, io)?
            {
                self.done = true;
                continue;
            }
            // NULL keys never join; skip them on either side.
            if self.o.key_is_null() {
                self.o.pos += 1;
                continue;
            }
            if self.i.key_is_null() {
                self.i.pos += 1;
                continue;
            }
            let ord = {
                let orow = &self.o.buf[self.o.pos];
                let irow = &self.i.buf[self.i.pos];
                let mut ord = Ordering::Equal;
                for (&op, &ip) in self.o.kpos.iter().zip(&self.i.kpos) {
                    ord = orow[op].total_cmp(&irow[ip]);
                    if ord != Ordering::Equal {
                        break;
                    }
                }
                ord
            };
            match ord {
                Ordering::Less => self.o.pos += 1,
                Ordering::Greater => self.i.pos += 1,
                Ordering::Equal => {
                    let ogroup = merge_take_group(&mut self.o, &mut self.outer, cx, io)?;
                    let igroup = merge_take_group(&mut self.i, &mut self.inner, cx, io)?;
                    for orow in &ogroup {
                        for irow in &igroup {
                            let joined = concat(orow, irow);
                            if eval_preds(cx.graph, &self.predicates, &joined, &self.layout)? {
                                self.out.push(joined);
                            }
                        }
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        self.o.buf = Vec::new();
        self.i.buf = Vec::new();
        self.out.clear();
        self.outer.close();
        self.inner.close();
    }
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Lowering context: instrumentation slots, pre-order id assignment, and
/// the parallelism state.
///
/// The coordinator lowers with `push = true` (slots are created as
/// lowering reaches each node, so slot index == pre-order id) and
/// `partition = None`. When lowering inserts an exchange, it *reserves*
/// slots for the exchange's partitioned subtree without building
/// coordinator-side operators for it; each worker then re-lowers that
/// subtree via [`lower_worker`] with `push = false` and `next_id` starting
/// at the subtree root's reserved id, so worker wrappers record into the
/// already-reserved slots. Workers always lower with `threads = 1`, so
/// exchanges never nest.
pub(crate) struct LowerCx {
    slots: Option<Arc<Mutex<Vec<OpMetrics>>>>,
    push: bool,
    next_id: usize,
    threads: usize,
    /// `Some((part, parts))` while lowering one worker's partition of an
    /// exchanged subtree: scans restrict themselves to that partition.
    partition: Option<(usize, usize)>,
}

impl LowerCx {
    pub(crate) fn new(slots: Option<Arc<Mutex<Vec<OpMetrics>>>>, threads: usize) -> LowerCx {
        LowerCx {
            slots,
            push: true,
            next_id: 0,
            threads,
            partition: None,
        }
    }
}

/// Lowers one worker's copy of an exchanged subtree: scans restricted to
/// partition `part` of `parts`, instrumentation recording into the slots
/// the coordinator reserved starting at `base_id`. Called from inside the
/// worker thread, so the built operators never cross threads.
pub(crate) fn lower_worker(
    plan: &Plan,
    part: usize,
    parts: usize,
    slots: Option<Arc<Mutex<Vec<OpMetrics>>>>,
    base_id: usize,
) -> Result<Box<dyn Operator>> {
    let mut lw = LowerCx {
        slots,
        push: false,
        next_id: base_id,
        threads: 1,
        partition: Some((part, parts)),
    };
    lower_impl(plan, &mut lw)
}

/// Records subtree-inclusive metrics for one operator into its slot.
///
/// The wrapper snapshots the session [`IoStats`] before delegating and
/// merges the delta afterwards, so a slot accumulates everything charged
/// while control was inside its subtree — children included. Exclusive
/// figures are derived later by [`PlanMetrics::self_io`]; recording
/// inclusively here is what makes that subtraction telescope exactly to
/// the session totals. Under an exchange, the workers' wrappers all
/// record into the same slots (one worker's private I/O stream each), so
/// a slot accumulates the sum over workers — which is exactly what the
/// coordinator merges into the session stream, keeping the telescoping
/// intact at every parallel degree.
struct InstrumentedOp {
    inner: Box<dyn Operator>,
    id: usize,
    slots: Arc<Mutex<Vec<OpMetrics>>>,
    /// `name#id` — the span label this wrapper emits into the timeline
    /// profiler (when the executing thread has a lane installed).
    label: String,
}

impl InstrumentedOp {
    fn record(&self, before: &IoStats, after: &IoStats, started: Instant) {
        let mut slots = self.slots.lock().expect("metrics mutex poisoned");
        let m = &mut slots[self.id];
        m.elapsed += started.elapsed();
        m.io.merge(&after.delta_since(before));
    }
}

impl Operator for InstrumentedOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        profile::span_begin("operator", || format!("{}.open", self.label));
        let before = *io;
        let started = Instant::now();
        let result = self.inner.open(cx, io);
        self.record(&before, io, started);
        profile::span_end_with(
            "operator",
            || format!("{}.open", self.label),
            || {
                let d = io.delta_since(&before);
                vec![
                    ("seq_pages", d.sequential_pages),
                    ("sort_rows", d.sort_rows),
                ]
            },
        );
        result
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<Option<Batch>> {
        profile::span_begin("operator", || format!("{}.next", self.label));
        let before = *io;
        let started = Instant::now();
        let result = self.inner.next_batch(cx, io);
        self.record(&before, io, started);
        let rows = match &result {
            Ok(Some(batch)) => batch.len() as u64,
            _ => 0,
        };
        if let Ok(Some(batch)) = &result {
            let mut slots = self.slots.lock().expect("metrics mutex poisoned");
            let m = &mut slots[self.id];
            m.rows += batch.len() as u64;
            m.batches += 1;
        }
        profile::span_end_with(
            "operator",
            || format!("{}.next", self.label),
            || vec![("rows", rows)],
        );
        result
    }

    fn close(&mut self) {
        profile::span_begin("operator", || format!("{}.close", self.label));
        self.inner.close();
        profile::span_end("operator", || format!("{}.close", self.label));
    }
}

fn lower(plan: &Plan) -> Result<Box<dyn Operator>> {
    lower_impl(plan, &mut LowerCx::new(None, 1))
}

/// True when a subtree can run partitioned: a chain of filters and
/// projections over one table or index scan. Such a pipeline has no
/// cross-row state, so P workers each running it over a scan partition
/// together produce exactly the serial row stream, segment by segment.
fn partitionable(plan: &Plan) -> bool {
    match &plan.node {
        PlanNode::TableScan { .. } | PlanNode::IndexScan { .. } => true,
        PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => partitionable(input),
        _ => false,
    }
}

/// The freshly-reserved metric slot for one plan node: actual counters
/// zeroed, the planner's estimates copied in at lowering time so every
/// recorded slot carries its own est-vs-actual pair (Q-error feedback).
fn op_metrics_for(plan: &Plan) -> OpMetrics {
    OpMetrics {
        name: plan.op_name().to_string(),
        est_rows: plan.cost.rows,
        est_cost: plan.self_cost(),
        est_groups: match &plan.node {
            PlanNode::SegmentedSort { est_groups, .. } => Some(*est_groups),
            _ => None,
        },
        ..OpMetrics::default()
    }
}

/// Reserves metric slots for an exchanged subtree the coordinator will
/// not itself lower, mirroring [`lower_impl`]'s pre-order id assignment
/// so worker-side wrappers land in the right slots and sibling nodes
/// after the subtree keep their ids.
fn reserve_subtree(plan: &Plan, lw: &mut LowerCx) {
    lw.next_id += 1;
    if lw.push {
        if let Some(slots) = &lw.slots {
            slots
                .lock()
                .expect("metrics mutex poisoned")
                .push(op_metrics_for(plan));
        }
    }
    for c in plan.children() {
        reserve_subtree(c, lw);
    }
}

/// Builds the [`PartitionSpec`] for exchanging `input` over
/// `lw.threads` workers, reserving the subtree's metric slots.
fn exchange_spec(input: &Arc<Plan>, lw: &mut LowerCx) -> PartitionSpec {
    let base_id = lw.next_id;
    reserve_subtree(input, lw);
    PartitionSpec {
        plan: Arc::clone(input),
        parts: lw.threads,
        slots: lw.slots.clone(),
        base_id,
    }
}

/// The (id, slots) handle an exchange operator uses to attach per-worker
/// metrics to its own plan node.
fn own_slot(lw: &LowerCx, id: usize) -> Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)> {
    lw.slots.as_ref().map(|s| (id, Arc::clone(s)))
}

/// Lowers a child subtree that its parent fully drains at `open` (a join
/// build side, a hash group-by input). At parallel degree > 1 a
/// partitionable subtree becomes a [`GatherOp`] that drains the P
/// partition pipelines on worker threads and concatenates their outputs
/// in partition order — which *is* the serial order, so parents observe
/// the exact serial row stream.
fn lower_drained(plan: &Arc<Plan>, lw: &mut LowerCx) -> Result<Box<dyn Operator>> {
    if lw.partition.is_none() && lw.threads > 1 && partitionable(plan) {
        Ok(Box::new(GatherOp::new(exchange_spec(plan, lw))))
    } else {
        lower_impl(plan, lw)
    }
}

/// Lowers `plan`, wrapping every operator in an [`InstrumentedOp`] when
/// slots are present. Slots are reserved parent-before-children and
/// children in [`Plan::children`] order, which is exactly pre-order —
/// the numbering [`PlanMetrics`] documents. At parallel degree > 1 the
/// coordinator replaces eligible Sort/TopN nodes and fully-drained join
/// build sides with exchange operators from [`crate::parallel`]; worker
/// threads then re-lower the exchanged subtrees via [`lower_worker`].
fn lower_impl(plan: &Plan, lw: &mut LowerCx) -> Result<Box<dyn Operator>> {
    let id = lw.next_id;
    lw.next_id += 1;
    if lw.push {
        if let Some(slots) = &lw.slots {
            let mut slots = slots.lock().expect("metrics mutex poisoned");
            debug_assert_eq!(id, slots.len(), "slot ids must be pre-order");
            slots.push(op_metrics_for(plan));
        }
    }
    // Exchange insertion happens only on the coordinator (never inside a
    // worker's partition pipeline, where `threads` is pinned to 1).
    let parallel = lw.partition.is_none() && lw.threads > 1;
    let op: Box<dyn Operator> = match &plan.node {
        PlanNode::TableScan { table, .. } => {
            let (part, parts) = lw.partition.unwrap_or((0, 1));
            Box::new(ScanOp {
                table: *table,
                part,
                parts,
                state: HeapScanState::new(),
            })
        }
        PlanNode::IndexScan {
            index,
            table,
            range,
            reverse,
            ..
        } => {
            let (part, parts) = lw.partition.unwrap_or((0, 1));
            Box::new(IndexScanOp {
                index: *index,
                table: *table,
                range: range.clone(),
                reverse: *reverse,
                part,
                parts,
                state: None,
            })
        }
        PlanNode::Filter { input, predicates } => Box::new(FilterOp {
            child: lower_impl(input, lw)?,
            predicates: predicates.clone(),
            layout: input.layout.clone(),
        }),
        PlanNode::Project { input, exprs } => Box::new(ProjectOp {
            child: lower_impl(input, lw)?,
            exprs: exprs.iter().map(|(_, e)| e.clone()).collect(),
            layout: input.layout.clone(),
        }),
        PlanNode::Sort { input, spec } => {
            let keys = resolve_keys(spec, &input.layout)?;
            if parallel && partitionable(input) {
                // Merge exchange: workers scan disjoint partitions, sort
                // their runs, and the coordinator K-way merges — order-
                // preserving by the kernel's (keys, seq) contract.
                let slot = own_slot(lw, id);
                Box::new(MergeExchangeOp::new(exchange_spec(input, lw), keys, slot))
            } else if parallel {
                // Repartition: drain the (serial) child on the
                // coordinator, deal round-robin, sort buckets on worker
                // threads, merge back by global sequence tags.
                let slot = own_slot(lw, id);
                let child = lower_impl(input, lw)?;
                Box::new(RepartitionSortOp::new(child, keys, lw.threads, slot))
            } else {
                Box::new(SortOp {
                    child: lower_impl(input, lw)?,
                    keys,
                    buf: Vec::new(),
                    pos: 0,
                    spilled: None,
                })
            }
        }
        PlanNode::SegmentedSort {
            input,
            spec,
            prefix_len,
            ..
        } => {
            let keys = resolve_keys(spec, &input.layout)?;
            if parallel && partitionable(input) {
                // Parallel degrees reuse the full-sort exchanges: a
                // merge exchange over the full keys produces the same
                // (globally sorted) stream the segmented operator does.
                let slot = own_slot(lw, id);
                Box::new(MergeExchangeOp::new(exchange_spec(input, lw), keys, slot))
            } else if parallel {
                let slot = own_slot(lw, id);
                let child = lower_impl(input, lw)?;
                Box::new(RepartitionSortOp::new(child, keys, lw.threads, slot))
            } else {
                let slot = own_slot(lw, id);
                Box::new(SegmentedSortOp::new(
                    lower_impl(input, lw)?,
                    keys,
                    *prefix_len,
                    slot,
                ))
            }
        }
        PlanNode::NestedLoopJoin {
            outer,
            inner,
            predicates,
        } => Box::new(NestedLoopJoinOp {
            outer: lower_impl(outer, lw)?,
            inner: lower_drained(inner, lw)?,
            predicates: predicates.clone(),
            layout: plan.layout.clone(),
            inner_rows: Vec::new(),
            out: OutQueue::default(),
        }),
        PlanNode::IndexNestedLoopJoin {
            outer,
            table,
            index,
            probe_cols,
            predicates,
            ..
        } => Box::new(IndexNestedLoopJoinOp {
            outer: lower_impl(outer, lw)?,
            table: *table,
            index: *index,
            probe_pos: probe_cols
                .iter()
                .map(|&c| {
                    outer.layout.position(c).ok_or_else(|| {
                        FtoError::internal(format!("probe column {c} missing from outer"))
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            predicates: predicates.clone(),
            layout: plan.layout.clone(),
            cursor: PageCursor::new(),
            out: OutQueue::default(),
        }),
        PlanNode::MergeJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            predicates,
        } => Box::new(MergeJoinOp {
            o: MergeSide::new(positions(&outer.layout, outer_keys)?),
            i: MergeSide::new(positions(&inner.layout, inner_keys)?),
            outer: lower_impl(outer, lw)?,
            inner: lower_impl(inner, lw)?,
            predicates: predicates.clone(),
            layout: plan.layout.clone(),
            done: false,
            out: OutQueue::default(),
        }),
        PlanNode::LeftOuterJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            predicates,
        } => Box::new(LeftOuterJoinOp {
            opos: positions(&outer.layout, outer_keys)?,
            ipos: positions(&inner.layout, inner_keys)?,
            keyed: !outer_keys.is_empty(),
            null_pad: vec![Value::Null; inner.layout.arity()].into(),
            outer: lower_impl(outer, lw)?,
            inner: lower_drained(inner, lw)?,
            predicates: predicates.clone(),
            layout: plan.layout.clone(),
            build_rows: Vec::new(),
            table: HashMap::new(),
            refs: Vec::new(),
            spill: None,
            out: OutQueue::default(),
        }),
        PlanNode::HashJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            predicates,
        } => Box::new(HashJoinWrap {
            ipos: positions(&inner.layout, inner_keys)?,
            op: HashJoinOp {
                opos: positions(&outer.layout, outer_keys)?,
                outer: lower_impl(outer, lw)?,
                inner: lower_drained(inner, lw)?,
                predicates: predicates.clone(),
                layout: plan.layout.clone(),
                build_rows: Vec::new(),
                table: HashMap::new(),
                spill: None,
                out: OutQueue::default(),
            },
        }),
        PlanNode::StreamGroupBy {
            input,
            grouping,
            aggs,
        } => Box::new(StreamGroupByOp {
            gpos: positions(&input.layout, grouping)?,
            grouping_is_empty: grouping.is_empty(),
            child: lower_impl(input, lw)?,
            aggs: aggs.clone(),
            layout: input.layout.clone(),
            current: None,
            saw_input: false,
            input_done: false,
            out: OutQueue::default(),
        }),
        PlanNode::HashGroupBy {
            input,
            grouping,
            aggs,
        } => Box::new(HashGroupByOp {
            child: lower_drained(input, lw)?,
            grouping: grouping.clone(),
            aggs: aggs.clone(),
            layout: input.layout.clone(),
            buf: Vec::new(),
            pos: 0,
        }),
        PlanNode::StreamDistinct { input } => Box::new(StreamDistinctOp {
            child: lower_impl(input, lw)?,
            last: None,
            last_key: None,
        }),
        PlanNode::HashDistinct { input } => Box::new(HashDistinctOp {
            child: lower_impl(input, lw)?,
            seen: HashSet::new(),
            seen_keys: HashSet::new(),
        }),
        PlanNode::UnionAll { inputs } => Box::new(UnionAllOp {
            children: inputs
                .iter()
                .map(|p| lower_impl(p, lw))
                .collect::<Result<Vec<_>>>()?,
            current: 0,
            opened: false,
        }),
        PlanNode::Limit { input, n } => Box::new(LimitOp {
            child: lower_impl(input, lw)?,
            remaining: *n,
        }),
        PlanNode::TopN { input, spec, n } => {
            let keys = resolve_keys(spec, &input.layout)?;
            if parallel && partitionable(input) {
                let slot = own_slot(lw, id);
                Box::new(TopNExchangeOp::new(
                    exchange_spec(input, lw),
                    keys,
                    *n as usize,
                    slot,
                ))
            } else {
                Box::new(TopNOp {
                    keys,
                    child: lower_impl(input, lw)?,
                    n: *n,
                    buf: Vec::new(),
                    pos: 0,
                })
            }
        }
    };
    Ok(match &lw.slots {
        Some(slots) => Box::new(InstrumentedOp {
            inner: op,
            id,
            slots: Arc::clone(slots),
            label: format!("{}#{id}", plan.op_name()),
        }),
        None => op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_plan_materialized;
    use fto_common::{ColId, ColSet, Direction, QuantifierId};
    use fto_order::StreamProps;
    use fto_planner::cost::Cost;
    use fto_storage::Database;
    use std::sync::Arc;

    fn test_db(rows: i64) -> Database {
        let mut cat = fto_catalog::Catalog::new();
        let t = cat
            .create_table(
                "t",
                vec![
                    fto_catalog::ColumnDef::new("k", fto_common::DataType::Int),
                    fto_catalog::ColumnDef::new("v", fto_common::DataType::Int),
                ],
                vec![fto_catalog::KeyDef::primary([0])],
            )
            .unwrap();
        let mut db = Database::new(cat);
        db.load_table(
            t,
            (0..rows)
                .map(|i| vec![Value::Int(i), Value::Int(i % 5)].into_boxed_slice())
                .collect(),
        )
        .unwrap();
        db
    }

    fn scan_plan() -> Arc<Plan> {
        Arc::new(Plan {
            node: PlanNode::TableScan {
                table: TableId(0),
                quantifier: QuantifierId(0),
            },
            layout: RowLayout::new(vec![ColId(0), ColId(1)]),
            props: StreamProps::base_table(ColSet::from_cols([ColId(0), ColId(1)]), vec![]),
            cost: Cost {
                total: 0.0,
                rows: 0.0,
            },
        })
    }

    #[test]
    fn streaming_scan_matches_materialized() {
        let db = test_db(500);
        let graph = QueryGraph::new();
        let plan = scan_plan();
        let old = run_plan_materialized(&db, &graph, &plan).unwrap();
        let new = execute_plan(
            &db,
            &graph,
            &plan,
            &ExecOptions {
                batch_size: 64,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(old.rows, new.rows());
        assert_eq!(old.io.sequential_pages, new.io.sequential_pages);
        assert_eq!(old.io.rows_read, new.io.rows_read);
    }

    #[test]
    fn limit_reads_strictly_fewer_pages() {
        let db = test_db(5000);
        let graph = QueryGraph::new();
        let scan = scan_plan();
        let limit = Plan {
            node: PlanNode::Limit {
                input: scan.clone(),
                n: 10,
            },
            layout: scan.layout.clone(),
            props: scan.props.clone(),
            cost: scan.cost,
        };
        let old = run_plan_materialized(&db, &graph, &limit).unwrap();
        let new = execute_plan(&db, &graph, &limit, &ExecOptions::default()).unwrap();
        assert_eq!(old.rows, new.rows());
        assert_eq!(new.rows().len(), 10);
        let full_pages = db.heap(TableId(0)).unwrap().page_count();
        assert_eq!(old.io.sequential_pages, full_pages);
        assert!(
            new.io.sequential_pages < full_pages,
            "streaming LIMIT read {} of {} pages",
            new.io.sequential_pages,
            full_pages
        );
    }

    #[test]
    fn tiny_batches_still_agree() {
        let db = test_db(97);
        let graph = QueryGraph::new();
        let scan = scan_plan();
        let sort = Plan {
            node: PlanNode::Sort {
                input: scan.clone(),
                spec: [fto_order::SortKey {
                    col: ColId(1),
                    dir: Direction::Desc,
                }]
                .into_iter()
                .collect(),
            },
            layout: scan.layout.clone(),
            props: scan.props.clone(),
            cost: scan.cost,
        };
        let old = run_plan_materialized(&db, &graph, &sort).unwrap();
        let new = execute_plan(
            &db,
            &graph,
            &sort,
            &ExecOptions {
                batch_size: 1,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(old.rows, new.rows());
        assert_eq!(old.io.sort_rows, new.io.sort_rows);
    }

    #[test]
    fn parallel_sort_matches_serial_bit_for_bit() {
        let db = test_db(1777);
        let graph = QueryGraph::new();
        let scan = scan_plan();
        let sort = Plan {
            node: PlanNode::Sort {
                input: scan.clone(),
                spec: [
                    fto_order::SortKey {
                        col: ColId(1),
                        dir: Direction::Desc,
                    },
                    fto_order::SortKey {
                        col: ColId(0),
                        dir: Direction::Asc,
                    },
                ]
                .into_iter()
                .collect(),
            },
            layout: scan.layout.clone(),
            props: scan.props.clone(),
            cost: scan.cost,
        };
        let serial = execute_plan(&db, &graph, &sort, &ExecOptions::default()).unwrap();
        for threads in [2usize, 3, 4] {
            let par = execute_plan(
                &db,
                &graph,
                &sort,
                &ExecOptions {
                    batch_size: 97,
                    threads,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(serial.rows(), par.rows(), "threads={threads}");
            // Page-aligned partitions charge exactly the serial totals.
            assert_eq!(serial.io.sequential_pages, par.io.sequential_pages);
            assert_eq!(serial.io.rows_read, par.io.rows_read);
            assert_eq!(serial.io.sort_rows, par.io.sort_rows);
        }
    }

    #[test]
    fn parallel_instrumented_rollup_stays_exact() {
        let db = test_db(2048);
        let graph = QueryGraph::new();
        let scan = scan_plan();
        let sort = Plan {
            node: PlanNode::Sort {
                input: scan.clone(),
                spec: [fto_order::SortKey {
                    col: ColId(1),
                    dir: Direction::Asc,
                }]
                .into_iter()
                .collect(),
            },
            layout: scan.layout.clone(),
            props: scan.props.clone(),
            cost: scan.cost,
        };
        for threads in [1usize, 2, 4] {
            let opts = ExecOptions {
                batch_size: 128,
                threads,
                ..ExecOptions::default()
            };
            let (result, metrics) = execute_plan_instrumented(&db, &graph, &sort, &opts).unwrap();
            assert_eq!(result.num_rows(), 2048);
            assert!(
                metrics.validate().is_ok(),
                "threads={threads}: {:?}",
                metrics.validate()
            );
            assert_eq!(metrics.total_io(), result.io, "threads={threads}");
            if threads > 1 {
                // The Sort node carries one entry per exchange worker.
                assert_eq!(metrics.ops[0].workers.len(), threads);
                let worker_rows: u64 = metrics.ops[0].workers.iter().map(|w| w.rows).sum();
                assert_eq!(worker_rows, 2048);
            }
        }
    }
}
