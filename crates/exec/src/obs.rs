//! Session-level observability: a shared metrics [`Registry`], a
//! [`SlowQueryLog`], and the last optimizer [`Trace`], bundled behind one
//! cheaply-cloneable handle.
//!
//! Attach an [`Observability`] to a [`Session`](crate::Session) with
//! [`Session::observe`](crate::Session::observe); every query the session
//! plans and executes is then recorded:
//!
//! * **planning** — the planner's decision trace (when
//!   [`ObsOptions::trace_planning`] is on) and the `planner.*` work
//!   counters;
//! * **execution** — `session.*` counters (queries, rows, exact
//!   [`IoStats`] field totals), the `query.latency_us` / `query.rows` /
//!   `query.pages` histograms, `exec.worker_*` attribution from
//!   instrumented runs, and a slow-query log entry whenever a query's
//!   wall-clock time crosses [`ObsOptions::slow_query_threshold`].
//!
//! The registry's `session.io.*` counters are fed from the same
//! [`IoStats`] values the query outputs report, as exact `u64`s — they
//! reconcile to the summed per-query totals with no drift. The handle is
//! `Arc`-shared: clones observe into the same registry, so one
//! [`Observability`] can aggregate across many sessions (the REPL holds
//! one for its whole lifetime).

use fto_obs::{Registry, SlowQuery, SlowQueryLog, Trace};
use fto_planner::PlannerStats;
use fto_storage::IoStats;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metrics::PlanMetrics;
use crate::sortkernel::{SegmentStats, SortStats, SpillStats};

/// Tuning knobs for an [`Observability`] handle.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Queries at least this slow are captured in the slow-query log.
    pub slow_query_threshold: Duration,
    /// How many slow queries the log retains (oldest evicted first).
    pub slow_log_capacity: usize,
    /// Ring capacity for optimizer traces (events beyond it drop oldest
    /// first; counts stay exact).
    pub trace_capacity: usize,
    /// Collect an optimizer trace for every planned query (not just
    /// `EXPLAIN OPTIMIZER`), so slow-log entries carry their trace.
    pub trace_planning: bool,
    /// Queries whose worst per-operator cardinality Q-error
    /// ([`crate::metrics::q_error`]) reaches this factor are *misestimated*:
    /// they enter the slow-query log even when fast (a bad estimate is a
    /// latent slow query — it only takes more data), and bump the
    /// `session.misestimated` / `qerror.<op>` counters. The default is
    /// deliberately generous: small inputs and LIMIT-style early
    /// termination inflate Q-errors without indicting the estimator.
    /// Overridable in the REPL via `FTO_QERR_LIMIT`.
    pub qerror_threshold: f64,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            slow_query_threshold: Duration::from_millis(100),
            slow_log_capacity: 32,
            trace_capacity: fto_obs::trace::DEFAULT_CAPACITY,
            trace_planning: true,
            qerror_threshold: 16.0,
        }
    }
}

struct Inner {
    registry: Registry,
    slow_log: SlowQueryLog,
    last_trace: Mutex<Option<Trace>>,
    opts: ObsOptions,
}

/// Shared observability state for one or more sessions. Cloning is cheap
/// and clones record into the same registry and slow-query log.
#[derive(Clone)]
pub struct Observability {
    inner: Arc<Inner>,
}

impl Default for Observability {
    fn default() -> Self {
        Observability::new(ObsOptions::default())
    }
}

impl Observability {
    /// Creates a fresh registry/slow-log/trace bundle.
    pub fn new(opts: ObsOptions) -> Observability {
        Observability {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                slow_log: SlowQueryLog::new(opts.slow_log_capacity),
                last_trace: Mutex::new(None),
                opts,
            }),
        }
    }

    /// The options this handle was built with.
    pub fn options(&self) -> &ObsOptions {
        &self.inner.opts
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The shared slow-query log.
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.inner.slow_log
    }

    /// The optimizer trace of the most recently planned query, if
    /// tracing was on for it.
    pub fn last_trace(&self) -> Option<Trace> {
        self.inner
            .last_trace
            .lock()
            .expect("trace poisoned")
            .clone()
    }

    /// Text exposition of every registered metric (see
    /// [`Registry::expose`]).
    pub fn metrics_snapshot(&self) -> String {
        self.inner.registry.expose()
    }

    /// Records one compilation: planner work counters, and the optimizer
    /// trace (if one was collected) as the new "last trace".
    pub fn record_planning(&self, stats: &PlannerStats, trace: Option<&Trace>) {
        let r = &self.inner.registry;
        r.add("planner.joins_considered", stats.joins_considered);
        r.add("planner.plans_generated", stats.plans_generated);
        r.add("planner.plans_pruned", stats.plans_pruned);
        r.add("planner.sorts_added", stats.sorts_added);
        r.add("planner.sorts_avoided", stats.sorts_avoided);
        if let Some(t) = trace {
            *self.inner.last_trace.lock().expect("trace poisoned") = Some(t.clone());
        }
    }

    /// Records one query execution: session counters, exact I/O field
    /// totals, sort-kernel work (`sort.key_bytes` / `sort.comparisons`,
    /// the normalized-key codec's observables), spill and buffer-pool
    /// work under a memory budget (`spill.*` / `pool.*`),
    /// segmented-sort group formation (`segment.groups_formed`), the
    /// latency/rows/pages histograms, and plan-quality feedback when
    /// per-operator metrics are available: the `query.qerror` histogram
    /// (worst per-operator Q-error, in hundredths — `150` = 1.5×),
    /// `qerror.<op>` counters for operators past
    /// [`ObsOptions::qerror_threshold`], and `session.misestimated`.
    ///
    /// A slow-query log entry is recorded when the query crosses the
    /// latency threshold **or** is misestimated — carrying the annotated
    /// plan, the worst-estimated operator, and the optimizer trace
    /// collected at plan time.
    #[allow(clippy::too_many_arguments)]
    pub fn record_execution(
        &self,
        sql: Option<&str>,
        elapsed: Duration,
        rows: u64,
        io: &IoStats,
        sort: &SortStats,
        spill: &SpillStats,
        segment: &SegmentStats,
        plan_text: &str,
        trace: Option<&Trace>,
        metrics: Option<&PlanMetrics>,
    ) {
        let r = &self.inner.registry;
        r.inc("session.queries");
        r.add("session.rows", rows);
        r.add("session.io.sequential_pages", io.sequential_pages);
        r.add("session.io.random_pages", io.random_pages);
        r.add("session.io.index_pages", io.index_pages);
        r.add("session.io.sort_rows", io.sort_rows);
        r.add("session.io.rows_read", io.rows_read);
        r.add("session.io.spill_pages_written", io.spill_pages_written);
        r.add("session.io.spill_pages_read", io.spill_pages_read);
        r.add("session.io.pool_hits", io.pool_hits);
        r.add("session.io.pool_misses", io.pool_misses);
        r.add("sort.key_bytes", sort.key_bytes);
        r.add("sort.comparisons", sort.comparisons);
        r.add("spill.pages_written", io.spill_pages_written);
        r.add("spill.pages_read", io.spill_pages_read);
        r.add("spill.runs_formed", spill.runs_formed);
        r.add("spill.merge_passes", spill.merge_passes);
        r.add("pool.hits", io.pool_hits);
        r.add("pool.misses", io.pool_misses);
        r.add("segment.groups_formed", segment.groups_formed);
        r.observe(
            "query.latency_us",
            elapsed.as_micros().min(u64::MAX as u128) as u64,
        );
        r.observe("query.rows", rows);
        r.observe(
            "query.pages",
            io.sequential_pages + io.random_pages + io.index_pages,
        );
        // Plan-quality feedback: compare the planner's per-operator row
        // estimates against what actually flowed. The histogram stores
        // the worst Q-error in hundredths because buckets are integer
        // (`100` = exact, `250` = 2.5× off).
        let mut worst: Option<(f64, String)> = None;
        if let Some(pm) = metrics {
            if let Some((id, q)) = pm.worst_q_error() {
                let op = &pm.ops[id];
                worst = Some((
                    q,
                    format!("{}#{id} est={:.1} act={}", op.name, op.est_rows, op.rows),
                ));
                r.observe("query.qerror", (q * 100.0).round() as u64);
            }
            for op in &pm.ops {
                if op.rows_q_error() >= self.inner.opts.qerror_threshold {
                    r.inc(&format!("qerror.{}", op.name));
                }
            }
        }
        let misestimated = worst
            .as_ref()
            .map(|(q, _)| *q >= self.inner.opts.qerror_threshold)
            .unwrap_or(false);
        if misestimated {
            r.inc("session.misestimated");
        }
        if elapsed >= self.inner.opts.slow_query_threshold || misestimated {
            r.inc("session.slow_queries");
            let (max_qerror, worst_operator) = match worst {
                Some((q, label)) => (q, Some(label)),
                None => (1.0, None),
            };
            self.inner.slow_log.record(SlowQuery {
                sql: sql.map(str::to_string),
                elapsed,
                rows,
                plan: plan_text.to_string(),
                trace: trace
                    .map(|t| format!("{}{}", t.render(), t.summary()))
                    .unwrap_or_default(),
                max_qerror,
                worst_operator,
            });
        }
    }

    /// Records per-worker attribution from an instrumented execution:
    /// rows and batches each exchange worker produced.
    pub fn record_workers(&self, metrics: &PlanMetrics) {
        let r = &self.inner.registry;
        for op in &metrics.ops {
            for w in &op.workers {
                r.add("exec.worker_rows", w.rows);
                r.add("exec.worker_batches", w.batches);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_registry() {
        let obs = Observability::default();
        let other = obs.clone();
        obs.registry().inc("session.queries");
        other.registry().inc("session.queries");
        assert!(obs.metrics_snapshot().contains("counter session.queries 2"));
    }

    #[test]
    fn slow_threshold_gates_the_log() {
        let obs = Observability::new(ObsOptions {
            slow_query_threshold: Duration::from_millis(5),
            ..ObsOptions::default()
        });
        let io = IoStats::default();
        let sort = SortStats::default();
        let spill = SpillStats::default();
        let segment = SegmentStats::default();
        obs.record_execution(
            Some("select 1"),
            Duration::from_millis(1),
            1,
            &io,
            &sort,
            &spill,
            &segment,
            "p",
            None,
            None,
        );
        obs.record_execution(
            Some("select 2"),
            Duration::from_millis(9),
            1,
            &io,
            &sort,
            &spill,
            &segment,
            "p",
            None,
            None,
        );
        assert_eq!(obs.slow_log().total_recorded(), 1);
        assert!(obs.slow_log().render().contains("select 2"));
        assert!(obs
            .metrics_snapshot()
            .contains("counter session.slow_queries 1"));
    }

    #[test]
    fn misestimated_fast_query_enters_the_slow_log() {
        use crate::metrics::OpMetrics;
        let obs = Observability::new(ObsOptions {
            slow_query_threshold: Duration::from_secs(3600),
            qerror_threshold: 4.0,
            ..ObsOptions::default()
        });
        let pm = PlanMetrics {
            ops: vec![OpMetrics {
                name: "filter".to_string(),
                rows: 50,
                est_rows: 5.0,
                ..OpMetrics::default()
            }],
            children: vec![vec![]],
        };
        obs.record_execution(
            Some("select misjudged"),
            Duration::from_micros(10),
            50,
            &IoStats::default(),
            &SortStats::default(),
            &SpillStats::default(),
            &SegmentStats::default(),
            "p",
            None,
            Some(&pm),
        );
        assert_eq!(obs.slow_log().total_recorded(), 1);
        let text = obs.slow_log().render();
        assert!(
            text.contains("worst estimate: filter#0 est=5.0 act=50"),
            "{text}"
        );
        let snap = obs.metrics_snapshot();
        assert!(snap.contains("counter session.misestimated 1"), "{snap}");
        assert!(snap.contains("counter qerror.filter 1"), "{snap}");
        // 10× error in hundredths: the histogram saw a single value 1000.
        assert!(
            snap.contains("histogram query.qerror count=1 sum=1000"),
            "{snap}"
        );
    }
}
