//! Session-level observability: a shared metrics [`Registry`], a
//! [`SlowQueryLog`], and the last optimizer [`Trace`], bundled behind one
//! cheaply-cloneable handle.
//!
//! Attach an [`Observability`] to a [`Session`](crate::Session) with
//! [`Session::observe`](crate::Session::observe); every query the session
//! plans and executes is then recorded:
//!
//! * **planning** — the planner's decision trace (when
//!   [`ObsOptions::trace_planning`] is on) and the `planner.*` work
//!   counters;
//! * **execution** — `session.*` counters (queries, rows, exact
//!   [`IoStats`] field totals), the `query.latency_us` / `query.rows` /
//!   `query.pages` histograms, `exec.worker_*` attribution from
//!   instrumented runs, and a slow-query log entry whenever a query's
//!   wall-clock time crosses [`ObsOptions::slow_query_threshold`].
//!
//! The registry's `session.io.*` counters are fed from the same
//! [`IoStats`] values the query outputs report, as exact `u64`s — they
//! reconcile to the summed per-query totals with no drift. The handle is
//! `Arc`-shared: clones observe into the same registry, so one
//! [`Observability`] can aggregate across many sessions (the REPL holds
//! one for its whole lifetime).

use fto_obs::{Registry, SlowQuery, SlowQueryLog, Trace};
use fto_planner::PlannerStats;
use fto_storage::IoStats;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metrics::PlanMetrics;
use crate::sortkernel::{SortStats, SpillStats};

/// Tuning knobs for an [`Observability`] handle.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Queries at least this slow are captured in the slow-query log.
    pub slow_query_threshold: Duration,
    /// How many slow queries the log retains (oldest evicted first).
    pub slow_log_capacity: usize,
    /// Ring capacity for optimizer traces (events beyond it drop oldest
    /// first; counts stay exact).
    pub trace_capacity: usize,
    /// Collect an optimizer trace for every planned query (not just
    /// `EXPLAIN OPTIMIZER`), so slow-log entries carry their trace.
    pub trace_planning: bool,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            slow_query_threshold: Duration::from_millis(100),
            slow_log_capacity: 32,
            trace_capacity: fto_obs::trace::DEFAULT_CAPACITY,
            trace_planning: true,
        }
    }
}

struct Inner {
    registry: Registry,
    slow_log: SlowQueryLog,
    last_trace: Mutex<Option<Trace>>,
    opts: ObsOptions,
}

/// Shared observability state for one or more sessions. Cloning is cheap
/// and clones record into the same registry and slow-query log.
#[derive(Clone)]
pub struct Observability {
    inner: Arc<Inner>,
}

impl Default for Observability {
    fn default() -> Self {
        Observability::new(ObsOptions::default())
    }
}

impl Observability {
    /// Creates a fresh registry/slow-log/trace bundle.
    pub fn new(opts: ObsOptions) -> Observability {
        Observability {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                slow_log: SlowQueryLog::new(opts.slow_log_capacity),
                last_trace: Mutex::new(None),
                opts,
            }),
        }
    }

    /// The options this handle was built with.
    pub fn options(&self) -> &ObsOptions {
        &self.inner.opts
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The shared slow-query log.
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.inner.slow_log
    }

    /// The optimizer trace of the most recently planned query, if
    /// tracing was on for it.
    pub fn last_trace(&self) -> Option<Trace> {
        self.inner
            .last_trace
            .lock()
            .expect("trace poisoned")
            .clone()
    }

    /// Text exposition of every registered metric (see
    /// [`Registry::expose`]).
    pub fn metrics_snapshot(&self) -> String {
        self.inner.registry.expose()
    }

    /// Records one compilation: planner work counters, and the optimizer
    /// trace (if one was collected) as the new "last trace".
    pub fn record_planning(&self, stats: &PlannerStats, trace: Option<&Trace>) {
        let r = &self.inner.registry;
        r.add("planner.joins_considered", stats.joins_considered);
        r.add("planner.plans_generated", stats.plans_generated);
        r.add("planner.plans_pruned", stats.plans_pruned);
        r.add("planner.sorts_added", stats.sorts_added);
        r.add("planner.sorts_avoided", stats.sorts_avoided);
        if let Some(t) = trace {
            *self.inner.last_trace.lock().expect("trace poisoned") = Some(t.clone());
        }
    }

    /// Records one query execution: session counters, exact I/O field
    /// totals, sort-kernel work (`sort.key_bytes` / `sort.comparisons`,
    /// the normalized-key codec's observables), spill and buffer-pool
    /// work under a memory budget (`spill.*` / `pool.*`), the
    /// latency/rows/pages histograms, and — past the slow threshold — a
    /// slow-query log entry carrying the annotated plan and the optimizer
    /// trace collected at plan time.
    #[allow(clippy::too_many_arguments)]
    pub fn record_execution(
        &self,
        sql: Option<&str>,
        elapsed: Duration,
        rows: u64,
        io: &IoStats,
        sort: &SortStats,
        spill: &SpillStats,
        plan_text: &str,
        trace: Option<&Trace>,
    ) {
        let r = &self.inner.registry;
        r.inc("session.queries");
        r.add("session.rows", rows);
        r.add("session.io.sequential_pages", io.sequential_pages);
        r.add("session.io.random_pages", io.random_pages);
        r.add("session.io.index_pages", io.index_pages);
        r.add("session.io.sort_rows", io.sort_rows);
        r.add("session.io.rows_read", io.rows_read);
        r.add("session.io.spill_pages_written", io.spill_pages_written);
        r.add("session.io.spill_pages_read", io.spill_pages_read);
        r.add("session.io.pool_hits", io.pool_hits);
        r.add("session.io.pool_misses", io.pool_misses);
        r.add("sort.key_bytes", sort.key_bytes);
        r.add("sort.comparisons", sort.comparisons);
        r.add("spill.pages_written", io.spill_pages_written);
        r.add("spill.pages_read", io.spill_pages_read);
        r.add("spill.runs_formed", spill.runs_formed);
        r.add("spill.merge_passes", spill.merge_passes);
        r.add("pool.hits", io.pool_hits);
        r.add("pool.misses", io.pool_misses);
        r.observe(
            "query.latency_us",
            elapsed.as_micros().min(u64::MAX as u128) as u64,
        );
        r.observe("query.rows", rows);
        r.observe(
            "query.pages",
            io.sequential_pages + io.random_pages + io.index_pages,
        );
        if elapsed >= self.inner.opts.slow_query_threshold {
            r.inc("session.slow_queries");
            self.inner.slow_log.record(SlowQuery {
                sql: sql.map(str::to_string),
                elapsed,
                rows,
                plan: plan_text.to_string(),
                trace: trace
                    .map(|t| format!("{}{}", t.render(), t.summary()))
                    .unwrap_or_default(),
            });
        }
    }

    /// Records per-worker attribution from an instrumented execution:
    /// rows and batches each exchange worker produced.
    pub fn record_workers(&self, metrics: &PlanMetrics) {
        let r = &self.inner.registry;
        for op in &metrics.ops {
            for w in &op.workers {
                r.add("exec.worker_rows", w.rows);
                r.add("exec.worker_batches", w.batches);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_registry() {
        let obs = Observability::default();
        let other = obs.clone();
        obs.registry().inc("session.queries");
        other.registry().inc("session.queries");
        assert!(obs.metrics_snapshot().contains("counter session.queries 2"));
    }

    #[test]
    fn slow_threshold_gates_the_log() {
        let obs = Observability::new(ObsOptions {
            slow_query_threshold: Duration::from_millis(5),
            ..ObsOptions::default()
        });
        let io = IoStats::default();
        let sort = SortStats::default();
        let spill = SpillStats::default();
        obs.record_execution(
            Some("select 1"),
            Duration::from_millis(1),
            1,
            &io,
            &sort,
            &spill,
            "p",
            None,
        );
        obs.record_execution(
            Some("select 2"),
            Duration::from_millis(9),
            1,
            &io,
            &sort,
            &spill,
            "p",
            None,
        );
        assert_eq!(obs.slow_log().total_recorded(), 1);
        assert!(obs.slow_log().render().contains("select 2"));
        assert!(obs
            .metrics_snapshot()
            .contains("counter session.slow_queries 1"));
    }
}
