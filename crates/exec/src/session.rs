//! [`Session`]: the public entry point for compiling and executing SQL.
//!
//! A session borrows a loaded [`Database`] and carries an
//! [`OptimizerConfig`]; queries flow parse → bind → rewrite → order scan →
//! cost-based planning → streaming execution:
//!
//! ```no_run
//! use fto_exec::prelude::*;
//! # fn demo(db: &fto_storage::Database) -> fto_common::Result<()> {
//! let out = Session::new(db)
//!     .config(OptimizerConfig::default().with_batch_size(512))
//!     .plan("select k, v from t order by k")?
//!     .execute()?;
//! println!("{} rows, {}", out.num_rows(), out.io);
//! # Ok(()) }
//! ```

use crate::interp::run_plan_materialized;
use crate::metrics::PlanMetrics;
use crate::obs::Observability;
use crate::sortkernel::{self, SegmentStats, SortStats, SpillStats};
use crate::stream::{execute_plan, execute_plan_instrumented, Batch, ExecOptions, StreamResult};
use fto_common::{Result, Row};
use fto_obs::{ExecutionProfile, Profiler, Trace, TraceGuard};
use fto_planner::{OptimizerConfig, Plan, Planner, PlannerStats};
use fto_qgm::{rewrite, OrderScan, QueryGraph};
use fto_sql::{bind, parse_query, parse_statement, ExplainMode, Statement};
use fto_storage::{Database, IoStats};
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Duration;

/// Everything a query execution produced: the output (columnar batches,
/// with rows materialized on demand) plus the three observables the
/// paper's evaluation reports (simulated I/O, planner work, wall-clock
/// time).
#[derive(Debug)]
pub struct QueryOutput {
    /// Output batches, in the plan's output layout and order.
    batches: Vec<Batch>,
    /// Row materialization of `batches`, built lazily on first
    /// [`QueryOutput::rows`] call (pre-filled by the reference engine,
    /// which produces rows natively).
    rows_cache: OnceLock<Vec<Row>>,
    /// Simulated page I/O accumulated across the whole plan.
    pub io: IoStats,
    /// How much work the planner did choosing the plan.
    pub planner: PlannerStats,
    /// Wall-clock execution time (excluding planning).
    pub elapsed: Duration,
    /// Sort-kernel work this execution performed: normalized key bytes
    /// encoded and comparator calls, across every sort/merge in the plan
    /// (all worker threads included).
    pub sort: SortStats,
    /// Spill work this execution performed under a memory budget: runs
    /// (or hash partitions) written to spill files and external merge
    /// passes. All zero when the plan ran fully in memory.
    pub spill: SpillStats,
    /// Segmented (partial) sort work: prefix groups formed across every
    /// `SegmentedSort` operator in the plan. Zero when no segmented sort
    /// ran.
    pub segment: SegmentStats,
}

impl QueryOutput {
    /// The output as columnar batches, in emission order.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// The output as rows, materialized lazily from the batches on first
    /// call and cached. Order matches [`QueryOutput::batches`].
    pub fn rows(&self) -> &[Row] {
        self.rows_cache.get_or_init(|| {
            let mut out = Vec::with_capacity(self.num_rows());
            for b in &self.batches {
                b.append_rows_to(&mut out);
            }
            out
        })
    }

    /// Total output row count (no materialization).
    pub fn num_rows(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }
}

/// A query pipeline over one database under one optimizer configuration.
pub struct Session<'db> {
    db: &'db Database,
    config: OptimizerConfig,
    obs: Option<Observability>,
}

impl<'db> Session<'db> {
    /// Opens a session over a loaded database with the default
    /// configuration.
    pub fn new(db: &'db Database) -> Session<'db> {
        Session {
            db,
            config: OptimizerConfig::default(),
            obs: None,
        }
    }

    /// Replaces the optimizer/executor configuration (builder style).
    pub fn config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an observability handle (builder style): every query this
    /// session plans and executes is recorded into its registry and
    /// slow-query log. The handle is `Arc`-shared — attach clones of one
    /// handle to many sessions to aggregate across them.
    pub fn observe(mut self, obs: Observability) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached observability handle, if any.
    pub fn observability(&self) -> Option<&Observability> {
        self.obs.as_ref()
    }

    /// Text exposition of the attached registry's metrics; `None` when no
    /// observability handle is attached.
    pub fn metrics_snapshot(&self) -> Option<String> {
        self.obs.as_ref().map(Observability::metrics_snapshot)
    }

    /// The optimizer trace of the most recently planned query; `None`
    /// when no handle is attached or tracing was off.
    pub fn last_optimizer_trace(&self) -> Option<Trace> {
        self.obs.as_ref().and_then(Observability::last_trace)
    }

    /// The active configuration.
    pub fn current_config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// The underlying database.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Compiles SQL to an executable query: parse → bind → predicate
    /// pushdown → view merging → order scan → cost-based planning.
    pub fn plan(&self, sql: &str) -> Result<PreparedQuery<'db>> {
        self.plan_inner(&parse_query(sql)?, Some(sql), false)
    }

    /// [`Session::plan`] with optimizer tracing forced on for this one
    /// compilation, whether or not an observability handle is attached.
    /// The collected trace is available via [`PreparedQuery::trace`] and
    /// rendered by [`PreparedQuery::explain_optimizer`].
    pub fn plan_traced(&self, sql: &str) -> Result<PreparedQuery<'db>> {
        self.plan_inner(&parse_query(sql)?, Some(sql), true)
    }

    /// [`Session::plan`] starting from an already-parsed query AST.
    pub fn plan_parsed(&self, ast: &fto_sql::ast::Query) -> Result<PreparedQuery<'db>> {
        self.plan_inner(ast, None, false)
    }

    /// Compiles with an optional optimizer trace. The trace collector is
    /// installed around the whole compile pipeline (order scan included)
    /// on the calling thread, so the trace never depends on the executor
    /// thread count.
    fn plan_inner(
        &self,
        ast: &fto_sql::ast::Query,
        sql: Option<&str>,
        force_trace: bool,
    ) -> Result<PreparedQuery<'db>> {
        let trace_on = force_trace
            || self
                .obs
                .as_ref()
                .is_some_and(|o| o.options().trace_planning);
        let capacity = self
            .obs
            .as_ref()
            .map(|o| o.options().trace_capacity)
            .unwrap_or(fto_obs::trace::DEFAULT_CAPACITY);
        let guard = trace_on.then(|| TraceGuard::install(capacity));

        let compiled: Result<(QueryGraph, Plan, PlannerStats)> = (|| {
            let mut graph = bind(ast, self.db.catalog())?;
            rewrite::push_down_predicates(&mut graph);
            rewrite::merge_views(&mut graph);
            OrderScan::run(&mut graph, self.db.catalog());
            let (plan, stats) = {
                let mut planner = Planner::new(&graph, self.db.catalog(), self.config.clone());
                let plan = planner.plan_query()?;
                (plan, planner.stats)
            };
            Ok((graph, plan, stats))
        })();
        let trace = guard.map(TraceGuard::finish);
        let (graph, plan, planner_stats) = compiled?;

        if let Some(obs) = &self.obs {
            obs.record_planning(&planner_stats, trace.as_ref());
        }
        Ok(PreparedQuery {
            db: self.db,
            graph,
            plan,
            planner: planner_stats,
            batch_size: self.config.batch_size,
            threads: self.config.threads,
            sort_key_codec: self.config.sort_key_codec,
            memory_budget: self.config.memory_budget,
            obs: self.obs.clone(),
            sql: sql.map(str::to_string),
            trace,
        })
    }

    /// Compile + execute in one call.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput> {
        self.plan(sql)?.execute()
    }

    /// Compile + execute with the timeline profiler attached: alongside
    /// the normal output, returns the merged [`ExecutionProfile`]
    /// (export with [`ExecutionProfile::to_chrome_trace`] /
    /// [`ExecutionProfile::to_folded_stacks`]). Rows, I/O totals, and
    /// metric rollups are bit-identical to an unprofiled run.
    pub fn profile(&self, sql: &str) -> Result<(QueryOutput, ExecutionProfile)> {
        let (out, _, profile) = self.plan(sql)?.execute_profiled()?;
        Ok((out, profile))
    }

    /// Renders the chosen plan for `sql` (estimates only) without
    /// executing it.
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(self.plan(sql)?.explain())
    }

    /// Parses and runs a top-level statement, dispatching the
    /// `EXPLAIN [ANALYZE | OPTIMIZER]` forms to the plan renderers: plain
    /// queries return rows, `EXPLAIN` returns the estimated plan tree,
    /// `EXPLAIN ANALYZE` executes the query and returns the tree
    /// annotated with per-operator actuals, and `EXPLAIN OPTIMIZER`
    /// returns the optimizer's decision trace with an enumeration
    /// summary (the query is planned but not executed).
    pub fn run(&self, sql: &str) -> Result<StatementOutput> {
        match parse_statement(sql)? {
            Statement::Query(q) => Ok(StatementOutput::Rows(Box::new(
                self.plan_inner(&q, Some(sql), false)?.execute()?,
            ))),
            Statement::Explain { mode, query } => {
                let force_trace = mode == ExplainMode::Optimizer;
                let prepared = self.plan_inner(&query, Some(sql), force_trace)?;
                let text = match mode {
                    ExplainMode::Plan => prepared.explain(),
                    ExplainMode::Analyze => prepared.explain_analyze()?,
                    ExplainMode::Optimizer => prepared.explain_optimizer(),
                };
                Ok(StatementOutput::Explain(text))
            }
        }
    }
}

/// What one top-level statement produced (see [`Session::run`]).
#[derive(Debug)]
pub enum StatementOutput {
    /// A plain query: its rows and observables (boxed: [`QueryOutput`]
    /// is large next to the explain text).
    Rows(Box<QueryOutput>),
    /// An `EXPLAIN [ANALYZE]` form: the rendered plan tree.
    Explain(String),
}

/// A compiled query bound to its database, ready to execute (repeatedly).
pub struct PreparedQuery<'db> {
    db: &'db Database,
    graph: QueryGraph,
    plan: Plan,
    planner: PlannerStats,
    batch_size: usize,
    threads: usize,
    sort_key_codec: bool,
    memory_budget: Option<usize>,
    obs: Option<Observability>,
    sql: Option<String>,
    trace: Option<Trace>,
}

impl PreparedQuery<'_> {
    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            batch_size: self.batch_size,
            threads: self.threads,
            sort_key_codec: self.sort_key_codec,
            memory_budget: self.memory_budget,
            profiler: None,
        }
    }

    /// Executes through the streaming batched executor (the default
    /// engine), at the parallel degree the session's
    /// [`OptimizerConfig::threads`] selected.
    ///
    /// With an observability handle attached, execution goes through the
    /// instrumented engine (identical rows and totals) so per-worker
    /// attribution lands in the registry, and the run is recorded:
    /// session counters, latency/rows/pages histograms, and — past the
    /// slow threshold — a slow-query log entry.
    pub fn execute(&self) -> Result<QueryOutput> {
        if self.obs.is_some() {
            return self.execute_instrumented().map(|(out, _)| out);
        }
        let before = sortkernel::stats_snapshot();
        let spill_before = sortkernel::spill_stats_snapshot();
        let segment_before = sortkernel::segment_stats_snapshot();
        let result = execute_plan(self.db, &self.graph, &self.plan, &self.exec_options())?;
        Ok(self.wrap(
            result,
            sortkernel::stats_snapshot().delta_since(before),
            sortkernel::spill_stats_snapshot().delta_since(spill_before),
            sortkernel::segment_stats_snapshot().delta_since(segment_before),
        ))
    }

    /// [`PreparedQuery::execute`] with per-operator instrumentation:
    /// alongside the normal output, returns a [`PlanMetrics`] recording
    /// rows/batches, [`IoStats`] deltas, and elapsed time per plan node
    /// (pre-order ids, root = 0). The rows and session totals are
    /// identical to the uninstrumented path. Recorded into the attached
    /// observability handle, if any.
    pub fn execute_instrumented(&self) -> Result<(QueryOutput, PlanMetrics)> {
        self.execute_instrumented_inner(None)
    }

    /// [`PreparedQuery::execute_instrumented`] with the timeline
    /// profiler attached: additionally returns the merged
    /// [`ExecutionProfile`] — per-lane operator spans, spill/segment
    /// instants, and per-worker exchange lanes, merged deterministically
    /// by (lane, seq). Profiling only observes: rows, [`IoStats`], and
    /// the [`PlanMetrics`] rollup are bit-identical to
    /// [`PreparedQuery::execute_instrumented`], and the run is recorded
    /// into the attached observability handle the same way.
    pub fn execute_profiled(&self) -> Result<(QueryOutput, PlanMetrics, ExecutionProfile)> {
        let profiler = Profiler::new();
        let (out, metrics) = self.execute_instrumented_inner(Some(profiler.clone()))?;
        Ok((out, metrics, profiler.finish()))
    }

    fn execute_instrumented_inner(
        &self,
        profiler: Option<Profiler>,
    ) -> Result<(QueryOutput, PlanMetrics)> {
        let before = sortkernel::stats_snapshot();
        let spill_before = sortkernel::spill_stats_snapshot();
        let segment_before = sortkernel::segment_stats_snapshot();
        let mut opts = self.exec_options();
        opts.profiler = profiler;
        let (result, metrics) = execute_plan_instrumented(self.db, &self.graph, &self.plan, &opts)?;
        let out = self.wrap(
            result,
            sortkernel::stats_snapshot().delta_since(before),
            sortkernel::spill_stats_snapshot().delta_since(spill_before),
            sortkernel::segment_stats_snapshot().delta_since(segment_before),
        );
        if let Some(obs) = &self.obs {
            obs.record_execution(
                self.sql.as_deref(),
                out.elapsed,
                out.num_rows() as u64,
                &out.io,
                &out.sort,
                &out.spill,
                &out.segment,
                &self.explain(),
                self.trace.as_ref(),
                Some(&metrics),
            );
            obs.record_workers(&metrics);
        }
        Ok((out, metrics))
    }

    /// Executes through the materializing reference interpreter. Exists
    /// for differential testing and engine comparisons; the rows are
    /// identical to [`PreparedQuery::execute`], the I/O accounting is the
    /// old all-up-front model. Deliberately *not* recorded into the
    /// observability registry: its I/O model would skew the `session.io`
    /// totals that reconcile against the streaming engine.
    pub fn execute_materialized(&self) -> Result<QueryOutput> {
        let before = sortkernel::stats_snapshot();
        let result = run_plan_materialized(self.db, &self.graph, &self.plan)?;
        let sort = sortkernel::stats_snapshot().delta_since(before);
        let batches = if result.rows.is_empty() {
            Vec::new()
        } else {
            vec![Batch::from_rows(&result.rows)]
        };
        let rows_cache = OnceLock::new();
        let _ = rows_cache.set(result.rows);
        Ok(QueryOutput {
            batches,
            rows_cache,
            io: result.io,
            planner: self.planner,
            elapsed: result.elapsed,
            sort,
            // The reference interpreter ignores the budget (it exists to
            // check rows, not memory), so it never spills — and it full-
            // sorts segmented enforcers, so it never forms groups.
            spill: SpillStats::default(),
            segment: SegmentStats::default(),
        })
    }

    fn wrap(
        &self,
        result: StreamResult,
        sort: SortStats,
        spill: SpillStats,
        segment: SegmentStats,
    ) -> QueryOutput {
        QueryOutput {
            batches: result.batches,
            rows_cache: OnceLock::new(),
            io: result.io,
            planner: self.planner,
            elapsed: result.elapsed,
            sort,
            spill,
            segment,
        }
    }

    /// The optimizer trace collected while planning this query, when
    /// tracing was on ([`Session::plan_traced`], `EXPLAIN OPTIMIZER`, or
    /// an attached handle with
    /// [`trace_planning`](crate::obs::ObsOptions::trace_planning)).
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The chosen physical plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The rewritten query graph the plan was built from.
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// Planner work counters for this compilation.
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner
    }

    /// Renders the plan with resolved column names.
    pub fn explain(&self) -> String {
        let registry = &self.graph.registry;
        self.plan.explain(&|c| registry.name(c).to_string())
    }

    /// Renders the plan with the order/key/predicate properties the
    /// optimizer tracked for every stream (paper §5.2.1).
    pub fn explain_properties(&self) -> String {
        let registry = &self.graph.registry;
        self.plan
            .explain_properties(&|c| registry.name(c).to_string())
    }

    /// Executes the query and renders the plan tree with each operator's
    /// estimates (`rows`, `cost` — the optimizer's view) annotated with
    /// what actually happened: the estimated rows next to rows and
    /// batches produced with their cardinality Q-error
    /// (`max(est, act) / min(est, act)`, 1.00 = exact), the pages the
    /// operator itself charged (children excluded), the resulting
    /// [`IoStats::weighted_page_cost`] against the estimated self cost,
    /// and time spent. A totals line closes the report; the per-operator
    /// page deltas sum exactly to it.
    pub fn explain_analyze(&self) -> Result<String> {
        let (out, metrics) = self.execute_instrumented()?;
        let registry = &self.graph.registry;
        let mut text =
            self.plan
                .explain_annotated(&|c| registry.name(c).to_string(), &|id, node| {
                    let m = &metrics.ops[id];
                    match metrics.self_io(id) {
                        Some(s) => {
                            let mut note = format!(
                                "est: rows={:.0} | actual: rows={} batches={} | q-err={:.2} | \
                         self pages: seq={} rand={} index={} \
                         (wpc {:.1} vs est {:.1}) | {:.1?}",
                                m.est_rows,
                                m.rows,
                                m.batches,
                                m.rows_q_error(),
                                s.sequential_pages,
                                s.random_pages,
                                s.index_pages,
                                s.weighted_page_cost(),
                                node.self_cost(),
                                metrics.self_elapsed(id),
                            );
                            if let Some(est_groups) = m.est_groups {
                                let _ = write!(
                                    note,
                                    " | groups est={est_groups} act={}",
                                    m.segment_groups
                                );
                            }
                            if s.spill_pages_written + s.spill_pages_read > 0 {
                                let _ = write!(
                                    note,
                                    " | spill: w={} r={}",
                                    s.spill_pages_written, s.spill_pages_read
                                );
                            }
                            if s.pool_hits + s.pool_misses > 0 {
                                let _ = write!(
                                    note,
                                    " | pool: hits={} misses={}",
                                    s.pool_hits, s.pool_misses
                                );
                            }
                            if !m.workers.is_empty() {
                                let _ = write!(note, " | workers:");
                                for (k, w) in m.workers.iter().enumerate() {
                                    let _ = write!(
                                        note,
                                        " p{k} rows={} batches={} ({:.1?})",
                                        w.rows, w.batches, w.elapsed
                                    );
                                }
                            }
                            note
                        }
                        None => "actual: <inconsistent I/O attribution>".to_string(),
                    }
                });
        let _ = write!(
            text,
            "totals: {} | {} rows in {:.1?} | sort: key_bytes={} comparisons={}",
            out.io,
            out.num_rows(),
            out.elapsed,
            out.sort.key_bytes,
            out.sort.comparisons
        );
        if out.spill != SpillStats::default() {
            let _ = write!(
                text,
                " | spill: runs={} merge_passes={}",
                out.spill.runs_formed, out.spill.merge_passes
            );
        }
        if out.segment != SegmentStats::default() {
            let _ = write!(text, " | segmented: groups={}", out.segment.groups_formed);
        }
        text.push('\n');
        Ok(text)
    }

    /// Renders the optimizer's decision trace for this compilation: the
    /// chosen plan, then every span/plan/sort decision the planner made
    /// (pruning losers named with their winners, sort-ahead variants with
    /// the interesting order that motivated them), closed by the
    /// enumeration summary. The trace carries no timestamps and planning
    /// always runs on the calling thread, so the output is byte-identical
    /// across runs and executor thread counts.
    pub fn explain_optimizer(&self) -> String {
        let mut text = String::from("chosen plan:\n");
        text.push_str(&self.explain());
        if !text.ends_with('\n') {
            text.push('\n');
        }
        match &self.trace {
            Some(t) => {
                text.push_str("optimizer trace:\n");
                text.push_str(&t.render());
                text.push_str(&t.summary());
            }
            None => text.push_str("optimizer trace: <not collected; tracing was off>\n"),
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut cat = fto_catalog::Catalog::new();
        let t = cat
            .create_table(
                "t",
                vec![
                    fto_catalog::ColumnDef::new("k", fto_common::DataType::Int),
                    fto_catalog::ColumnDef::new("v", fto_common::DataType::Int),
                ],
                vec![fto_catalog::KeyDef::primary([0])],
            )
            .unwrap();
        let mut db = Database::new(cat);
        db.load_table(
            t,
            (0..40)
                .map(|i| {
                    vec![fto_common::Value::Int(i), fto_common::Value::Int(i % 4)]
                        .into_boxed_slice()
                })
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn builder_chain_plans_and_executes() {
        let db = db();
        let out = Session::new(&db)
            .config(OptimizerConfig::default().with_batch_size(8))
            .plan("select k, v from t order by k desc")
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(out.num_rows(), 40);
        assert_eq!(out.rows()[0][0], fto_common::Value::Int(39));
        assert!(out.io.rows_read >= 40);
    }

    #[test]
    fn both_engines_agree_through_prepared_query() {
        let db = db();
        let session = Session::new(&db);
        let q = session
            .plan("select v, count(*) as n from t group by v order by v")
            .unwrap();
        let streaming = q.execute().unwrap();
        let materialized = q.execute_materialized().unwrap();
        assert_eq!(streaming.rows(), materialized.rows());
        assert_eq!(streaming.num_rows(), 4);
    }

    #[test]
    fn explain_analyze_annotates_actuals() {
        let db = db();
        let q = Session::new(&db)
            .plan("select k, v from t order by v limit 5")
            .unwrap();
        let text = q.explain_analyze().unwrap();
        assert!(text.contains("actual: rows="), "{text}");
        assert!(text.contains("totals:"), "{text}");
        let (out, metrics) = q.execute_instrumented().unwrap();
        assert!(metrics.validate().is_ok(), "{:?}", metrics.validate());
        assert_eq!(metrics.total_io(), out.io);
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn run_dispatches_statements() {
        let db = db();
        let s = Session::new(&db);
        match s.run("select k from t limit 3").unwrap() {
            StatementOutput::Rows(out) => assert_eq!(out.num_rows(), 3),
            other => panic!("expected rows, got {other:?}"),
        }
        match s.run("explain select k from t order by k").unwrap() {
            StatementOutput::Explain(text) => {
                assert!(text.contains("rows="), "{text}");
                assert!(!text.contains("actual:"), "{text}");
            }
            other => panic!("expected explain text, got {other:?}"),
        }
        match s.run("explain analyze select k from t order by k").unwrap() {
            StatementOutput::Explain(text) => assert!(text.contains("actual:"), "{text}"),
            other => panic!("expected explain text, got {other:?}"),
        }
        match s
            .run("explain optimizer select k from t order by k")
            .unwrap()
        {
            StatementOutput::Explain(text) => {
                assert!(text.contains("chosen plan:"), "{text}");
                assert!(text.contains("optimizer trace:"), "{text}");
                assert!(text.contains("summary:"), "{text}");
            }
            other => panic!("expected explain text, got {other:?}"),
        }
    }

    #[test]
    fn observed_session_records_and_reconciles() {
        let db = db();
        let obs = Observability::default();
        let s = Session::new(&db).observe(obs.clone());
        let out = s.execute("select k, v from t order by v limit 7").unwrap();
        let snapshot = obs.metrics_snapshot();
        assert!(snapshot.contains("counter session.queries 1"), "{snapshot}");
        assert!(
            snapshot.contains(&format!("counter session.rows {}", out.num_rows())),
            "{snapshot}"
        );
        assert!(
            snapshot.contains(&format!(
                "counter session.io.rows_read {}",
                out.io.rows_read
            )),
            "{snapshot}"
        );
        assert!(
            snapshot.contains("histogram query.latency_us"),
            "{snapshot}"
        );
        assert!(
            s.last_optimizer_trace().is_some(),
            "trace_planning default should capture a trace"
        );
    }

    #[test]
    fn explain_names_columns() {
        let db = db();
        let q = Session::new(&db)
            .plan("select k from t order by k")
            .unwrap();
        let text = q.explain();
        assert!(text.contains('k'), "{text}");
        let props = q.explain_properties();
        assert!(props.contains("order") || props.contains("keys"), "{props}");
    }
}
