//! The exchange layer: morsel-style intra-query parallelism on plain
//! `std::thread`.
//!
//! At parallel degree P > 1, lowering (in [`crate::stream`]) replaces
//! eligible plan positions with the operators here. Each exchange fans a
//! *partitionable* subtree — a Filter/Project chain over one table or
//! index scan — out over P scoped worker threads. Every worker lowers its
//! own copy of the subtree **inside** its thread (operator trees never
//! cross threads, so [`crate::stream::Operator`] needs no `Send` bound),
//! drives it over a deterministic scan partition
//! ([`fto_storage::HeapScanState::partition`] /
//! [`fto_storage::IndexScanState::open_partition`]), and charges a
//! private [`IoStats`] that the coordinator merges into the session
//! stream in partition order. Page/leaf-aligned partitions charge exactly
//! the pages a serial scan charges, so session totals — and the
//! [`crate::metrics::PlanMetrics`] exact-rollup invariant — are preserved
//! at every degree.
//!
//! Determinism contract (what makes parallel output bit-identical to
//! serial):
//!
//! * [`GatherOp`] concatenates worker outputs in partition order, and
//!   partition k of a scan *is* segment k of the serial emission order
//!   (reverse index scans map partitions accordingly) — so a gather
//!   reproduces the serial stream exactly.
//! * [`MergeExchangeOp`] has each worker stably sort its run with the
//!   shared kernel, then K-way merges by `(keys, seq)` where run k's
//!   sequence tags occupy the interval of serial positions its partition
//!   covered — reproducing the serial stable sort
//!   ([`crate::sortkernel::SortedRun::from_contiguous`]).
//! * [`RepartitionSortOp`] handles non-partitionable sort inputs: the
//!   coordinator drains the child serially, deals rows round-robin
//!   tagging each with its global position, workers sort buckets by
//!   `(keys, seq)`, and the merge restores the serial stable sort.
//! * [`TopNExchangeOp`] takes each partition's local top-N (kernel
//!   selection, position-tagged), merges by `(keys, seq)`, and truncates
//!   — any row of the global top-N is necessarily in its partition's
//!   top-N, so the result equals the serial Top-N exactly.
//!
//! All exchanges are pipeline breakers that materialize at `open`; they
//! are only inserted where the serial plan drained its input at `open`
//! anyway (Sort, TopN, join build sides, hash group-by inputs), so
//! early-termination behavior above them is unchanged.

use crate::metrics::{OpMetrics, WorkerOpMetrics};
use crate::sortkernel::{self, SortKeys, SortedRun};
use crate::stream::{drain_all, lower_worker, Batch, ExecContext, ExecOptions, Operator};
use fto_common::{Result, Row};
use fto_obs::profile;
use fto_planner::Plan;
use fto_storage::IoStats;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a worker needs to lower and drive its partition of an
/// exchanged subtree.
pub(crate) struct PartitionSpec {
    /// The subtree each worker lowers privately.
    pub plan: Arc<Plan>,
    /// Number of partitions (the exchange's degree of parallelism).
    pub parts: usize,
    /// Instrumentation slots shared with the coordinator, if any.
    pub slots: Option<Arc<Mutex<Vec<OpMetrics>>>>,
    /// Pre-order id of the subtree's root slot (workers record into the
    /// ids the coordinator reserved starting here).
    pub base_id: usize,
}

/// One worker's result: the finished payload plus its private I/O stream
/// and drive statistics.
struct WorkerRun<T> {
    out: T,
    io: IoStats,
    batches: u64,
    elapsed: Duration,
}

/// Runs the spec's subtree over all partitions on scoped threads; worker
/// `k` drains partition `k` and then applies `finish` (e.g. sorting the
/// run) before returning. Results come back in partition order, and a
/// worker's private `IoStats` captures everything it charged — including
/// whatever `finish` adds — so the coordinator can merge the streams in a
/// deterministic order.
fn run_partitions<T, F>(
    cx: &ExecContext<'_>,
    spec: &PartitionSpec,
    finish: F,
) -> Result<Vec<WorkerRun<T>>>
where
    T: Send,
    F: Fn(Vec<Row>, &mut IoStats) -> T + Sync,
{
    let parts = spec.parts;
    // Workers rebuild their own contexts from plain copies of the
    // coordinator's knobs: `ExecContext` itself is not `Sync` (its buffer
    // pool is a `RefCell`). A memory budget splits into per-worker
    // sub-budgets of `budget / P` (at least one byte), so P bounded
    // partition pipelines together stay within the query's budget; each
    // worker context builds its own private pool from its share.
    let (db, graph, batch_size, sort_key_codec) =
        (cx.db, cx.graph, cx.batch_size, cx.sort_key_codec);
    let sub_budget = cx.memory_budget.map(|b| (b / parts).max(1));
    // Profiler lanes are allocated here on the coordinator, before any
    // worker spawns, so lane numbering reflects partition order — never
    // thread scheduling. Each worker installs its pre-assigned lane for
    // the lifetime of its partition pipeline.
    let lane_base = cx.profiler.as_ref().map(|p| p.alloc_lanes(parts as u32));
    let results: Vec<Result<WorkerRun<T>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts)
            .map(|part| {
                let finish = &finish;
                let profiler = cx.profiler.clone();
                s.spawn(move || -> Result<WorkerRun<T>> {
                    let started = Instant::now();
                    let _lane = profiler.as_ref().map(|p| {
                        p.install_lane_at(
                            lane_base.expect("lanes pre-allocated") + part as u32,
                            format!("worker p{part}"),
                        )
                    });
                    profile::span_begin("exchange", || format!("partition p{part}"));
                    // Worker contexts pin threads to 1: partition
                    // pipelines never nest exchanges.
                    let wcx = ExecContext::new(
                        db,
                        graph,
                        &ExecOptions {
                            batch_size,
                            threads: 1,
                            sort_key_codec,
                            memory_budget: sub_budget,
                            profiler: None,
                        },
                    );
                    let mut wio = IoStats::new();
                    let mut op =
                        lower_worker(&spec.plan, part, parts, spec.slots.clone(), spec.base_id)?;
                    op.open(&wcx, &mut wio)?;
                    let mut rows = Vec::new();
                    let mut batches = 0u64;
                    while let Some(batch) = op.next_batch(&wcx, &mut wio)? {
                        batches += 1;
                        batch.append_rows_to(&mut rows);
                    }
                    op.close();
                    let out = finish(rows, &mut wio);
                    profile::span_end("exchange", || format!("partition p{part}"));
                    Ok(WorkerRun {
                        out,
                        io: wio,
                        batches,
                        elapsed: started.elapsed(),
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    results.into_iter().collect()
}

/// Attaches per-worker metrics to the slot with pre-order id `id`.
fn record_workers(
    slot: &Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    workers: Vec<WorkerOpMetrics>,
) {
    if let Some((id, slots)) = slot {
        slots.lock().expect("metrics mutex poisoned")[*id].workers = workers;
    }
}

/// Streams a buffered result in batch-size chunks (the tail shared by all
/// exchange operators).
fn emit(buf: &[Row], pos: &mut usize, batch_size: usize) -> Option<Batch> {
    if *pos >= buf.len() {
        return None;
    }
    let end = (*pos + batch_size).min(buf.len());
    let batch = Batch::from_rows(&buf[*pos..end]);
    *pos = end;
    Some(batch)
}

/// Order-preserving gather: drains the P partition pipelines on worker
/// threads and concatenates their outputs in partition order — exactly
/// the serial emission order. Inserted where the parent fully drains the
/// child at `open` (join build sides, hash group-by inputs).
///
/// The gather deliberately has no metric slot of its own: the workers'
/// wrappers record rows/batches/I/O into the exchanged subtree's slots,
/// and their per-worker breakdown lands on the subtree root's
/// [`OpMetrics::workers`].
pub(crate) struct GatherOp {
    spec: PartitionSpec,
    buf: Vec<Row>,
    pos: usize,
}

impl GatherOp {
    pub(crate) fn new(spec: PartitionSpec) -> GatherOp {
        GatherOp {
            spec,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Operator for GatherOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        let runs = run_partitions(cx, &self.spec, |rows, _| rows)?;
        let mut workers = Vec::with_capacity(runs.len());
        self.buf = Vec::new();
        for run in runs {
            io.merge(&run.io);
            workers.push(WorkerOpMetrics {
                rows: run.out.len() as u64,
                batches: run.batches,
                io: run.io,
                elapsed: run.elapsed,
            });
            self.buf.extend(run.out);
        }
        let slot = self
            .spec
            .slots
            .as_ref()
            .map(|s| (self.spec.base_id, Arc::clone(s)));
        record_workers(&slot, workers);
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<Option<Batch>> {
        Ok(emit(&self.buf, &mut self.pos, cx.batch_size))
    }

    fn close(&mut self) {
        self.buf = Vec::new();
    }
}

/// Parallel sort over a partitionable input: workers drain and stably
/// sort disjoint partitions of the serial stream, the coordinator tags
/// each run with its partition's serial interval and K-way merges by
/// `(keys, seq)` — bit-identical to the serial sort operator's output.
pub(crate) struct MergeExchangeOp {
    spec: PartitionSpec,
    keys: SortKeys,
    own_slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    buf: Vec<Row>,
    pos: usize,
}

impl MergeExchangeOp {
    pub(crate) fn new(
        spec: PartitionSpec,
        keys: SortKeys,
        own_slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    ) -> MergeExchangeOp {
        MergeExchangeOp {
            spec,
            keys,
            own_slot,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Operator for MergeExchangeOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        let keys = &self.keys;
        let codec = cx.sort_key_codec;
        // Each worker charges its run to `sort_rows` and sorts it inside
        // the thread — the parallel half of the work. On the codec path
        // the worker keeps its normalized keys (tagged with local
        // positions) so the coordinator's merge is memcmp-only.
        let runs = run_partitions(cx, &self.spec, |mut rows, wio| {
            wio.sort_rows += rows.len() as u64;
            if codec {
                sortkernel::sort_run_codec(rows, keys)
            } else {
                sortkernel::sort_rows(&mut rows, keys);
                SortedRun::from_contiguous(rows, 0)
            }
        })?;
        let mut workers = Vec::with_capacity(runs.len());
        let mut sorted = Vec::with_capacity(runs.len());
        let mut base = 0u64;
        for run in runs {
            io.merge(&run.io);
            workers.push(WorkerOpMetrics {
                rows: run.out.rows.len() as u64,
                batches: run.batches,
                io: run.io,
                elapsed: run.elapsed,
            });
            let mut srun = run.out;
            let len = srun.rows.len() as u64;
            // Rebase local tags onto the partition's serial interval.
            srun.shift(base);
            sorted.push(srun);
            base += len;
        }
        record_workers(&self.own_slot, workers);
        self.buf = sortkernel::merge_runs(sorted, &self.keys);
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<Option<Batch>> {
        Ok(emit(&self.buf, &mut self.pos, cx.batch_size))
    }

    fn close(&mut self) {
        self.buf = Vec::new();
    }
}

/// Parallel sort for inputs that cannot be partitioned (joins,
/// aggregations): the coordinator drains the serial child, deals rows
/// round-robin into P buckets tagged with their global positions, workers
/// sort the buckets by `(keys, seq)`, and the K-way merge restores the
/// serial stable sort exactly.
pub(crate) struct RepartitionSortOp {
    child: Box<dyn Operator>,
    keys: SortKeys,
    parts: usize,
    own_slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    buf: Vec<Row>,
    pos: usize,
}

impl RepartitionSortOp {
    pub(crate) fn new(
        child: Box<dyn Operator>,
        keys: SortKeys,
        parts: usize,
        own_slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    ) -> RepartitionSortOp {
        RepartitionSortOp {
            child,
            keys,
            parts,
            own_slot,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Operator for RepartitionSortOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        let rows = drain_all(&mut self.child, cx, io)?;
        io.sort_rows += rows.len() as u64;
        let mut buckets: Vec<Vec<(u64, Row)>> = (0..self.parts).map(|_| Vec::new()).collect();
        for (g, row) in rows.into_iter().enumerate() {
            buckets[g % self.parts].push((g as u64, row));
        }
        let keys = &self.keys;
        let codec = cx.sort_key_codec;
        // Lanes pre-allocated on the coordinator, as in run_partitions.
        let lane_base = cx
            .profiler
            .as_ref()
            .map(|p| p.alloc_lanes(self.parts as u32));
        let runs: Vec<(SortedRun, Duration)> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(part, bucket)| {
                    let profiler = cx.profiler.clone();
                    s.spawn(move || {
                        let _lane = profiler.as_ref().map(|p| {
                            p.install_lane_at(
                                lane_base.expect("lanes pre-allocated") + part as u32,
                                format!("bucket-sort p{part}"),
                            )
                        });
                        profile::span_begin("exchange", || format!("bucket p{part}"));
                        let started = Instant::now();
                        let run = sortkernel::sort_tagged_with(bucket, keys, codec);
                        let elapsed = started.elapsed();
                        profile::span_end("exchange", || format!("bucket p{part}"));
                        (run, elapsed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        // Bucket sorts touch no pages and pull no batches; only rows and
        // sort time are meaningful per worker here.
        let workers = runs
            .iter()
            .map(|(run, elapsed)| WorkerOpMetrics {
                rows: run.rows.len() as u64,
                batches: 0,
                io: IoStats::new(),
                elapsed: *elapsed,
            })
            .collect();
        record_workers(&self.own_slot, workers);
        self.buf = sortkernel::merge_runs(runs.into_iter().map(|(run, _)| run).collect(), keys);
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<Option<Batch>> {
        Ok(emit(&self.buf, &mut self.pos, cx.batch_size))
    }

    fn close(&mut self) {
        self.buf = Vec::new();
        self.child.close();
    }
}

/// Parallel Top-N over a partitionable input: each worker selects its
/// partition's local top-N tagged with local positions; the coordinator
/// shifts tags onto the partitions' serial intervals, merges by
/// `(keys, seq)`, and truncates. Any row of the global top-N is in its
/// partition's top-N, so the result is bit-identical to the serial
/// operator — including the choice among boundary ties (earliest serial
/// positions win).
pub(crate) struct TopNExchangeOp {
    spec: PartitionSpec,
    keys: SortKeys,
    n: usize,
    own_slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    buf: Vec<Row>,
    pos: usize,
}

impl TopNExchangeOp {
    pub(crate) fn new(
        spec: PartitionSpec,
        keys: SortKeys,
        n: usize,
        own_slot: Option<(usize, Arc<Mutex<Vec<OpMetrics>>>)>,
    ) -> TopNExchangeOp {
        TopNExchangeOp {
            spec,
            keys,
            n,
            own_slot,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Operator for TopNExchangeOp {
    fn open(&mut self, cx: &ExecContext<'_>, io: &mut IoStats) -> Result<()> {
        let keys = &self.keys;
        let n = self.n;
        let codec = cx.sort_key_codec;
        let runs = run_partitions(cx, &self.spec, |rows, _| {
            let total = rows.len() as u64;
            let tagged: Vec<(u64, Row)> = rows
                .into_iter()
                .enumerate()
                .map(|(i, r)| (i as u64, r))
                .collect();
            (sortkernel::top_n_run(tagged, keys, n, codec), total)
        })?;
        let mut workers = Vec::with_capacity(runs.len());
        let mut sorted = Vec::with_capacity(runs.len());
        let mut base = 0u64;
        for run in runs {
            io.merge(&run.io);
            let (mut top, drained) = run.out;
            workers.push(WorkerOpMetrics {
                rows: top.rows.len() as u64,
                batches: run.batches,
                io: run.io,
                elapsed: run.elapsed,
            });
            // Local tags shift onto the partition's serial interval
            // (stored keys get their seq suffix patched in place).
            top.shift(base);
            sorted.push(top);
            base += drained;
        }
        record_workers(&self.own_slot, workers);
        let mut merged = sortkernel::merge_runs(sorted, keys);
        merged.truncate(n);
        // Charge what the serial operator charges: the surviving prefix.
        io.sort_rows += merged.len() as u64;
        self.buf = merged;
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, cx: &ExecContext<'_>, _io: &mut IoStats) -> Result<Option<Batch>> {
        Ok(emit(&self.buf, &mut self.pos, cx.batch_size))
    }

    fn close(&mut self) {
        self.buf = Vec::new();
    }
}
