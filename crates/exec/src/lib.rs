//! The execution engine: a streaming, batched (Volcano-style) executor
//! for [`fto_planner::PlanNode`] trees against an
//! [`fto_storage::Database`], plus the [`Session`] API that wraps the
//! whole compile-and-execute pipeline.
//!
//! # Architecture
//!
//! * [`stream`] — the default engine. Plans lower to a tree of
//!   [`Operator`]s (`open` / `next_batch` / `close`); data flows upward
//!   in columnar [`Batch`]es (typed column vectors with validity
//!   bitmaps, [`fto_common::column`]) of at most `batch_size` rows.
//!   Filters refine selection vectors with typed kernels, projections
//!   share untouched columns by `Arc` clone, and sorts/group-bys encode
//!   their keys column-at-a-time. Scans charge simulated page I/O
//!   incrementally as batches are pulled, so early-terminating queries
//!   (LIMIT, Top-N) pay only for the pages behind the rows they actually
//!   produce. The only general pipeline breaker is the in-memory sort;
//!   hash group-by and Top-N are inherently blocking, and joins
//!   materialize only their build side.
//! * [`sortkernel`] — the shared decorate–sort–undecorate sort kernel
//!   (stable sorts, Top-N selection, order-preserving K-way merge of
//!   sorted runs) used by both engines and by the exchange layer. Its
//!   stability/tie-order contract is what makes parallel merges
//!   deterministic. With [`fto_planner::OptimizerConfig::sort_key_codec`]
//!   on (the default) it decorates rows with normalized binary sort keys
//!   (`fto_common::sortkey`) and sorts/merges by `memcmp`, with an MSB
//!   radix path for fixed-width keys; output is bit-identical to the
//!   legacy `Value`-comparator path.
//! * [`parallel`] — the exchange layer. At parallel degree `p > 1`,
//!   lowering fans partitionable pipeline segments out over `p`
//!   `std::thread` workers: `Gather` concatenates partition outputs in
//!   partition order, `MergeExchange` sorts per-partition runs and
//!   K-way-merges them order-preservingly, and `Repartition` deals a
//!   serial stream round-robin to parallel bucket sorts. Results are
//!   bit-identical to serial execution at every degree.
//! * [`interp`] — the original fully materializing interpreter, kept as
//!   the reference engine. The differential test suite runs every query
//!   through both engines and requires identical rows in identical order.
//! * [`session`] — [`Session`] / [`PreparedQuery`] / [`QueryOutput`]:
//!   `Session::new(&db).config(cfg).plan(sql)?.execute()?`.
//! * [`metrics`] — per-operator observability. Executing through
//!   [`execute_plan_instrumented`] (or
//!   `PreparedQuery::execute_instrumented` / `explain_analyze`) records
//!   rows, batches, I/O, and time per plan node into a [`PlanMetrics`],
//!   with per-operator I/O deltas that sum exactly to the session totals.
//! * [`obs`] — session-level observability. An [`Observability`] handle
//!   attached via [`Session::observe`](session::Session::observe)
//!   aggregates every query into an [`fto_obs::Registry`] (counters,
//!   latency/rows/pages histograms), keeps a slow-query log, and holds
//!   the last optimizer decision trace (`EXPLAIN OPTIMIZER`).
//!
//! Entry points: [`Session`] for SQL, [`execute_plan`] for an
//! already-planned query, [`compile_pipeline`] to drive batches by hand.

#![deny(missing_docs)]

pub(crate) mod extsort;
pub mod interp;
pub mod metrics;
pub mod obs;
pub mod parallel;
pub mod session;
pub mod sortkernel;
pub mod stream;

pub use fto_obs::{ExecutionProfile, Profiler};
pub use interp::{run_plan_materialized, QueryResult};
pub use metrics::{q_error, OpMetrics, PlanMetrics, WorkerOpMetrics};
pub use obs::{ObsOptions, Observability};
pub use session::{PreparedQuery, QueryOutput, Session, StatementOutput};
pub use sortkernel::{SegmentStats, SortStats, SpillStats};
pub use stream::{
    compile_pipeline, execute_plan, execute_plan_instrumented, Batch, ExecContext, ExecOptions,
    Operator, StreamResult,
};

/// Executes a plan to completion through the streaming executor with the
/// default batch size.
///
/// Retained for source compatibility with the materializing engine's old
/// entry point; new code should use [`Session`] or [`execute_plan`].
#[deprecated(note = "use Session::plan(..)?.execute() or execute_plan()")]
pub fn run_plan(
    db: &fto_storage::Database,
    graph: &fto_qgm::QueryGraph,
    plan: &fto_planner::Plan,
) -> fto_common::Result<StreamResult> {
    execute_plan(db, graph, plan, &ExecOptions::default())
}

/// Convenience re-exports for the common execution workflow.
pub mod prelude {
    pub use crate::{
        execute_plan, ExecOptions, ObsOptions, Observability, PlanMetrics, PreparedQuery,
        QueryOutput, QueryResult, Session, StatementOutput,
    };
    pub use fto_planner::{OptimizerConfig, PlannerStats};
    pub use fto_storage::{Database, IoStats};
}
