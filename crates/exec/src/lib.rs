//! The execution engine: an interpreter for [`fto_planner::PlanNode`]
//! trees against an [`fto_storage::Database`].
//!
//! Each operator materializes its output (a row set in a defined layout),
//! which keeps the engine simple and the measured work honest: every
//! avoidable sort the optimizer fails to avoid is really executed, every
//! index probe really walks the simulated page model. [`run_plan`]
//! returns the rows, the simulated [`IoStats`](fto_storage::IoStats), and
//! wall-clock time — the three observables the benchmark harness reports
//! for the paper's Table 1.

#![deny(missing_docs)]

pub mod interp;

pub use interp::{run_plan, QueryResult};
