//! The recursive, fully materializing plan interpreter.
//!
//! This is the original engine: every operator computes its complete
//! output before the parent sees a row, and scans charge their whole
//! table up front. It is kept as the *reference* implementation — the
//! differential tests execute every query through both this interpreter
//! and the streaming executor in [`crate::stream`] and require identical
//! rows. New code should go through [`crate::Session`] or
//! [`crate::execute_plan`], which use the streaming engine.

use fto_common::{sortkey, Direction, FtoError, Result, Row, Value};
use fto_expr::{AggCall, RowLayout};
use fto_order::OrderSpec;
use fto_planner::{Plan, PlanNode, ScanRange};
use fto_qgm::QueryGraph;
use fto_storage::{Database, IoStats, PageCursor};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The result of executing a plan.
#[derive(Debug)]
pub struct QueryResult {
    /// Output rows, in the plan's output layout and order.
    pub rows: Vec<Row>,
    /// Simulated page I/O accumulated across the whole plan.
    pub io: IoStats,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Executes a plan to completion with the materializing interpreter.
///
/// Prefer [`crate::execute_plan`] (streaming); this entry point exists as
/// the reference engine for differential testing and for measuring the
/// cost of full materialization.
pub fn run_plan_materialized(
    db: &Database,
    graph: &QueryGraph,
    plan: &Plan,
) -> Result<QueryResult> {
    let mut io = IoStats::new();
    let start = Instant::now();
    let rows = exec(db, graph, plan, &mut io)?;
    Ok(QueryResult {
        rows,
        io,
        elapsed: start.elapsed(),
    })
}

fn exec(db: &Database, graph: &QueryGraph, plan: &Plan, io: &mut IoStats) -> Result<Vec<Row>> {
    match &plan.node {
        PlanNode::TableScan { table, .. } => {
            let heap = db.heap(*table)?;
            io.sequential_pages += heap.page_count();
            io.rows_read += heap.row_count();
            Ok(heap.rows().to_vec())
        }
        PlanNode::IndexScan {
            index,
            table,
            range,
            reverse,
            ..
        } => {
            let heap = db.heap(*table)?;
            let ix = db.index(*index)?;
            io.index_pages += ix.leaf_pages();
            let mut cursor = PageCursor::new();
            let mut rids: Vec<usize> = match range {
                Some(ScanRange { lo, hi }) => {
                    ix.range(lo.as_ref(), hi.as_ref()).map(|(_, r)| r).collect()
                }
                None => ix.scan().map(|(_, r)| r).collect(),
            };
            if *reverse {
                rids.reverse();
            }
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                cursor.touch(heap.page_of(rid), io);
                io.rows_read += 1;
                out.push(heap.row(rid).clone());
            }
            Ok(out)
        }
        PlanNode::Filter { input, predicates } => {
            let rows = exec(db, graph, input, io)?;
            let layout = &input.layout;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if eval_preds(graph, predicates, &row, layout)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::Project { input, exprs } => {
            let rows = exec(db, graph, input, io)?;
            let layout = &input.layout;
            rows.iter()
                .map(|row| {
                    exprs
                        .iter()
                        .map(|(_, e)| e.eval(row, layout))
                        .collect::<Result<Row>>()
                })
                .collect()
        }
        PlanNode::Sort { input, spec } => {
            let mut rows = exec(db, graph, input, io)?;
            io.sort_rows += rows.len() as u64;
            sort_rows(&mut rows, spec, &input.layout)?;
            Ok(rows)
        }
        PlanNode::SegmentedSort { input, spec, .. } => {
            // The reference engine ignores the prefix split: a stable full
            // sort is definitionally what the segmented operator must
            // reproduce, so the interpreter *is* the oracle for it.
            let mut rows = exec(db, graph, input, io)?;
            io.sort_rows += rows.len() as u64;
            sort_rows(&mut rows, spec, &input.layout)?;
            Ok(rows)
        }
        PlanNode::NestedLoopJoin {
            outer,
            inner,
            predicates,
        } => {
            let outer_rows = exec(db, graph, outer, io)?;
            let inner_rows = exec(db, graph, inner, io)?;
            let layout = &plan.layout;
            let mut out = Vec::new();
            for orow in &outer_rows {
                for irow in &inner_rows {
                    let joined = concat(orow, irow);
                    if eval_preds(graph, predicates, &joined, layout)? {
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        PlanNode::IndexNestedLoopJoin {
            outer,
            table,
            index,
            probe_cols,
            predicates,
            ..
        } => {
            let outer_rows = exec(db, graph, outer, io)?;
            let heap = db.heap(*table)?;
            let ix = db.index(*index)?;
            let layout = &plan.layout;
            let olayout = &outer.layout;
            // Probe streams pay a full seek on their first fetch.
            let mut cursor = PageCursor::probing();
            let mut out = Vec::new();
            let probe_positions: Vec<usize> = probe_cols
                .iter()
                .map(|&c| {
                    olayout.position(c).ok_or_else(|| {
                        FtoError::internal(format!("probe column {c} missing from outer"))
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            for orow in &outer_rows {
                let key: Vec<Value> = probe_positions.iter().map(|&p| orow[p].clone()).collect();
                io.index_pages += 1; // descent touches one leaf
                for (_, rid) in ix.probe(&key) {
                    cursor.touch(heap.page_of(*rid), io);
                    io.rows_read += 1;
                    let joined = concat(orow, heap.row(*rid));
                    if eval_preds(graph, predicates, &joined, layout)? {
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        PlanNode::MergeJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            predicates,
        } => {
            let outer_rows = exec(db, graph, outer, io)?;
            let inner_rows = exec(db, graph, inner, io)?;
            merge_join(
                graph,
                &outer_rows,
                &inner_rows,
                &outer.layout,
                &inner.layout,
                outer_keys,
                inner_keys,
                predicates,
                &plan.layout,
            )
        }
        PlanNode::LeftOuterJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            predicates,
        } => {
            let outer_rows = exec(db, graph, outer, io)?;
            let inner_rows = exec(db, graph, inner, io)?;
            let layout = &plan.layout;
            let null_pad: Row = vec![Value::Null; inner.layout.arity()].into();
            let mut out = Vec::with_capacity(outer_rows.len());

            if outer_keys.is_empty() {
                // No equi keys: nested loop with ON residuals.
                for orow in &outer_rows {
                    let mut matched = false;
                    for irow in &inner_rows {
                        let joined = concat(orow, irow);
                        if eval_preds(graph, predicates, &joined, layout)? {
                            out.push(joined);
                            matched = true;
                        }
                    }
                    if !matched {
                        out.push(concat(orow, &null_pad));
                    }
                }
            } else {
                let ipos = positions(&inner.layout, inner_keys)?;
                let opos = positions(&outer.layout, outer_keys)?;
                let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
                for irow in &inner_rows {
                    let key: Vec<Value> = ipos.iter().map(|&p| irow[p].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    table.entry(key).or_default().push(irow);
                }
                for orow in &outer_rows {
                    let key: Vec<Value> = opos.iter().map(|&p| orow[p].clone()).collect();
                    let mut matched = false;
                    if !key.iter().any(Value::is_null) {
                        if let Some(candidates) = table.get(&key) {
                            for irow in candidates {
                                let joined = concat(orow, irow);
                                if eval_preds(graph, predicates, &joined, layout)? {
                                    out.push(joined);
                                    matched = true;
                                }
                            }
                        }
                    }
                    if !matched {
                        out.push(concat(orow, &null_pad));
                    }
                }
            }
            Ok(out)
        }
        PlanNode::HashJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            predicates,
        } => {
            let outer_rows = exec(db, graph, outer, io)?;
            let inner_rows = exec(db, graph, inner, io)?;
            let ipos: Vec<usize> = positions(&inner.layout, inner_keys)?;
            let opos: Vec<usize> = positions(&outer.layout, outer_keys)?;
            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for irow in &inner_rows {
                let key: Vec<Value> = ipos.iter().map(|&p| irow[p].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue; // NULL never joins
                }
                table.entry(key).or_default().push(irow);
            }
            let mut out = Vec::new();
            for orow in &outer_rows {
                let key: Vec<Value> = opos.iter().map(|&p| orow[p].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for irow in matches {
                        let joined = concat(orow, irow);
                        if eval_preds(graph, predicates, &joined, &plan.layout)? {
                            out.push(joined);
                        }
                    }
                }
            }
            Ok(out)
        }
        PlanNode::StreamGroupBy {
            input,
            grouping,
            aggs,
        } => {
            let rows = exec(db, graph, input, io)?;
            stream_group_by(&rows, &input.layout, grouping, aggs)
        }
        PlanNode::HashGroupBy {
            input,
            grouping,
            aggs,
        } => {
            let rows = exec(db, graph, input, io)?;
            hash_group_by(&rows, &input.layout, grouping, aggs)
        }
        PlanNode::StreamDistinct { input } => {
            let rows = exec(db, graph, input, io)?;
            let mut out: Vec<Row> = Vec::new();
            for row in rows {
                if out.last().map(|prev| prev != &row).unwrap_or(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::HashDistinct { input } => {
            let rows = exec(db, graph, input, io)?;
            let mut seen: std::collections::HashSet<Row> = Default::default();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::UnionAll { inputs } => {
            let mut out = Vec::new();
            for input in inputs {
                out.extend(exec(db, graph, input, io)?);
            }
            Ok(out)
        }
        PlanNode::Limit { input, n } => {
            let mut rows = exec(db, graph, input, io)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        PlanNode::TopN { input, spec, n } => {
            let rows = exec(db, graph, input, io)?;
            let keys = crate::sortkernel::resolve_keys(spec, &input.layout)?;
            let top = crate::sortkernel::top_n(rows, &keys, *n as usize);
            io.sort_rows += top.len() as u64;
            Ok(top)
        }
    }
}

pub(crate) fn positions(layout: &RowLayout, cols: &[fto_common::ColId]) -> Result<Vec<usize>> {
    cols.iter()
        .map(|&c| {
            layout
                .position(c)
                .ok_or_else(|| FtoError::internal(format!("column {c} missing from layout")))
        })
        .collect()
}

pub(crate) fn eval_preds(
    graph: &QueryGraph,
    preds: &[fto_expr::PredId],
    row: &Row,
    layout: &RowLayout,
) -> Result<bool> {
    for &pid in preds {
        if !graph.predicate(pid).eval(row, layout)? {
            return Ok(false);
        }
    }
    Ok(true)
}

pub(crate) fn concat(a: &Row, b: &Row) -> Row {
    a.iter().chain(b.iter()).cloned().collect()
}

pub(crate) fn sort_rows(rows: &mut Vec<Row>, spec: &OrderSpec, layout: &RowLayout) -> Result<()> {
    let keys = crate::sortkernel::resolve_keys(spec, layout)?;
    crate::sortkernel::sort_rows(rows, &keys);
    Ok(())
}

fn stream_group_by(
    rows: &[Row],
    layout: &RowLayout,
    grouping: &[fto_common::ColId],
    aggs: &[(fto_common::ColId, AggCall)],
) -> Result<Vec<Row>> {
    let gpos = positions(layout, grouping)?;
    let mut out = Vec::new();
    // A global aggregate (no grouping columns) over an empty input still
    // produces one row (COUNT(*) = 0, SUM = NULL), per SQL.
    if rows.is_empty() && grouping.is_empty() {
        let accs: Vec<_> = aggs.iter().map(|(_, c)| c.accumulator()).collect();
        let row: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
        return Ok(vec![row.into_boxed_slice()]);
    }
    let mut current: Option<(Vec<Value>, Vec<fto_expr::agg::Accumulator>)> = None;

    let flush = |key: Vec<Value>, accs: Vec<fto_expr::agg::Accumulator>, out: &mut Vec<Row>| {
        let mut row: Vec<Value> = key;
        row.extend(accs.iter().map(|a| a.finish()));
        out.push(row.into_boxed_slice());
    };

    for row in rows {
        let key: Vec<Value> = gpos.iter().map(|&p| row[p].clone()).collect();
        match &mut current {
            Some((ckey, accs)) if *ckey == key => {
                for (acc, (_, call)) in accs.iter_mut().zip(aggs) {
                    acc.update(call, row, layout)?;
                }
            }
            _ => {
                if let Some((ckey, accs)) = current.take() {
                    flush(ckey, accs, &mut out);
                }
                let mut accs: Vec<_> = aggs.iter().map(|(_, c)| c.accumulator()).collect();
                for (acc, (_, call)) in accs.iter_mut().zip(aggs) {
                    acc.update(call, row, layout)?;
                }
                current = Some((key, accs));
            }
        }
    }
    if let Some((ckey, accs)) = current.take() {
        flush(ckey, accs, &mut out);
    }
    Ok(out)
}

pub(crate) fn hash_group_by(
    rows: &[Row],
    layout: &RowLayout,
    grouping: &[fto_common::ColId],
    aggs: &[(fto_common::ColId, AggCall)],
) -> Result<Vec<Row>> {
    let gpos = positions(layout, grouping)?;
    if rows.is_empty() && grouping.is_empty() {
        let accs: Vec<_> = aggs.iter().map(|(_, c)| c.accumulator()).collect();
        let row: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
        return Ok(vec![row.into_boxed_slice()]);
    }
    let mut groups: Vec<(Vec<Value>, Vec<fto_expr::agg::Accumulator>)> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = gpos.iter().map(|&p| row[p].clone()).collect();
        let slot = *index.entry(key.clone()).or_insert_with(|| {
            groups.push((key, aggs.iter().map(|(_, c)| c.accumulator()).collect()));
            groups.len() - 1
        });
        for (acc, (_, call)) in groups[slot].1.iter_mut().zip(aggs) {
            acc.update(call, row, layout)?;
        }
    }
    Ok(groups
        .into_iter()
        .map(|(key, accs)| {
            let mut row: Vec<Value> = key;
            row.extend(accs.iter().map(|a| a.finish()));
            row.into_boxed_slice()
        })
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn merge_join(
    graph: &QueryGraph,
    outer: &[Row],
    inner: &[Row],
    olayout: &RowLayout,
    ilayout: &RowLayout,
    outer_keys: &[fto_common::ColId],
    inner_keys: &[fto_common::ColId],
    predicates: &[fto_expr::PredId],
    layout: &RowLayout,
) -> Result<Vec<Row>> {
    let opos = positions(olayout, outer_keys)?;
    let ipos = positions(ilayout, inner_keys)?;
    let key_cmp = |orow: &Row, irow: &Row| {
        for (&op, &ip) in opos.iter().zip(&ipos) {
            let ord = orow[op].total_cmp(&irow[ip]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < outer.len() && j < inner.len() {
        // NULL keys never join; skip them on either side.
        if opos.iter().any(|&p| outer[i][p].is_null()) {
            i += 1;
            continue;
        }
        if ipos.iter().any(|&p| inner[j][p].is_null()) {
            j += 1;
            continue;
        }
        match key_cmp(&outer[i], &inner[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the extent of the tie group on both sides by
                // encoding the current group's key once and extending
                // while candidates' encodings memcmp-equal it (same
                // outcome as the per-column `Value` walk — the codec is
                // order-preserving and injective up to `total_cmp`
                // equality).
                let okeys: Vec<(usize, Direction)> =
                    opos.iter().map(|&p| (p, Direction::Asc)).collect();
                let ikeys: Vec<(usize, Direction)> =
                    ipos.iter().map(|&p| (p, Direction::Asc)).collect();
                let lead = sortkey::encode_key(&outer[i], &okeys);
                let mut scratch = Vec::new();
                let mut tied = |row: &Row, keys: &[(usize, Direction)]| {
                    scratch.clear();
                    sortkey::encode_key_into(row, keys, &mut scratch);
                    scratch == lead
                };
                let i_end = (i..outer.len())
                    .take_while(|&x| tied(&outer[x], &okeys))
                    .last()
                    .unwrap()
                    + 1;
                let j_end = (j..inner.len())
                    .take_while(|&y| tied(&inner[y], &ikeys))
                    .last()
                    .unwrap()
                    + 1;
                for orow in &outer[i..i_end] {
                    for irow in &inner[j..j_end] {
                        let joined = concat(orow, irow);
                        if eval_preds(graph, predicates, &joined, layout)? {
                            out.push(joined);
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_catalog::{Catalog, ColumnDef, KeyDef};
    use fto_common::{DataType, Direction};
    use fto_expr::{CompareOp, Expr, Predicate};
    use fto_planner::{OptimizerConfig, Planner};
    use fto_qgm::graph::{BoxKind, OutputCol, OutputExpr};
    use fto_qgm::OrderScan;

    fn db_two_tables() -> Database {
        let mut cat = Catalog::new();
        let a = cat
            .create_table(
                "a",
                vec![
                    ColumnDef::new("x", DataType::Int),
                    ColumnDef::new("y", DataType::Int),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        let b = cat
            .create_table(
                "b",
                vec![
                    ColumnDef::new("x", DataType::Int),
                    ColumnDef::new("z", DataType::Int),
                ],
                vec![],
            )
            .unwrap();
        cat.create_index("b_x", b, vec![(0, Direction::Asc)], false, true)
            .unwrap();
        let mut db = Database::new(cat);
        db.load_table(
            a,
            (0..50)
                .map(|i| vec![Value::Int(i), Value::Int(i % 7)].into_boxed_slice())
                .collect(),
        )
        .unwrap();
        db.load_table(
            b,
            (0..100)
                .map(|i| vec![Value::Int(i / 2), Value::Int(i)].into_boxed_slice())
                .collect(),
        )
        .unwrap();
        db
    }

    /// select a.x, a.y, b.z from a, b where a.x = b.x and a.y = 3
    /// order by a.x — planned and executed; results must match a naive
    /// nested-loop reference for EVERY optimizer configuration.
    fn plan_and_run(db: &Database, config: OptimizerConfig) -> Vec<Row> {
        let cat = db.catalog();
        let mut g = fto_qgm::QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        g.add_table_quantifier(sel, cat.table_by_name("b").unwrap());
        let ac = g.boxed(sel).quantifiers[0].cols.clone();
        let bc = g.boxed(sel).quantifiers[1].cols.clone();
        for pred in [
            Predicate::col_eq_col(ac[0], bc[0]),
            Predicate::new(CompareOp::Eq, Expr::col(ac[1]), Expr::int(3)),
        ] {
            let pid = g.add_predicate(pred);
            g.boxed_mut(sel).predicates.push(pid);
        }
        g.boxed_mut(sel).output = vec![
            OutputCol::passthrough(ac[0]),
            OutputCol::passthrough(ac[1]),
            OutputCol::passthrough(bc[1]),
        ];
        g.boxed_mut(sel).output_order = Some(OrderSpec::ascending([ac[0]]));
        g.root = sel;
        OrderScan::run(&mut g, cat);
        let mut planner = Planner::new(&g, cat, config);
        let plan = planner.plan_query().unwrap();
        let result = run_plan_materialized(db, &g, &plan).unwrap();
        result.rows
    }

    fn reference(db: &Database) -> Vec<Row> {
        let a = db.heap(fto_common::TableId(0)).unwrap().rows();
        let b = db.heap(fto_common::TableId(1)).unwrap().rows();
        let mut out: Vec<Row> = Vec::new();
        for ar in a {
            if ar[1] != Value::Int(3) {
                continue;
            }
            for br in b {
                if ar[0] == br[0] {
                    out.push(vec![ar[0].clone(), ar[1].clone(), br[1].clone()].into_boxed_slice());
                }
            }
        }
        out.sort_by(|x, y| x[0].total_cmp(&y[0]));
        out
    }

    #[test]
    fn join_query_matches_reference_all_configs() {
        let db = db_two_tables();
        let expected = reference(&db);
        assert!(!expected.is_empty());
        for config in [
            OptimizerConfig::default(),
            OptimizerConfig::disabled(),
            OptimizerConfig::default().with_hash_join(false),
            OptimizerConfig::default()
                .with_merge_join(false)
                .with_hash_join(false),
            OptimizerConfig::default().with_nested_loop(false),
            OptimizerConfig::default().with_sort_ahead(false),
        ] {
            let got = plan_and_run(&db, config.clone());
            assert_eq!(got, expected, "config {config:?}");
        }
    }

    #[test]
    fn group_by_executes() {
        let db = db_two_tables();
        let cat = db.catalog();
        // select y, count(1), sum(x) from a group by y
        let mut g = fto_qgm::QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        let ac = g.boxed(sel).quantifiers[0].cols.clone();
        g.boxed_mut(sel).output = ac.iter().map(|&c| OutputCol::passthrough(c)).collect();
        let gb = g.add_box(BoxKind::GroupBy {
            grouping: vec![ac[1]],
        });
        g.add_box_quantifier(gb, sel);
        let cnt = g.fresh_derived(gb, "cnt", DataType::Int);
        let sm = g.fresh_derived(gb, "sm", DataType::Int);
        g.boxed_mut(gb).output = vec![
            OutputCol::passthrough(ac[1]),
            OutputCol {
                col: cnt,
                expr: OutputExpr::Agg(AggCall::new(fto_expr::AggFunc::Count, Expr::int(1))),
            },
            OutputCol {
                col: sm,
                expr: OutputExpr::Agg(AggCall::new(fto_expr::AggFunc::Sum, Expr::col(ac[0]))),
            },
        ];
        g.boxed_mut(gb).output_order = Some(OrderSpec::ascending([ac[1]]));
        g.root = gb;
        OrderScan::run(&mut g, cat);
        let mut planner = Planner::new(&g, cat, OptimizerConfig::default());
        let plan = planner.plan_query().unwrap();
        let result = run_plan_materialized(&db, &g, &plan).unwrap();
        // y in 0..7, 50 rows: groups of 8 or 7.
        assert_eq!(result.rows.len(), 7);
        let total: i64 = result.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        assert_eq!(total, 50);
        let sum_total: i64 = result.rows.iter().map(|r| r[2].as_int().unwrap()).sum();
        assert_eq!(sum_total, (0..50).sum::<i64>());
        // Ordered by y.
        let ys: Vec<i64> = result.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = ys.clone();
        sorted.sort_unstable();
        assert_eq!(ys, sorted);
    }

    #[test]
    fn merge_join_handles_duplicate_keys() {
        // b has two rows per x; join a ⋈ b on x must produce 2 rows per
        // matching a row. Force merge join.
        let db = db_two_tables();
        let expected = reference(&db);
        let got = plan_and_run(
            &db,
            OptimizerConfig::default()
                .with_hash_join(false)
                .with_nested_loop(false),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn io_stats_accumulate() {
        let db = db_two_tables();
        let cat = db.catalog();
        let mut g = fto_qgm::QueryGraph::new();
        let sel = g.add_box(BoxKind::Select);
        g.add_table_quantifier(sel, cat.table_by_name("a").unwrap());
        let ac = g.boxed(sel).quantifiers[0].cols.clone();
        g.boxed_mut(sel).output = ac.iter().map(|&c| OutputCol::passthrough(c)).collect();
        g.root = sel;
        OrderScan::run(&mut g, cat);
        let mut planner = Planner::new(&g, cat, OptimizerConfig::default());
        let plan = planner.plan_query().unwrap();
        let result = run_plan_materialized(&db, &g, &plan).unwrap();
        assert_eq!(result.rows.len(), 50);
        assert!(result.io.rows_read >= 50);
        assert!(result.io.sequential_pages + result.io.random_pages > 0);
    }

    use fto_expr::AggCall;
}
