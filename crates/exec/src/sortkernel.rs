//! The shared sort kernel: one implementation of row comparison, full
//! sort, top-N selection, and order-preserving run merging, used by the
//! materializing interpreter, the streaming executor, and the parallel
//! exchange operators.
//!
//! # Stability and tie-order contract
//!
//! Every entry point in this module implements the same total ordering:
//! rows compare by the resolved sort keys (each column through
//! [`Direction::apply`], NULLs per [`Value::total_cmp`]), and rows whose
//! keys compare equal stay in **input order**. Equivalently: the output is
//! what a stable sort of the input produces.
//!
//! This is not a cosmetic choice — it is the determinism anchor for the
//! whole engine:
//!
//! * the differential suite requires the streaming and materializing
//!   engines to emit bit-identical rows, which forces one tie order;
//! * parallel execution splits the input into runs, sorts each run
//!   independently, and merges; the merge reproduces the serial output
//!   *only because* each run is stably sorted and [`merge_runs`] breaks
//!   key ties by the runs' global sequence tags (or, absent tags, by run
//!   index — valid whenever run `i` holds rows that precede run `i+1`'s
//!   in the serial input).
//!
//! Sorting is decorate–sort–undecorate: key columns are extracted once
//! per row into a contiguous key array, so comparisons during the sort
//! touch only the extracted keys instead of re-indexing the full row per
//! key column per comparison (the old `cmp_rows` pattern).
//!
//! # Normalized-key (codec) path
//!
//! With `OptimizerConfig::sort_key_codec` on (the default), the kernel
//! decorates each row once with its [`fto_common::sortkey`] encoding —
//! an order-preserving byte string whose plain `&[u8]` comparison is
//! bit-identical in outcome to the `Value` comparator — plus the row's
//! big-endian sequence tag as a suffix. Appending the tag makes every
//! decorated key unique, so `sort_unstable` on plain byte strings *is*
//! the stable sort the contract above demands (ties in the logical key
//! resolve by tag = input order), and runs merge by memcmp on the stored
//! keys with no per-heap-op `Value` dispatch. The suffix is safe to
//! compare as part of the same memcmp because each column's encoding is
//! prefix-free: two rows with different logical keys already differ at a
//! byte position present in both encodings. When every decorated key in
//! a sort has the same width (fixed-width key shapes: numerics, dates,
//! bools, no NULLs), a byte-wise MSB radix sort replaces the comparison
//! sort entirely.
//!
//! The kernel keeps process-wide `sort.key_bytes` / `sort.comparisons`
//! tallies (see [`stats_snapshot`]); sessions snapshot them around each
//! execution and feed the deltas to the metrics registry.

use fto_common::{sortkey, Direction, FtoError, Result, Row, Value};
use fto_expr::RowLayout;
use fto_order::OrderSpec;
use std::cell::Cell;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrd};

/// Cumulative count of normalized-key bytes encoded by sort operations
/// in this process.
static KEY_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative count of key comparisons made by sort/merge operations in
/// this process (byte-string comparisons on the codec path, `Value`
/// comparisons on the legacy path; radix-distributed rows add none).
static COMPARISONS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of (or delta between) the kernel's process-wide counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Normalized-key bytes encoded (decorations, including seq tags).
    pub key_bytes: u64,
    /// Key comparisons performed by sorts, selections, and run merges.
    pub comparisons: u64,
}

impl SortStats {
    /// The counters accumulated since `earlier` (saturating).
    pub fn delta_since(&self, earlier: SortStats) -> SortStats {
        SortStats {
            key_bytes: self.key_bytes.saturating_sub(earlier.key_bytes),
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
        }
    }
}

/// Reads the kernel's cumulative process-wide counters. Concurrent
/// sessions share them; callers wanting per-query numbers snapshot
/// before and after and take [`SortStats::delta_since`].
pub fn stats_snapshot() -> SortStats {
    SortStats {
        key_bytes: KEY_BYTES.load(AtomicOrd::Relaxed),
        comparisons: COMPARISONS.load(AtomicOrd::Relaxed),
    }
}

/// Adds to the process-wide tallies — called once per sort/merge, not
/// once per comparison (comparators count locally in a [`Cell`]).
pub(crate) fn charge(key_bytes: u64, comparisons: u64) {
    if key_bytes != 0 {
        KEY_BYTES.fetch_add(key_bytes, AtomicOrd::Relaxed);
    }
    if comparisons != 0 {
        COMPARISONS.fetch_add(comparisons, AtomicOrd::Relaxed);
    }
}

/// Cumulative count of spilled sort/group-by runs formed in this process.
static SPILL_RUNS: AtomicU64 = AtomicU64::new(0);
/// Cumulative count of external-merge passes (one per level of the
/// multi-pass K-way merge, counted once per level, not per run).
static MERGE_PASSES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of (or delta between) the process-wide external-operator
/// counters — the "actual" side of the cost model's spill estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Sorted runs (or hash partitions) spilled to a spill file.
    pub runs_formed: u64,
    /// External merge passes performed (`0` for an in-memory sort, `1`
    /// when the spilled runs fit one merge fan-in, more as the input
    /// grows — the executor's counterpart of `cost::sort_spill_passes`).
    pub merge_passes: u64,
}

impl SpillStats {
    /// The counters accumulated since `earlier` (saturating).
    pub fn delta_since(&self, earlier: SpillStats) -> SpillStats {
        SpillStats {
            runs_formed: self.runs_formed.saturating_sub(earlier.runs_formed),
            merge_passes: self.merge_passes.saturating_sub(earlier.merge_passes),
        }
    }
}

/// Reads the cumulative process-wide spill counters; snapshot-and-delta
/// per query like [`stats_snapshot`].
pub fn spill_stats_snapshot() -> SpillStats {
    SpillStats {
        runs_formed: SPILL_RUNS.load(AtomicOrd::Relaxed),
        merge_passes: MERGE_PASSES.load(AtomicOrd::Relaxed),
    }
}

/// Records `n` spilled runs (or partitions) formed. Doubles as a
/// timeline hook: when the calling thread has a profiler lane installed
/// the event lands in the execution timeline too.
pub(crate) fn note_spill_runs(n: u64) {
    if n != 0 {
        SPILL_RUNS.fetch_add(n, AtomicOrd::Relaxed);
        fto_obs::profile::instant("spill", || format!("spill.runs_formed x{n}"));
    }
}

/// Records one external merge pass (also a timeline instant, like
/// [`note_spill_runs`]).
pub(crate) fn note_merge_pass() {
    MERGE_PASSES.fetch_add(1, AtomicOrd::Relaxed);
    fto_obs::profile::instant("spill", || "spill.merge_pass".to_string());
}

/// Cumulative count of prefix groups formed by segmented (partial) sort
/// operators in this process.
static SEGMENT_GROUPS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of (or delta between) the process-wide segmented-sort
/// counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Prefix groups formed (each one is sorted independently on the
    /// residual suffix keys).
    pub groups_formed: u64,
}

impl SegmentStats {
    /// The counters accumulated since `earlier` (saturating).
    pub fn delta_since(&self, earlier: SegmentStats) -> SegmentStats {
        SegmentStats {
            groups_formed: self.groups_formed.saturating_sub(earlier.groups_formed),
        }
    }
}

/// Reads the cumulative process-wide segmented-sort counters;
/// snapshot-and-delta per query like [`stats_snapshot`].
pub fn segment_stats_snapshot() -> SegmentStats {
    SegmentStats {
        groups_formed: SEGMENT_GROUPS.load(AtomicOrd::Relaxed),
    }
}

/// Records `n` prefix groups formed by a segmented sort (also a
/// timeline instant, like [`note_spill_runs`]).
pub(crate) fn note_segment_groups(n: u64) {
    if n != 0 {
        SEGMENT_GROUPS.fetch_add(n, AtomicOrd::Relaxed);
        fto_obs::profile::instant("segment", || "segment.group_sealed".to_string());
    }
}

/// Resolved sort keys: (position in the row, direction) per key column.
pub type SortKeys = Vec<(usize, Direction)>;

/// Resolves an [`OrderSpec`]'s columns to row positions under `layout`.
pub fn resolve_keys(spec: &OrderSpec, layout: &RowLayout) -> Result<SortKeys> {
    spec.keys()
        .iter()
        .map(|k| {
            layout.position(k.col).map(|p| (p, k.dir)).ok_or_else(|| {
                FtoError::internal(format!("sort column {} missing from layout", k.col))
            })
        })
        .collect()
}

/// Compares two rows by `keys` — the kernel's key ordering, exposed for
/// callers that compare without decorating (e.g. run merging).
pub fn cmp_rows(a: &Row, b: &Row, keys: &SortKeys) -> Ordering {
    for &(pos, dir) in keys {
        let ord = dir.apply(a[pos].total_cmp(&b[pos]));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Extracted key columns for one row, compared positionally with the
/// keys' directions.
fn extract(row: &Row, keys: &SortKeys) -> Box<[Value]> {
    keys.iter().map(|&(pos, _)| row[pos].clone()).collect()
}

fn cmp_extracted(a: &[Value], b: &[Value], keys: &SortKeys) -> Ordering {
    for (i, &(_, dir)) in keys.iter().enumerate() {
        let ord = dir.apply(a[i].total_cmp(&b[i]));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Stably sorts `rows` by `keys` (ties keep input order) using
/// decorate–sort–undecorate with the `Value` comparator — the legacy
/// path, kept as the `sort_key_codec = off` reference.
pub fn sort_rows(rows: &mut Vec<Row>, keys: &SortKeys) {
    if rows.len() <= 1 || keys.is_empty() {
        return;
    }
    let mut decorated: Vec<(Box<[Value]>, Row)> = std::mem::take(rows)
        .into_iter()
        .map(|row| (extract(&row, keys), row))
        .collect();
    let cmps = Cell::new(0u64);
    decorated.sort_by(|a, b| {
        cmps.set(cmps.get() + 1);
        cmp_extracted(&a.0, &b.0, keys)
    });
    charge(0, cmps.get());
    *rows = decorated.into_iter().map(|(_, row)| row).collect();
}

/// Stably sorts `rows` by `keys`, choosing the normalized-key codec path
/// or the legacy `Value`-comparator path. Both produce bit-identical
/// output.
pub fn sort_rows_with(rows: &mut Vec<Row>, keys: &SortKeys, codec: bool) {
    if codec {
        sort_rows_codec(rows, keys);
    } else {
        sort_rows(rows, keys);
    }
}

/// Encodes `row`'s normalized key under `keys` with `seq` appended
/// big-endian — the decorated byte string the codec sort paths order by.
fn encode_with_seq(row: &Row, keys: &SortKeys, seq: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(keys.len() * sortkey::NUMERIC_WIDTH + 8);
    sortkey::encode_key_into(row, keys, &mut buf);
    buf.extend_from_slice(&seq.to_be_bytes());
    buf
}

/// The codec sort: decorate each row once with `(normalized key ‖ seq)`,
/// sort the byte strings (MSB radix when the keys are fixed-width,
/// otherwise `sort_unstable` on memcmp), undecorate. Equivalent to the
/// stable `Value` sort because the seq suffix resolves logical ties in
/// input order.
fn sort_rows_codec(rows: &mut Vec<Row>, keys: &SortKeys) {
    if rows.len() <= 1 || keys.is_empty() {
        return;
    }
    let mut bytes = 0u64;
    let decorated: Vec<(Vec<u8>, Row)> = std::mem::take(rows)
        .into_iter()
        .enumerate()
        .map(|(i, row)| {
            let key = encode_with_seq(&row, keys, i as u64);
            bytes += key.len() as u64;
            (key, row)
        })
        .collect();
    charge(bytes, 0);
    let decorated = sort_decorated(decorated, |d| &d.0);
    *rows = decorated.into_iter().map(|(_, row)| row).collect();
}

/// The codec sort for rows whose normalized keys were already encoded
/// column-at-a-time ([`fto_common::column::encode_batch_keys`]): appends
/// the big-endian seq suffix, charges `KEY_BYTES` exactly as
/// [`sort_rows_codec`] (same bytes per row: key ‖ 8-byte seq), and sorts
/// the decorated byte strings. `encs[i]` must be row `i`'s key encoding
/// under the same `keys`; the columnar encoder is byte-identical to
/// [`sortkey::encode_key_into`] by construction, so this path and the
/// per-row codec path order identically.
pub fn sort_rows_preencoded(rows: &mut Vec<Row>, encs: Vec<Vec<u8>>, keys: &SortKeys) {
    if rows.len() <= 1 || keys.is_empty() {
        return;
    }
    debug_assert_eq!(rows.len(), encs.len());
    let mut bytes = 0u64;
    let decorated: Vec<(Vec<u8>, Row)> = std::mem::take(rows)
        .into_iter()
        .zip(encs)
        .enumerate()
        .map(|(i, (row, mut key))| {
            key.extend_from_slice(&(i as u64).to_be_bytes());
            bytes += key.len() as u64;
            (key, row)
        })
        .collect();
    charge(bytes, 0);
    let decorated = sort_decorated(decorated, |d| &d.0);
    *rows = decorated.into_iter().map(|(_, row)| row).collect();
}

/// The codec sort for rows whose normalized keys were encoded into one
/// contiguous arena ([`fto_common::column::encode_batch_keys_arena`]):
/// row `i`'s key is `bytes[offsets[i]..offsets[i + 1]]`. Builds each
/// decorated key (key ‖ 8-byte seq) in a single exactly-sized
/// allocation, charges `KEY_BYTES` identically to [`sort_rows_codec`],
/// and sorts the decorated byte strings.
pub fn sort_rows_arena(rows: &mut Vec<Row>, bytes: &[u8], offsets: &[usize], keys: &SortKeys) {
    if rows.len() <= 1 || keys.is_empty() {
        return;
    }
    debug_assert_eq!(rows.len() + 1, offsets.len());
    let mut total = 0u64;
    let decorated: Vec<(Vec<u8>, Row)> = std::mem::take(rows)
        .into_iter()
        .enumerate()
        .map(|(i, row)| {
            let enc = &bytes[offsets[i]..offsets[i + 1]];
            let mut key = Vec::with_capacity(enc.len() + 8);
            key.extend_from_slice(enc);
            key.extend_from_slice(&(i as u64).to_be_bytes());
            total += key.len() as u64;
            (key, row)
        })
        .collect();
    charge(total, 0);
    let decorated = sort_decorated(decorated, |d| &d.0);
    *rows = decorated.into_iter().map(|(_, row)| row).collect();
}

/// Below this many elements a comparison sort beats radix distribution.
const RADIX_CUTOFF: usize = 64;

/// Sorts decorated items by their byte key. All keys are unique (the seq
/// suffix guarantees it), so an unstable sort is deterministic. When
/// every key has the same width — fixed-width key shapes — a byte-wise
/// MSB radix sort distributes instead of comparing.
fn sort_decorated<T>(mut items: Vec<T>, key: impl Fn(&T) -> &[u8] + Copy) -> Vec<T> {
    if items.len() >= RADIX_CUTOFF {
        let w = key(&items[0]).len();
        if items.iter().all(|t| key(t).len() == w) {
            return radix_sort(items, 0, w, key);
        }
    }
    let cmps = Cell::new(0u64);
    items.sort_unstable_by(|a, b| {
        cmps.set(cmps.get() + 1);
        key(a).cmp(key(b))
    });
    charge(0, cmps.get());
    items
}

/// Recursive MSB radix sort on fixed-width byte keys: distribute on byte
/// `d`, recurse per bucket. Small buckets fall back to a comparison sort
/// of the remaining suffix; buckets whose byte `d` is constant (common —
/// the leading type tag rarely varies) skip the distribution and descend
/// directly.
fn radix_sort<T>(items: Vec<T>, d: usize, w: usize, key: impl Fn(&T) -> &[u8] + Copy) -> Vec<T> {
    if d >= w || items.len() <= 1 {
        return items;
    }
    if items.len() < RADIX_CUTOFF {
        let mut items = items;
        let cmps = Cell::new(0u64);
        items.sort_unstable_by(|a, b| {
            cmps.set(cmps.get() + 1);
            key(a)[d..].cmp(&key(b)[d..])
        });
        charge(0, cmps.get());
        return items;
    }
    let mut counts = [0usize; 256];
    for t in &items {
        counts[key(t)[d] as usize] += 1;
    }
    if counts.contains(&items.len()) {
        return radix_sort(items, d + 1, w, key);
    }
    let mut buckets: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for t in items {
        buckets[key(&t)[d] as usize].push(t);
    }
    let mut out = Vec::with_capacity(counts.iter().sum());
    for bucket in buckets {
        if !bucket.is_empty() {
            out.append(&mut radix_sort(bucket, d + 1, w, key));
        }
    }
    out
}

/// Sorts tagged rows by `(keys, seq)` into a [`SortedRun`] — the
/// per-bucket sort of a round-robin repartition, where each tag is the
/// row's global position in the serial stream. The tag makes the order
/// total, so the unstable sort is deterministic, and merging the buckets'
/// runs by `(keys, seq)` reproduces the serial stable sort exactly.
pub fn sort_tagged(pairs: Vec<(u64, Row)>, keys: &SortKeys) -> SortedRun {
    let mut decorated: Vec<(Box<[Value]>, u64, Row)> = pairs
        .into_iter()
        .map(|(seq, row)| (extract(&row, keys), seq, row))
        .collect();
    let cmps = Cell::new(0u64);
    decorated.sort_unstable_by(|a, b| {
        cmps.set(cmps.get() + 1);
        cmp_extracted(&a.0, &b.0, keys).then(a.1.cmp(&b.1))
    });
    charge(0, cmps.get());
    SortedRun {
        seqs: decorated.iter().map(|d| d.1).collect(),
        rows: decorated.into_iter().map(|d| d.2).collect(),
        enc: Vec::new(),
    }
}

/// [`sort_tagged`] on the normalized-key path: the decorated byte
/// strings embed each tag as their suffix, so one byte sort orders by
/// `(keys, seq)`, and the run keeps its encodings for a memcmp merge.
fn sort_tagged_codec(pairs: Vec<(u64, Row)>, keys: &SortKeys) -> SortedRun {
    let mut bytes = 0u64;
    let decorated: Vec<(Vec<u8>, u64, Row)> = pairs
        .into_iter()
        .map(|(seq, row)| {
            let key = encode_with_seq(&row, keys, seq);
            bytes += key.len() as u64;
            (key, seq, row)
        })
        .collect();
    charge(bytes, 0);
    let decorated = sort_decorated(decorated, |d| &d.0);
    let mut run = SortedRun {
        seqs: Vec::with_capacity(decorated.len()),
        rows: Vec::with_capacity(decorated.len()),
        enc: Vec::with_capacity(decorated.len()),
    };
    for (key, seq, row) in decorated {
        run.enc.push(key);
        run.seqs.push(seq);
        run.rows.push(row);
    }
    run
}

/// Sorts tagged rows into a [`SortedRun`] on the selected path; the
/// codec run carries stored keys so the downstream merge is memcmp-only.
pub fn sort_tagged_with(pairs: Vec<(u64, Row)>, keys: &SortKeys, codec: bool) -> SortedRun {
    if codec {
        sort_tagged_codec(pairs, keys)
    } else {
        sort_tagged(pairs, keys)
    }
}

/// Sorts a contiguous slice of the serial input (rows in input order,
/// occupying serial positions `[0, len)` locally) into a [`SortedRun`]
/// on the normalized-key path. Tags are local input positions; the
/// coordinator rebases them with [`SortedRun::shift`] once the run's
/// global interval is known.
pub fn sort_run_codec(rows: Vec<Row>, keys: &SortKeys) -> SortedRun {
    sort_tagged_codec(
        rows.into_iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect(),
        keys,
    )
}

/// [`sort_run_codec`] for rows whose normalized keys were already
/// encoded into one contiguous arena
/// ([`fto_common::column::encode_batch_keys_arena`]): row `i`'s key is
/// `bytes[offsets[i]..offsets[i + 1]]`. Tags are local positions `[0,
/// len)`; rebase with [`SortedRun::shift`]. This is the external sort's
/// run-formation entry point — the arena comes straight from the
/// columnar encoder, so forming a spill run costs no per-row encoding
/// allocation beyond the decorated key itself.
pub fn sort_run_arena(rows: Vec<Row>, bytes: &[u8], offsets: &[usize]) -> SortedRun {
    debug_assert_eq!(rows.len() + 1, offsets.len());
    let mut total = 0u64;
    let decorated: Vec<(Vec<u8>, u64, Row)> = rows
        .into_iter()
        .enumerate()
        .map(|(i, row)| {
            let enc = &bytes[offsets[i]..offsets[i + 1]];
            let mut key = Vec::with_capacity(enc.len() + 8);
            key.extend_from_slice(enc);
            key.extend_from_slice(&(i as u64).to_be_bytes());
            total += key.len() as u64;
            (key, i as u64, row)
        })
        .collect();
    charge(total, 0);
    let decorated = sort_decorated(decorated, |d| &d.0);
    let mut run = SortedRun {
        seqs: Vec::with_capacity(decorated.len()),
        rows: Vec::with_capacity(decorated.len()),
        enc: Vec::with_capacity(decorated.len()),
    };
    for (key, seq, row) in decorated {
        run.enc.push(key);
        run.seqs.push(seq);
        run.rows.push(row);
    }
    run
}

/// The first `n` rows of the stable sort of `rows` by `keys`, each tagged
/// with its original input position. Selection runs before the sort, so
/// only the winning prefix pays `O(n log n)`; the input-position tag makes
/// the comparator a total order, which is what pins the *choice* of
/// boundary ties (the earliest tied input rows win) as well as their
/// output order.
pub fn top_n_tagged(rows: Vec<(u64, Row)>, keys: &SortKeys, n: usize) -> Vec<(u64, Row)> {
    if n == 0 {
        return Vec::new();
    }
    let mut decorated: Vec<(Box<[Value]>, u64, Row)> = rows
        .into_iter()
        .map(|(seq, row)| (extract(&row, keys), seq, row))
        .collect();
    let cmps = Cell::new(0u64);
    let cmp = |a: &(Box<[Value]>, u64, Row), b: &(Box<[Value]>, u64, Row)| {
        cmps.set(cmps.get() + 1);
        cmp_extracted(&a.0, &b.0, keys).then(a.1.cmp(&b.1))
    };
    if decorated.len() > n {
        decorated.select_nth_unstable_by(n - 1, cmp);
        decorated.truncate(n);
    }
    // The tag makes the order total, so an unstable sort is deterministic.
    decorated.sort_unstable_by(cmp);
    charge(0, cmps.get());
    decorated
        .into_iter()
        .map(|(_, seq, row)| (seq, row))
        .collect()
}

/// [`top_n_tagged`] on the normalized-key path, returning a
/// [`SortedRun`] with stored keys: selection and the winning prefix's
/// sort both compare decorated byte strings only.
fn top_n_tagged_codec(rows: Vec<(u64, Row)>, keys: &SortKeys, n: usize) -> SortedRun {
    if n == 0 {
        return SortedRun::default();
    }
    let mut bytes = 0u64;
    let mut decorated: Vec<(Vec<u8>, u64, Row)> = rows
        .into_iter()
        .map(|(seq, row)| {
            let key = encode_with_seq(&row, keys, seq);
            bytes += key.len() as u64;
            (key, seq, row)
        })
        .collect();
    charge(bytes, 0);
    if decorated.len() > n {
        let cmps = Cell::new(0u64);
        decorated.select_nth_unstable_by(n - 1, |a, b| {
            cmps.set(cmps.get() + 1);
            a.0.cmp(&b.0)
        });
        charge(0, cmps.get());
        decorated.truncate(n);
    }
    let decorated = sort_decorated(decorated, |d| &d.0);
    let mut run = SortedRun {
        seqs: Vec::with_capacity(decorated.len()),
        rows: Vec::with_capacity(decorated.len()),
        enc: Vec::with_capacity(decorated.len()),
    };
    for (key, seq, row) in decorated {
        run.enc.push(key);
        run.seqs.push(seq);
        run.rows.push(row);
    }
    run
}

/// Tagged top-N into a [`SortedRun`] on the selected path — the
/// exchange-side entry point (workers tag locally; the coordinator
/// rebases with [`SortedRun::shift`]).
pub fn top_n_run(rows: Vec<(u64, Row)>, keys: &SortKeys, n: usize, codec: bool) -> SortedRun {
    if codec {
        top_n_tagged_codec(rows, keys, n)
    } else {
        let top = top_n_tagged(rows, keys, n);
        let mut run = SortedRun {
            seqs: Vec::with_capacity(top.len()),
            rows: Vec::with_capacity(top.len()),
            enc: Vec::new(),
        };
        for (seq, row) in top {
            run.seqs.push(seq);
            run.rows.push(row);
        }
        run
    }
}

/// The first `n` rows of the stable sort of `rows` by `keys` (see
/// [`top_n_tagged`]; tags here are the input positions themselves).
pub fn top_n(rows: Vec<Row>, keys: &SortKeys, n: usize) -> Vec<Row> {
    top_n_tagged(
        rows.into_iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect(),
        keys,
        n,
    )
    .into_iter()
    .map(|(_, row)| row)
    .collect()
}

/// [`top_n`] on the selected path. Both paths return the identical
/// stable-sort prefix.
pub fn top_n_with(rows: Vec<Row>, keys: &SortKeys, n: usize, codec: bool) -> Vec<Row> {
    if !codec {
        return top_n(rows, keys, n);
    }
    top_n_tagged_codec(
        rows.into_iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect(),
        keys,
        n,
    )
    .rows
}

/// One sorted run entering a merge: rows sorted by `(keys, seq)`, with
/// `seqs[i]` the global sequence tag of `rows[i]`. Tags must be unique
/// across all runs of one merge and consistent with the serial emission
/// order the merge is meant to reproduce.
#[derive(Debug, Default)]
pub struct SortedRun {
    /// The run's rows, sorted by `(keys, seq)`.
    pub rows: Vec<Row>,
    /// Global sequence tags, parallel to `rows` (strictly increasing
    /// within a tie group by construction).
    pub seqs: Vec<u64>,
    /// Stored normalized keys (`key ‖ big-endian seq`), parallel to
    /// `rows`, when the run was produced by the codec path; empty on the
    /// legacy path. A merge uses them for memcmp-only heap compares —
    /// the seq suffix doubles as the tiebreak, so one byte comparison
    /// decides `(keys, seq)` in full.
    pub enc: Vec<Vec<u8>>,
}

impl SortedRun {
    /// Tags `rows` (already stably sorted by the merge keys) with
    /// consecutive sequence numbers starting at `base`. Correct whenever
    /// the run's rows occupied the contiguous serial-input interval
    /// `[base, base + rows.len())` in input order before sorting — which
    /// a stable sort preserves within tie groups.
    pub fn from_contiguous(rows: Vec<Row>, base: u64) -> SortedRun {
        // After a stable sort the original positions are no longer
        // consecutive, but within any tie group they stay in input order,
        // so re-tagging 0..len in run order keeps ties correctly ranked
        // *within* this run; across runs only the run-interval order
        // matters, which `base` encodes.
        let seqs = (base..base + rows.len() as u64).collect();
        SortedRun {
            rows,
            seqs,
            enc: Vec::new(),
        }
    }

    /// Rebases a run tagged with local positions `[0, len)` onto the
    /// global interval starting at `base`: shifts each seq and patches
    /// the big-endian seq suffix of any stored keys in place. Workers
    /// tag locally (they cannot know their interval's base); the
    /// coordinator shifts in partition order.
    pub fn shift(&mut self, base: u64) {
        if base == 0 {
            return;
        }
        for (i, seq) in self.seqs.iter_mut().enumerate() {
            *seq += base;
            if let Some(key) = self.enc.get_mut(i) {
                let at = key.len() - 8;
                key[at..].copy_from_slice(&seq.to_be_bytes());
            }
        }
    }
}

/// K-way merges sorted runs into one stream ordered by `(keys, seq)` —
/// the order-preserving half of a merge exchange. Given runs produced by
/// stably sorting disjoint pieces of one serial input and tagged
/// consistently with that input's order, the output is bit-identical to
/// stably sorting the serial input whole.
pub fn merge_runs(runs: Vec<SortedRun>, keys: &SortKeys) -> Vec<Row> {
    merge_runs_into_run(runs, keys).rows
}

/// As [`merge_runs`], but the output keeps its sequence tags (and stored
/// encodings, when every input run carried them) — i.e. the merge of
/// sorted runs *is itself a sorted run*, which is what lets the external
/// sort merge more runs than the fan-in allows in multiple passes: each
/// pass's outputs feed the next as ordinary runs.
pub fn merge_runs_into_run(runs: Vec<SortedRun>, keys: &SortKeys) -> SortedRun {
    let encoded =
        runs.iter().any(|r| !r.enc.is_empty()) && runs.iter().all(|r| r.enc.len() == r.rows.len());
    if encoded {
        return merge_runs_encoded(runs);
    }
    let total: usize = runs.iter().map(|r| r.rows.len()).sum();
    let mut runs: Vec<(std::vec::IntoIter<Row>, std::vec::IntoIter<u64>)> = runs
        .into_iter()
        .map(|r| (r.rows.into_iter(), r.seqs.into_iter()))
        .collect();
    // Current head of each run.
    let mut heads: Vec<Option<(Row, u64)>> = runs
        .iter_mut()
        .map(|(rows, seqs)| rows.next().map(|r| (r, seqs.next().unwrap_or(0))))
        .collect();
    let mut out = SortedRun {
        rows: Vec::with_capacity(total),
        seqs: Vec::with_capacity(total),
        enc: Vec::new(),
    };
    let mut cmps = 0u64;
    loop {
        // Linear scan over the (few) run heads for the minimum by
        // (keys, seq); ties cannot occur because seqs are unique.
        let mut best: Option<usize> = None;
        for (k, head) in heads.iter().enumerate() {
            let Some((row, seq)) = head else { continue };
            best = match best {
                None => Some(k),
                Some(b) => {
                    let (brow, bseq) = heads[b].as_ref().unwrap();
                    cmps += 1;
                    if cmp_rows(row, brow, keys).then(seq.cmp(bseq)) == Ordering::Less {
                        Some(k)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(k) = best else { break };
        let (rows, seqs) = &mut runs[k];
        let next = rows.next().map(|r| (r, seqs.next().unwrap_or(0)));
        let (row, seq) = std::mem::replace(&mut heads[k], next).unwrap();
        out.rows.push(row);
        out.seqs.push(seq);
    }
    charge(0, cmps);
    out
}

/// A consumed run during the encoded merge: rows, seq tags, and stored
/// encodings advanced in lockstep.
type EncodedRunIter = (
    std::vec::IntoIter<Row>,
    std::vec::IntoIter<u64>,
    std::vec::IntoIter<Vec<u8>>,
);

/// The memcmp merge: every run carries stored `(key ‖ seq)` encodings,
/// so each heap compare is one byte-slice comparison — no `Value`
/// dispatch, no separate seq tiebreak. The output run keeps both tags
/// and encodings, so it can enter a later merge pass unchanged.
fn merge_runs_encoded(runs: Vec<SortedRun>) -> SortedRun {
    let total: usize = runs.iter().map(|r| r.rows.len()).sum();
    let mut runs: Vec<EncodedRunIter> = runs
        .into_iter()
        .map(|r| (r.rows.into_iter(), r.seqs.into_iter(), r.enc.into_iter()))
        .collect();
    let mut heads: Vec<Option<(Row, u64, Vec<u8>)>> = runs
        .iter_mut()
        .map(|(rows, seqs, enc)| {
            rows.next()
                .map(|r| (r, seqs.next().unwrap_or(0), enc.next().unwrap_or_default()))
        })
        .collect();
    let mut out = SortedRun {
        rows: Vec::with_capacity(total),
        seqs: Vec::with_capacity(total),
        enc: Vec::with_capacity(total),
    };
    let mut cmps = 0u64;
    loop {
        let mut best: Option<usize> = None;
        for (k, head) in heads.iter().enumerate() {
            let Some((_, _, key)) = head else { continue };
            best = match best {
                None => Some(k),
                Some(b) => {
                    let (_, _, bkey) = heads[b].as_ref().unwrap();
                    cmps += 1;
                    if key.as_slice() < bkey.as_slice() {
                        Some(k)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(k) = best else { break };
        let (rows, seqs, enc) = &mut runs[k];
        let next = rows
            .next()
            .map(|r| (r, seqs.next().unwrap_or(0), enc.next().unwrap_or_default()));
        let (row, seq, key) = std::mem::replace(&mut heads[k], next).unwrap();
        out.rows.push(row);
        out.seqs.push(seq);
        out.enc.push(key);
    }
    charge(0, cmps);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::ColId;
    use fto_order::SortKey;

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn keys_from(cols: &[(usize, Direction)]) -> SortKeys {
        cols.to_vec()
    }

    fn spec_desc_asc() -> (OrderSpec, RowLayout) {
        let spec: OrderSpec = [
            SortKey {
                col: ColId(1),
                dir: Direction::Desc,
            },
            SortKey {
                col: ColId(0),
                dir: Direction::Asc,
            },
        ]
        .into_iter()
        .collect();
        (spec, RowLayout::new(vec![ColId(0), ColId(1)]))
    }

    #[test]
    fn resolve_and_sort_matches_naive_stable_sort() {
        let (spec, layout) = spec_desc_asc();
        let keys = resolve_keys(&spec, &layout).unwrap();
        let mut rows: Vec<Row> = (0..200).map(|i| row(&[i % 7, i % 3])).collect();
        let mut expected = rows.clone();
        expected.sort_by(|a, b| b[1].total_cmp(&a[1]).then_with(|| a[0].total_cmp(&b[0])));
        sort_rows(&mut rows, &keys);
        assert_eq!(rows, expected);
    }

    #[test]
    fn sort_is_stable_on_full_ties() {
        // Key column is constant; payload column must keep input order.
        let keys = keys_from(&[(0, Direction::Asc)]);
        let mut rows: Vec<Row> = (0..50).map(|i| row(&[7, i])).collect();
        let expected = rows.clone();
        sort_rows(&mut rows, &keys);
        assert_eq!(rows, expected, "stable sort must preserve tie order");
    }

    #[test]
    fn empty_keys_leave_input_untouched() {
        let mut rows: Vec<Row> = vec![row(&[3]), row(&[1]), row(&[2])];
        let expected = rows.clone();
        sort_rows(&mut rows, &Vec::new());
        assert_eq!(rows, expected);
    }

    #[test]
    fn top_n_equals_stable_sort_prefix_including_boundary_ties() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        // Many ties across the n boundary; payload distinguishes rows.
        let rows: Vec<Row> = (0..40).map(|i| row(&[i % 4, i])).collect();
        let mut sorted = rows.clone();
        sort_rows(&mut sorted, &keys);
        for n in [0usize, 1, 5, 10, 11, 39, 40, 100] {
            let got = top_n(rows.clone(), &keys, n);
            let want: Vec<Row> = sorted.iter().take(n).cloned().collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn merge_of_contiguous_runs_reproduces_serial_stable_sort() {
        let keys = keys_from(&[(0, Direction::Desc)]);
        let input: Vec<Row> = (0..120).map(|i| row(&[(i * 13) % 5, i])).collect();
        let mut serial = input.clone();
        sort_rows(&mut serial, &keys);
        for parts in [1usize, 2, 3, 4, 5] {
            let chunk = input.len().div_ceil(parts);
            let mut runs = Vec::new();
            let mut base = 0u64;
            for piece in input.chunks(chunk) {
                let mut rows = piece.to_vec();
                let len = rows.len() as u64;
                sort_rows(&mut rows, &keys);
                runs.push(SortedRun::from_contiguous(rows, base));
                base += len;
            }
            assert_eq!(merge_runs(runs, &keys), serial, "parts={parts}");
        }
    }

    #[test]
    fn merge_with_explicit_tags_restores_round_robin_deal() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        let input: Vec<Row> = (0..90).map(|i| row(&[(i * 7) % 6, i])).collect();
        let mut serial = input.clone();
        sort_rows(&mut serial, &keys);
        let parts = 4;
        // Round-robin deal, remembering global positions.
        let mut buckets: Vec<Vec<(u64, Row)>> = vec![Vec::new(); parts];
        for (g, r) in input.into_iter().enumerate() {
            buckets[g % parts].push((g as u64, r));
        }
        let runs: Vec<SortedRun> = buckets
            .into_iter()
            .map(|bucket| sort_tagged(bucket, &keys))
            .collect();
        assert_eq!(merge_runs(runs, &keys), serial);
    }

    /// Mixed-shape rows exercising every codec branch: numerics (int and
    /// double interleaved), strings of varying length, NULLs, dates,
    /// bools.
    fn mixed_rows(n: usize) -> Vec<Row> {
        let mut rng = fto_common::Rng::new(0xfeed);
        (0..n)
            .map(|i| {
                let key: Value = match rng.range_usize(0, 6) {
                    0 => Value::Null,
                    1 => Value::Int(rng.range_i64(-50, 50)),
                    2 => Value::Double(rng.range_f64(-50.0, 50.0)),
                    3 => Value::str(format!("s{}", rng.range_usize(0, 40))),
                    4 => Value::Date(rng.range_i32(0, 100)),
                    _ => Value::Bool(rng.bool()),
                };
                [key, Value::Int(i as i64)].into_iter().collect()
            })
            .collect()
    }

    #[test]
    fn codec_sort_matches_legacy_sort_on_mixed_shapes() {
        for dir in [Direction::Asc, Direction::Desc] {
            let keys = keys_from(&[(0, dir)]);
            let mut legacy = mixed_rows(500);
            let mut codec = legacy.clone();
            sort_rows(&mut legacy, &keys);
            sort_rows_with(&mut codec, &keys, true);
            assert_eq!(codec, legacy, "dir={dir:?}");
        }
    }

    #[test]
    fn codec_sort_takes_radix_path_on_fixed_width_keys() {
        // All-Int composite keys are fixed width (11 bytes per column +
        // 8-byte seq), so this drives the MSB radix path; the result
        // must still equal the legacy stable sort.
        let keys = keys_from(&[(0, Direction::Desc), (1, Direction::Asc)]);
        let mut rng = fto_common::Rng::new(3);
        let mut legacy: Vec<Row> = (0..4096)
            .map(|_| row(&[rng.range_i64(-8, 8), rng.range_i64(0, 4)]))
            .collect();
        let mut codec = legacy.clone();
        let before = stats_snapshot();
        sort_rows_with(&mut codec, &keys, true);
        let delta = stats_snapshot().delta_since(before);
        assert!(delta.key_bytes >= 4096 * 30, "encoded {delta:?}");
        sort_rows(&mut legacy, &keys);
        assert_eq!(codec, legacy);
    }

    #[test]
    fn codec_top_n_matches_legacy_top_n() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        let rows = mixed_rows(300);
        for n in [0usize, 1, 7, 299, 300, 400] {
            assert_eq!(
                top_n_with(rows.clone(), &keys, n, true),
                top_n(rows.clone(), &keys, n),
                "n={n}"
            );
        }
    }

    #[test]
    fn codec_runs_merge_bit_identically_to_legacy() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        let input = mixed_rows(240);
        let mut serial = input.clone();
        sort_rows(&mut serial, &keys);
        for parts in [1usize, 2, 3, 5] {
            let chunk = input.len().div_ceil(parts);
            let mut runs = Vec::new();
            let mut base = 0u64;
            for piece in input.chunks(chunk) {
                let len = piece.len() as u64;
                let mut run = sort_run_codec(piece.to_vec(), &keys);
                run.shift(base);
                runs.push(run);
                base += len;
            }
            assert_eq!(merge_runs(runs, &keys), serial, "parts={parts}");
        }
    }

    #[test]
    fn codec_tagged_runs_restore_round_robin_deal() {
        let keys = keys_from(&[(0, Direction::Desc)]);
        let input = mixed_rows(150);
        let mut serial = input.clone();
        sort_rows(&mut serial, &keys);
        let parts = 3;
        let mut buckets: Vec<Vec<(u64, Row)>> = vec![Vec::new(); parts];
        for (g, r) in input.into_iter().enumerate() {
            buckets[g % parts].push((g as u64, r));
        }
        let runs: Vec<SortedRun> = buckets
            .into_iter()
            .map(|bucket| sort_tagged_with(bucket, &keys, true))
            .collect();
        assert_eq!(merge_runs(runs, &keys), serial);
    }

    #[test]
    fn top_n_run_shift_rebases_stored_keys() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        // Two "workers" with heavy ties: containment + tag order across
        // runs must pick the earliest-input rows, exactly like serial.
        let all: Vec<Row> = (0..60).map(|i| row(&[i % 3, i])).collect();
        let serial = top_n(all.clone(), &keys, 10);
        let mut runs = Vec::new();
        let mut base = 0u64;
        for piece in all.chunks(30) {
            let tagged: Vec<(u64, Row)> = piece
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, r)| (i as u64, r))
                .collect();
            let mut run = top_n_run(tagged, &keys, 10, true);
            run.shift(base);
            runs.push(run);
            base += 30;
        }
        let mut merged = merge_runs(runs, &keys);
        merged.truncate(10);
        assert_eq!(merged, serial);
    }

    #[test]
    fn stats_counters_accumulate() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        let before = stats_snapshot();
        let mut rows: Vec<Row> = (0..100).map(|i| row(&[(i * 37) % 11, i])).collect();
        sort_rows_with(&mut rows, &keys, true);
        let after = stats_snapshot();
        let delta = after.delta_since(before);
        assert!(delta.key_bytes > 0, "codec sort must record key bytes");
        let mut rows2: Vec<Row> = (0..100).map(|i| row(&[(i * 37) % 11, i])).collect();
        sort_rows(&mut rows2, &keys);
        let legacy_delta = stats_snapshot().delta_since(after);
        assert!(legacy_delta.comparisons > 0, "legacy sort counts compares");
    }

    #[test]
    fn merge_handles_empty_and_unbalanced_runs() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        let runs = vec![
            SortedRun::from_contiguous(vec![], 0),
            SortedRun::from_contiguous(vec![row(&[1, 0]), row(&[3, 1])], 0),
            SortedRun::from_contiguous(vec![row(&[2, 2])], 2),
        ];
        let merged = merge_runs(runs, &keys);
        let got: Vec<i64> = merged.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }
}
