//! The shared sort kernel: one implementation of row comparison, full
//! sort, top-N selection, and order-preserving run merging, used by the
//! materializing interpreter, the streaming executor, and the parallel
//! exchange operators.
//!
//! # Stability and tie-order contract
//!
//! Every entry point in this module implements the same total ordering:
//! rows compare by the resolved sort keys (each column through
//! [`Direction::apply`], NULLs per [`Value::total_cmp`]), and rows whose
//! keys compare equal stay in **input order**. Equivalently: the output is
//! what a stable sort of the input produces.
//!
//! This is not a cosmetic choice — it is the determinism anchor for the
//! whole engine:
//!
//! * the differential suite requires the streaming and materializing
//!   engines to emit bit-identical rows, which forces one tie order;
//! * parallel execution splits the input into runs, sorts each run
//!   independently, and merges; the merge reproduces the serial output
//!   *only because* each run is stably sorted and [`merge_runs`] breaks
//!   key ties by the runs' global sequence tags (or, absent tags, by run
//!   index — valid whenever run `i` holds rows that precede run `i+1`'s
//!   in the serial input).
//!
//! Sorting is decorate–sort–undecorate: key columns are extracted once
//! per row into a contiguous key array, so comparisons during the sort
//! touch only the extracted keys instead of re-indexing the full row per
//! key column per comparison (the old `cmp_rows` pattern).

use fto_common::{Direction, FtoError, Result, Row, Value};
use fto_expr::RowLayout;
use fto_order::OrderSpec;
use std::cmp::Ordering;

/// Resolved sort keys: (position in the row, direction) per key column.
pub type SortKeys = Vec<(usize, Direction)>;

/// Resolves an [`OrderSpec`]'s columns to row positions under `layout`.
pub fn resolve_keys(spec: &OrderSpec, layout: &RowLayout) -> Result<SortKeys> {
    spec.keys()
        .iter()
        .map(|k| {
            layout.position(k.col).map(|p| (p, k.dir)).ok_or_else(|| {
                FtoError::internal(format!("sort column {} missing from layout", k.col))
            })
        })
        .collect()
}

/// Compares two rows by `keys` — the kernel's key ordering, exposed for
/// callers that compare without decorating (e.g. run merging).
pub fn cmp_rows(a: &Row, b: &Row, keys: &SortKeys) -> Ordering {
    for &(pos, dir) in keys {
        let ord = dir.apply(a[pos].total_cmp(&b[pos]));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Extracted key columns for one row, compared positionally with the
/// keys' directions.
fn extract(row: &Row, keys: &SortKeys) -> Box<[Value]> {
    keys.iter().map(|&(pos, _)| row[pos].clone()).collect()
}

fn cmp_extracted(a: &[Value], b: &[Value], keys: &SortKeys) -> Ordering {
    for (i, &(_, dir)) in keys.iter().enumerate() {
        let ord = dir.apply(a[i].total_cmp(&b[i]));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Stably sorts `rows` by `keys` (ties keep input order) using
/// decorate–sort–undecorate.
pub fn sort_rows(rows: &mut Vec<Row>, keys: &SortKeys) {
    if rows.len() <= 1 || keys.is_empty() {
        return;
    }
    let mut decorated: Vec<(Box<[Value]>, Row)> = std::mem::take(rows)
        .into_iter()
        .map(|row| (extract(&row, keys), row))
        .collect();
    decorated.sort_by(|a, b| cmp_extracted(&a.0, &b.0, keys));
    *rows = decorated.into_iter().map(|(_, row)| row).collect();
}

/// Sorts tagged rows by `(keys, seq)` into a [`SortedRun`] — the
/// per-bucket sort of a round-robin repartition, where each tag is the
/// row's global position in the serial stream. The tag makes the order
/// total, so the unstable sort is deterministic, and merging the buckets'
/// runs by `(keys, seq)` reproduces the serial stable sort exactly.
pub fn sort_tagged(pairs: Vec<(u64, Row)>, keys: &SortKeys) -> SortedRun {
    let mut decorated: Vec<(Box<[Value]>, u64, Row)> = pairs
        .into_iter()
        .map(|(seq, row)| (extract(&row, keys), seq, row))
        .collect();
    decorated.sort_unstable_by(|a, b| cmp_extracted(&a.0, &b.0, keys).then(a.1.cmp(&b.1)));
    SortedRun {
        seqs: decorated.iter().map(|d| d.1).collect(),
        rows: decorated.into_iter().map(|d| d.2).collect(),
    }
}

/// The first `n` rows of the stable sort of `rows` by `keys`, each tagged
/// with its original input position. Selection runs before the sort, so
/// only the winning prefix pays `O(n log n)`; the input-position tag makes
/// the comparator a total order, which is what pins the *choice* of
/// boundary ties (the earliest tied input rows win) as well as their
/// output order.
pub fn top_n_tagged(rows: Vec<(u64, Row)>, keys: &SortKeys, n: usize) -> Vec<(u64, Row)> {
    if n == 0 {
        return Vec::new();
    }
    let mut decorated: Vec<(Box<[Value]>, u64, Row)> = rows
        .into_iter()
        .map(|(seq, row)| (extract(&row, keys), seq, row))
        .collect();
    let cmp = |a: &(Box<[Value]>, u64, Row), b: &(Box<[Value]>, u64, Row)| {
        cmp_extracted(&a.0, &b.0, keys).then(a.1.cmp(&b.1))
    };
    if decorated.len() > n {
        decorated.select_nth_unstable_by(n - 1, cmp);
        decorated.truncate(n);
    }
    // The tag makes the order total, so an unstable sort is deterministic.
    decorated.sort_unstable_by(cmp);
    decorated
        .into_iter()
        .map(|(_, seq, row)| (seq, row))
        .collect()
}

/// The first `n` rows of the stable sort of `rows` by `keys` (see
/// [`top_n_tagged`]; tags here are the input positions themselves).
pub fn top_n(rows: Vec<Row>, keys: &SortKeys, n: usize) -> Vec<Row> {
    top_n_tagged(
        rows.into_iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect(),
        keys,
        n,
    )
    .into_iter()
    .map(|(_, row)| row)
    .collect()
}

/// One sorted run entering a merge: rows sorted by `(keys, seq)`, with
/// `seqs[i]` the global sequence tag of `rows[i]`. Tags must be unique
/// across all runs of one merge and consistent with the serial emission
/// order the merge is meant to reproduce.
#[derive(Debug, Default)]
pub struct SortedRun {
    /// The run's rows, sorted by `(keys, seq)`.
    pub rows: Vec<Row>,
    /// Global sequence tags, parallel to `rows` (strictly increasing
    /// within a tie group by construction).
    pub seqs: Vec<u64>,
}

impl SortedRun {
    /// Tags `rows` (already stably sorted by the merge keys) with
    /// consecutive sequence numbers starting at `base`. Correct whenever
    /// the run's rows occupied the contiguous serial-input interval
    /// `[base, base + rows.len())` in input order before sorting — which
    /// a stable sort preserves within tie groups.
    pub fn from_contiguous(rows: Vec<Row>, base: u64) -> SortedRun {
        // After a stable sort the original positions are no longer
        // consecutive, but within any tie group they stay in input order,
        // so re-tagging 0..len in run order keeps ties correctly ranked
        // *within* this run; across runs only the run-interval order
        // matters, which `base` encodes.
        let seqs = (base..base + rows.len() as u64).collect();
        SortedRun { rows, seqs }
    }
}

/// K-way merges sorted runs into one stream ordered by `(keys, seq)` —
/// the order-preserving half of a merge exchange. Given runs produced by
/// stably sorting disjoint pieces of one serial input and tagged
/// consistently with that input's order, the output is bit-identical to
/// stably sorting the serial input whole.
pub fn merge_runs(runs: Vec<SortedRun>, keys: &SortKeys) -> Vec<Row> {
    let total: usize = runs.iter().map(|r| r.rows.len()).sum();
    let mut runs: Vec<(std::vec::IntoIter<Row>, std::vec::IntoIter<u64>)> = runs
        .into_iter()
        .map(|r| (r.rows.into_iter(), r.seqs.into_iter()))
        .collect();
    // Current head of each run.
    let mut heads: Vec<Option<(Row, u64)>> = runs
        .iter_mut()
        .map(|(rows, seqs)| rows.next().map(|r| (r, seqs.next().unwrap_or(0))))
        .collect();
    let mut out = Vec::with_capacity(total);
    loop {
        // Linear scan over the (few) run heads for the minimum by
        // (keys, seq); ties cannot occur because seqs are unique.
        let mut best: Option<usize> = None;
        for (k, head) in heads.iter().enumerate() {
            let Some((row, seq)) = head else { continue };
            best = match best {
                None => Some(k),
                Some(b) => {
                    let (brow, bseq) = heads[b].as_ref().unwrap();
                    if cmp_rows(row, brow, keys).then(seq.cmp(bseq)) == Ordering::Less {
                        Some(k)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(k) = best else { break };
        let (rows, seqs) = &mut runs[k];
        let next = rows.next().map(|r| (r, seqs.next().unwrap_or(0)));
        let (row, _) = std::mem::replace(&mut heads[k], next).unwrap();
        out.push(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::ColId;
    use fto_order::SortKey;

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn keys_from(cols: &[(usize, Direction)]) -> SortKeys {
        cols.to_vec()
    }

    fn spec_desc_asc() -> (OrderSpec, RowLayout) {
        let spec: OrderSpec = [
            SortKey {
                col: ColId(1),
                dir: Direction::Desc,
            },
            SortKey {
                col: ColId(0),
                dir: Direction::Asc,
            },
        ]
        .into_iter()
        .collect();
        (spec, RowLayout::new(vec![ColId(0), ColId(1)]))
    }

    #[test]
    fn resolve_and_sort_matches_naive_stable_sort() {
        let (spec, layout) = spec_desc_asc();
        let keys = resolve_keys(&spec, &layout).unwrap();
        let mut rows: Vec<Row> = (0..200).map(|i| row(&[i % 7, i % 3])).collect();
        let mut expected = rows.clone();
        expected.sort_by(|a, b| b[1].total_cmp(&a[1]).then_with(|| a[0].total_cmp(&b[0])));
        sort_rows(&mut rows, &keys);
        assert_eq!(rows, expected);
    }

    #[test]
    fn sort_is_stable_on_full_ties() {
        // Key column is constant; payload column must keep input order.
        let keys = keys_from(&[(0, Direction::Asc)]);
        let mut rows: Vec<Row> = (0..50).map(|i| row(&[7, i])).collect();
        let expected = rows.clone();
        sort_rows(&mut rows, &keys);
        assert_eq!(rows, expected, "stable sort must preserve tie order");
    }

    #[test]
    fn empty_keys_leave_input_untouched() {
        let mut rows: Vec<Row> = vec![row(&[3]), row(&[1]), row(&[2])];
        let expected = rows.clone();
        sort_rows(&mut rows, &Vec::new());
        assert_eq!(rows, expected);
    }

    #[test]
    fn top_n_equals_stable_sort_prefix_including_boundary_ties() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        // Many ties across the n boundary; payload distinguishes rows.
        let rows: Vec<Row> = (0..40).map(|i| row(&[i % 4, i])).collect();
        let mut sorted = rows.clone();
        sort_rows(&mut sorted, &keys);
        for n in [0usize, 1, 5, 10, 11, 39, 40, 100] {
            let got = top_n(rows.clone(), &keys, n);
            let want: Vec<Row> = sorted.iter().take(n).cloned().collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn merge_of_contiguous_runs_reproduces_serial_stable_sort() {
        let keys = keys_from(&[(0, Direction::Desc)]);
        let input: Vec<Row> = (0..120).map(|i| row(&[(i * 13) % 5, i])).collect();
        let mut serial = input.clone();
        sort_rows(&mut serial, &keys);
        for parts in [1usize, 2, 3, 4, 5] {
            let chunk = input.len().div_ceil(parts);
            let mut runs = Vec::new();
            let mut base = 0u64;
            for piece in input.chunks(chunk) {
                let mut rows = piece.to_vec();
                let len = rows.len() as u64;
                sort_rows(&mut rows, &keys);
                runs.push(SortedRun::from_contiguous(rows, base));
                base += len;
            }
            assert_eq!(merge_runs(runs, &keys), serial, "parts={parts}");
        }
    }

    #[test]
    fn merge_with_explicit_tags_restores_round_robin_deal() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        let input: Vec<Row> = (0..90).map(|i| row(&[(i * 7) % 6, i])).collect();
        let mut serial = input.clone();
        sort_rows(&mut serial, &keys);
        let parts = 4;
        // Round-robin deal, remembering global positions.
        let mut buckets: Vec<Vec<(u64, Row)>> = vec![Vec::new(); parts];
        for (g, r) in input.into_iter().enumerate() {
            buckets[g % parts].push((g as u64, r));
        }
        let runs: Vec<SortedRun> = buckets
            .into_iter()
            .map(|bucket| sort_tagged(bucket, &keys))
            .collect();
        assert_eq!(merge_runs(runs, &keys), serial);
    }

    #[test]
    fn merge_handles_empty_and_unbalanced_runs() {
        let keys = keys_from(&[(0, Direction::Asc)]);
        let runs = vec![
            SortedRun::from_contiguous(vec![], 0),
            SortedRun::from_contiguous(vec![row(&[1, 0]), row(&[3, 1])], 0),
            SortedRun::from_contiguous(vec![row(&[2, 2])], 2),
        ];
        let merged = merge_runs(runs, &keys);
        let got: Vec<i64> = merged.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }
}
