//! Functional dependencies and their closure algebra.
//!
//! The paper (§4.1) frames *all* of order reduction in terms of functional
//! dependencies:
//!
//! * `col = constant` ⇒ `{} → {col}` (the "empty-headed" FD);
//! * `col1 = col2`   ⇒ `{col1} → {col2}` and `{col2} → {col1}`;
//! * a key `K`       ⇒ `K → {all columns of the stream}`;
//! * GROUP BY        ⇒ `{grouping columns} → {aggregate outputs}`;
//! * `{x} → {x}` trivially (reflexivity).
//!
//! The paper tests `B → {c}` with a single subset scan over the stored FDs.
//! This implementation computes the full attribute-set closure (Armstrong's
//! axioms to a fixpoint), which is strictly more powerful — it additionally
//! captures transitive chains like `{a} → {b}, {b} → {c} ⊢ {a} → {c}` —
//! while remaining a simple worklist loop. DESIGN.md documents this as the
//! one deliberate strengthening of the paper's algorithms.

use fto_common::{ColId, ColSet};
use std::fmt;

/// A single functional dependency `head → tail`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Fd {
    /// Determinant columns (may be empty: a constant dependency).
    pub head: ColSet,
    /// Determined columns.
    pub tail: ColSet,
}

impl Fd {
    /// Constructs `head → tail`.
    pub fn new(head: ColSet, tail: ColSet) -> Fd {
        Fd { head, tail }
    }

    /// The empty-headed FD `{} → {col}` arising from `col = constant`.
    pub fn constant(col: ColId) -> Fd {
        Fd {
            head: ColSet::new(),
            tail: ColSet::singleton(col),
        }
    }

    /// The FD pair generator for `a = b` returns one direction; call twice.
    pub fn implies(a: ColId, b: ColId) -> Fd {
        Fd {
            head: ColSet::singleton(a),
            tail: ColSet::singleton(b),
        }
    }

    /// A key dependency `key → columns`.
    pub fn key(key: ColSet, all_columns: ColSet) -> Fd {
        Fd {
            head: key,
            tail: all_columns,
        }
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} -> {:?}", self.head, self.tail)
    }
}

/// A set of functional dependencies with closure queries.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// The empty FD set.
    pub fn new() -> FdSet {
        FdSet::default()
    }

    /// Adds an FD, skipping exact duplicates and trivial (`tail ⊆ head`)
    /// dependencies.
    pub fn add(&mut self, fd: Fd) {
        if fd.tail.is_subset(&fd.head) {
            return;
        }
        if self.fds.contains(&fd) {
            return;
        }
        self.fds.push(fd);
    }

    /// Adds both directions of `a = b`.
    pub fn add_equivalence(&mut self, a: ColId, b: ColId) {
        self.add(Fd::implies(a, b));
        self.add(Fd::implies(b, a));
    }

    /// Adds `{} → {col}` for `col = constant`.
    pub fn add_constant(&mut self, col: ColId) {
        self.add(Fd::constant(col));
    }

    /// Adds `key → all_columns`.
    pub fn add_key(&mut self, key: ColSet, all_columns: ColSet) {
        self.add(Fd::key(key, all_columns));
    }

    /// The stored dependencies.
    pub fn iter(&self) -> impl Iterator<Item = &Fd> {
        self.fds.iter()
    }

    /// Number of stored dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when no dependencies are stored.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Merges another FD set into this one.
    pub fn absorb(&mut self, other: &FdSet) {
        for fd in &other.fds {
            self.add(fd.clone());
        }
    }

    /// The attribute-set closure of `attrs` under the stored FDs
    /// (reflexivity is implicit: `attrs ⊆ closure(attrs)`).
    pub fn closure(&self, attrs: &ColSet) -> ColSet {
        let mut closed = attrs.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if fd.head.is_subset(&closed) && !fd.tail.is_subset(&closed) {
                    closed.union_with(&fd.tail);
                    changed = true;
                }
            }
        }
        closed
    }

    /// True when `attrs → {col}` follows from the stored FDs.
    ///
    /// Reflexivity (`col ∈ attrs`) counts, exactly as the paper needs it:
    /// a duplicated order column is removed because the columns before it
    /// trivially determine it.
    pub fn determines(&self, attrs: &ColSet, col: ColId) -> bool {
        if attrs.contains(col) {
            return true;
        }
        self.closure(attrs).contains(col)
    }

    /// True when `attrs` determines every column of `cols`.
    pub fn determines_all(&self, attrs: &ColSet, cols: &ColSet) -> bool {
        cols.is_subset(&self.closure(attrs))
    }

    /// Rewrites every column in every FD through `f` (used to normalize FDs
    /// into equivalence-class-head space and to remap columns across query
    /// scopes). Dependencies that become trivial are dropped.
    pub fn map_cols(&self, mut f: impl FnMut(ColId) -> ColId) -> FdSet {
        let mut out = FdSet::new();
        for fd in &self.fds {
            let head: ColSet = fd.head.iter().map(&mut f).collect();
            let tail: ColSet = fd.tail.iter().map(&mut f).collect();
            out.add(Fd::new(head, tail));
        }
        out
    }
}

impl fmt::Debug for FdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FdSet[")?;
        for (i, fd) in self.fds.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{fd}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    fn cs(ids: &[u32]) -> ColSet {
        ids.iter().map(|&i| ColId(i)).collect()
    }

    #[test]
    fn constant_fd_determines_from_empty() {
        let mut fds = FdSet::new();
        fds.add_constant(c(3));
        assert!(fds.determines(&ColSet::new(), c(3)));
        assert!(!fds.determines(&ColSet::new(), c(4)));
    }

    #[test]
    fn reflexivity() {
        let fds = FdSet::new();
        assert!(fds.determines(&cs(&[1, 2]), c(2)));
    }

    #[test]
    fn equivalence_fds_are_bidirectional() {
        let mut fds = FdSet::new();
        fds.add_equivalence(c(1), c(2));
        assert!(fds.determines(&cs(&[1]), c(2)));
        assert!(fds.determines(&cs(&[2]), c(1)));
    }

    #[test]
    fn key_fd() {
        let mut fds = FdSet::new();
        fds.add_key(cs(&[0]), cs(&[0, 1, 2, 3]));
        assert!(fds.determines_all(&cs(&[0]), &cs(&[1, 2, 3])));
        assert!(!fds.determines(&cs(&[1]), c(0)));
    }

    #[test]
    fn closure_is_transitive() {
        // {a}→{b}, {b}→{c}: the paper's single-step test misses {a}→{c};
        // our closure finds it.
        let mut fds = FdSet::new();
        fds.add(Fd::implies(c(1), c(2)));
        fds.add(Fd::implies(c(2), c(3)));
        assert!(fds.determines(&cs(&[1]), c(3)));
        assert_eq!(fds.closure(&cs(&[1])), cs(&[1, 2, 3]));
    }

    #[test]
    fn multi_column_heads() {
        let mut fds = FdSet::new();
        fds.add(Fd::new(cs(&[1, 2]), cs(&[3])));
        assert!(!fds.determines(&cs(&[1]), c(3)));
        assert!(fds.determines(&cs(&[1, 2]), c(3)));
        assert!(fds.determines(&cs(&[1, 2, 9]), c(3)));
    }

    #[test]
    fn trivial_fds_are_dropped() {
        let mut fds = FdSet::new();
        fds.add(Fd::new(cs(&[1, 2]), cs(&[1])));
        assert!(fds.is_empty());
        fds.add(Fd::implies(c(1), c(1)));
        assert!(fds.is_empty());
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut fds = FdSet::new();
        fds.add(Fd::implies(c(1), c(2)));
        fds.add(Fd::implies(c(1), c(2)));
        assert_eq!(fds.len(), 1);
    }

    #[test]
    fn absorb_unions() {
        let mut a = FdSet::new();
        a.add(Fd::implies(c(1), c(2)));
        let mut b = FdSet::new();
        b.add(Fd::implies(c(2), c(3)));
        a.absorb(&b);
        assert!(a.determines(&cs(&[1]), c(3)));
    }

    #[test]
    fn map_cols_remaps_and_drops_trivial() {
        let mut fds = FdSet::new();
        fds.add(Fd::implies(c(1), c(2)));
        // Map both ends to the same column: becomes trivial, dropped.
        let collapsed = fds.map_cols(|_| c(7));
        assert!(collapsed.is_empty());
        let shifted = fds.map_cols(|col| ColId(col.0 + 10));
        assert!(shifted.determines(&cs(&[11]), c(12)));
    }

    #[test]
    fn empty_closure_of_constants() {
        let mut fds = FdSet::new();
        fds.add_constant(c(5));
        fds.add(Fd::implies(c(5), c(6)));
        // {} → 5 → 6: both constants after closure.
        assert_eq!(fds.closure(&ColSet::new()), cs(&[5, 6]));
    }

    #[test]
    fn debug_format_mentions_arrow() {
        let mut fds = FdSet::new();
        fds.add(Fd::implies(c(1), c(2)));
        assert!(format!("{fds:?}").contains("->"));
    }
}
