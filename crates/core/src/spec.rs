//! Order specifications: the common representation of both *order
//! properties* (what a stream is actually ordered by) and *interesting
//! orders* (what some operation would like it to be ordered by).
//!
//! Per the paper (§3), an order specification is a list of columns in
//! major-to-minor significance. The paper assumes ascending columns
//! without loss of generality; this implementation carries an explicit
//! [`Direction`] per column.

use fto_common::{ColId, ColSet, Direction};
use std::fmt;

/// One column of an order specification.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SortKey {
    /// The ordering column.
    pub col: ColId,
    /// Ascending or descending.
    pub dir: Direction,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(col: ColId) -> SortKey {
        SortKey {
            col,
            dir: Direction::Asc,
        }
    }

    /// Descending sort key.
    pub fn desc(col: ColId) -> SortKey {
        SortKey {
            col,
            dir: Direction::Desc,
        }
    }
}

impl fmt::Display for SortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            Direction::Asc => write!(f, "{}", self.col),
            Direction::Desc => write!(f, "{} desc", self.col),
        }
    }
}

/// An order specification: columns in major-to-minor order.
///
/// The empty specification is trivially satisfied by any stream (paper
/// §4.1: an order can become empty after reduction, e.g. ordering on a
/// column bound to a constant).
#[derive(Clone, PartialEq, Eq, Debug, Hash, Default)]
pub struct OrderSpec {
    keys: Vec<SortKey>,
}

impl OrderSpec {
    /// The empty order.
    pub fn empty() -> OrderSpec {
        OrderSpec::default()
    }

    /// Builds a specification from sort keys.
    pub fn new(keys: impl Into<Vec<SortKey>>) -> OrderSpec {
        OrderSpec { keys: keys.into() }
    }

    /// Builds an all-ascending specification from columns (the paper's
    /// `(c1, c2, ..., cn)` notation).
    pub fn ascending(cols: impl IntoIterator<Item = ColId>) -> OrderSpec {
        OrderSpec {
            keys: cols.into_iter().map(SortKey::asc).collect(),
        }
    }

    /// The sort keys, major to minor.
    pub fn keys(&self) -> &[SortKey] {
        &self.keys
    }

    /// Number of sort columns.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no columns remain.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The columns of the specification as a set.
    pub fn col_set(&self) -> ColSet {
        self.keys.iter().map(|k| k.col).collect()
    }

    /// Iterates over the columns, major to minor.
    pub fn cols(&self) -> impl Iterator<Item = ColId> + '_ {
        self.keys.iter().map(|k| k.col)
    }

    /// Appends a sort key.
    pub fn push(&mut self, key: SortKey) {
        self.keys.push(key);
    }

    /// Removes the key at `idx`.
    pub fn remove(&mut self, idx: usize) -> SortKey {
        self.keys.remove(idx)
    }

    /// Truncates to the first `n` keys.
    pub fn truncate(&mut self, n: usize) {
        self.keys.truncate(n);
    }

    /// True when `self` is a prefix of `other`, respecting directions.
    ///
    /// This is the satisfaction test of Fig. 3 *after* both sides have been
    /// reduced: a stream ordered `(a, b, c)` satisfies the interesting
    /// order `(a, b)` but not `(b)` and not `(a, b desc)`.
    pub fn is_prefix_of(&self, other: &OrderSpec) -> bool {
        self.keys.len() <= other.keys.len()
            && self.keys.iter().zip(&other.keys).all(|(a, b)| a == b)
    }

    /// The concatenation of `self` and `other` (used when extending a
    /// cover, e.g. appending merge-join columns).
    pub fn concat(&self, other: &OrderSpec) -> OrderSpec {
        let mut keys = self.keys.clone();
        keys.extend_from_slice(&other.keys);
        OrderSpec { keys }
    }

    /// Rewrites every column through `f`, preserving directions.
    pub fn map_cols(&self, mut f: impl FnMut(ColId) -> ColId) -> OrderSpec {
        OrderSpec {
            keys: self
                .keys
                .iter()
                .map(|k| SortKey {
                    col: f(k.col),
                    dir: k.dir,
                })
                .collect(),
        }
    }

    /// The specification with every direction reversed; a stream ordered by
    /// `O` can be read backwards to satisfy `O.reversed()` (used when an
    /// index supports reverse scans).
    pub fn reversed(&self) -> OrderSpec {
        OrderSpec {
            keys: self
                .keys
                .iter()
                .map(|k| SortKey {
                    col: k.col,
                    dir: k.dir.reversed(),
                })
                .collect(),
        }
    }
}

impl FromIterator<SortKey> for OrderSpec {
    fn from_iter<T: IntoIterator<Item = SortKey>>(iter: T) -> Self {
        OrderSpec {
            keys: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for OrderSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, k) in self.keys.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    #[test]
    fn prefix_respects_direction() {
        let a = OrderSpec::new(vec![SortKey::asc(c(1))]);
        let ab = OrderSpec::new(vec![SortKey::asc(c(1)), SortKey::asc(c(2))]);
        let a_desc = OrderSpec::new(vec![SortKey::desc(c(1))]);
        assert!(a.is_prefix_of(&ab));
        assert!(!ab.is_prefix_of(&a));
        assert!(!a_desc.is_prefix_of(&ab));
        assert!(OrderSpec::empty().is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
    }

    #[test]
    fn ascending_constructor() {
        let o = OrderSpec::ascending([c(3), c(1)]);
        assert_eq!(o.keys()[0], SortKey::asc(c(3)));
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
    }

    #[test]
    fn col_set_and_iter() {
        let o = OrderSpec::ascending([c(2), c(5)]);
        assert_eq!(o.col_set(), ColSet::from_cols([c(2), c(5)]));
        assert_eq!(o.cols().collect::<Vec<_>>(), vec![c(2), c(5)]);
    }

    #[test]
    fn concat_and_truncate() {
        let a = OrderSpec::ascending([c(1)]);
        let b = OrderSpec::ascending([c(2), c(3)]);
        let mut ab = a.concat(&b);
        assert_eq!(ab.len(), 3);
        ab.truncate(2);
        assert_eq!(ab, OrderSpec::ascending([c(1), c(2)]));
    }

    #[test]
    fn reversed_flips_every_direction() {
        let o = OrderSpec::new(vec![SortKey::asc(c(1)), SortKey::desc(c(2))]);
        let r = o.reversed();
        assert_eq!(
            r,
            OrderSpec::new(vec![SortKey::desc(c(1)), SortKey::asc(c(2))])
        );
        assert_eq!(r.reversed(), o);
    }

    #[test]
    fn map_cols_preserves_direction() {
        let o = OrderSpec::new(vec![SortKey::desc(c(1))]);
        let m = o.map_cols(|col| ColId(col.0 + 1));
        assert_eq!(m.keys()[0], SortKey::desc(c(2)));
    }

    #[test]
    fn display() {
        let o = OrderSpec::new(vec![SortKey::asc(c(1)), SortKey::desc(c(2))]);
        assert_eq!(o.to_string(), "(c1, c2 desc)");
        assert_eq!(OrderSpec::empty().to_string(), "()");
    }

    #[test]
    fn push_remove() {
        let mut o = OrderSpec::empty();
        o.push(SortKey::asc(c(1)));
        o.push(SortKey::asc(c(2)));
        assert_eq!(o.remove(0), SortKey::asc(c(1)));
        assert_eq!(o, OrderSpec::ascending([c(2)]));
    }
}
