//! [`OrderContext`]: the four fundamental operations of the paper —
//! *Reduce Order* (Fig. 2), *Test Order* (Fig. 3), *Cover Order* (Fig. 4)
//! and *Homogenize Order* (Fig. 5) — evaluated against a set of applied
//! predicates (as equivalence classes) and functional dependencies.

use crate::eqclass::EquivalenceClasses;
use crate::fd::FdSet;
use crate::spec::{OrderSpec, SortKey};
use fto_common::{ColId, ColSet};
use fto_obs::trace::emit;
use fto_obs::TraceEvent;

/// The reasoning context for order operations: the equivalence classes and
/// functional dependencies that hold on a stream.
///
/// Internally all FD reasoning happens in *head space*: every column of
/// every dependency is rewritten to its equivalence-class head, and every
/// constant-bound class contributes the empty-headed FD `{} → {head}`.
/// This makes the subset/closure tests of reduction insensitive to which
/// member of a class a specification happens to mention.
#[derive(Clone, Debug)]
pub struct OrderContext {
    eq: EquivalenceClasses,
    norm_fds: FdSet,
}

impl OrderContext {
    /// Builds a context from equivalence classes and raw FDs.
    pub fn new(eq: EquivalenceClasses, fds: &FdSet) -> OrderContext {
        let mut norm_fds = fds.map_cols(|c| eq.head(c));
        for head in eq_constant_heads(&eq) {
            norm_fds.add_constant(head);
        }
        OrderContext { eq, norm_fds }
    }

    /// A context with no knowledge: reduction only removes duplicate
    /// columns (via reflexivity).
    pub fn trivial() -> OrderContext {
        OrderContext {
            eq: EquivalenceClasses::new(),
            norm_fds: FdSet::new(),
        }
    }

    /// The context's equivalence classes.
    pub fn equivalences(&self) -> &EquivalenceClasses {
        &self.eq
    }

    /// The context's normalized (head-space) functional dependencies.
    pub fn fds(&self) -> &FdSet {
        &self.norm_fds
    }

    /// **Reduce Order** (paper Fig. 2).
    ///
    /// Rewrites the specification into canonical form:
    /// 1. substitute every column with its equivalence-class head;
    /// 2. scanning backwards, remove column `cᵢ` whenever the columns
    ///    preceding it functionally determine it — which covers columns
    ///    bound to constants (`{} → {c}`), duplicate columns
    ///    (reflexivity), and key-implied suffixes (`{key} → {all}`).
    ///
    /// The result may be empty, in which case any stream satisfies it.
    /// When a sort is unavoidable, the reduced specification is also the
    /// *minimal* list of sort columns (paper §4.2).
    pub fn reduce(&self, spec: &OrderSpec) -> OrderSpec {
        let mut reduced = spec.map_cols(|c| self.eq.head(c));
        let mut i = reduced.len();
        while i > 0 {
            i -= 1;
            let col = reduced.keys()[i].col;
            let prefix: ColSet = reduced.keys()[..i].iter().map(|k| k.col).collect();
            if self.norm_fds.determines(&prefix, col) {
                reduced.remove(i);
            }
        }
        emit(|| TraceEvent::Reduce {
            before: spec.to_string(),
            after: reduced.to_string(),
        });
        reduced
    }

    /// **Test Order** (paper Fig. 3): does order property `prop` satisfy
    /// interesting order `interest`?
    ///
    /// Both are reduced; the test succeeds when the reduced interesting
    /// order is empty or a direction-respecting prefix of the reduced
    /// property.
    pub fn test_order(&self, interest: &OrderSpec, prop: &OrderSpec) -> bool {
        let i = self.reduce(interest);
        let satisfied = i.is_empty() || i.is_prefix_of(&self.reduce(prop));
        emit(|| TraceEvent::TestOrder {
            interest: interest.to_string(),
            property: prop.to_string(),
            satisfied,
        });
        satisfied
    }

    /// Splits interesting order `interest` against order property `prop`
    /// into a *(satisfied-prefix, residual-suffix)* pair — the partial
    /// form of **Test Order**.
    ///
    /// Both specifications are reduced (so the split sees through
    /// constants, equivalences, and FD-implied columns exactly like
    /// [`OrderContext::test_order`]); the prefix is the longest common
    /// prefix of the two reduced specifications and the suffix is the
    /// rest of the reduced interest. Invariants:
    ///
    /// * `prefix.concat(&suffix) == self.reduce(interest)`;
    /// * `suffix.is_empty()` exactly when
    ///   `self.test_order(interest, prop)` holds;
    /// * every prefix of the returned prefix is itself satisfied by
    ///   `prop` (reduction is prefix-monotone), so a stream ordered by
    ///   `prop` delivers rows grouped contiguously by the prefix columns
    ///   — a sort only needs to run *within* each prefix group to
    ///   enforce the full requirement (segmented sort).
    pub fn split_requirement(
        &self,
        interest: &OrderSpec,
        prop: &OrderSpec,
    ) -> (OrderSpec, OrderSpec) {
        let ri = self.reduce(interest);
        let rp = self.reduce(prop);
        let k = ri
            .keys()
            .iter()
            .zip(rp.keys())
            .take_while(|(a, b)| a == b)
            .count();
        let prefix = OrderSpec::new(ri.keys()[..k].to_vec());
        let suffix = OrderSpec::new(ri.keys()[k..].to_vec());
        (prefix, suffix)
    }

    /// **Cover Order** (paper Fig. 4): combine two interesting orders into
    /// one specification `C` such that any order property satisfying `C`
    /// satisfies both inputs. Returns `None` when no cover exists.
    pub fn cover(&self, i1: &OrderSpec, i2: &OrderSpec) -> Option<OrderSpec> {
        let r1 = self.reduce(i1);
        let r2 = self.reduce(i2);
        let result = if r1.is_prefix_of(&r2) {
            Some(r2)
        } else if r2.is_prefix_of(&r1) {
            Some(r1)
        } else {
            None
        };
        emit(|| TraceEvent::Cover {
            i1: i1.to_string(),
            i2: i2.to_string(),
            cover: result.as_ref().map(OrderSpec::to_string),
        });
        result
    }

    /// **Homogenize Order** (paper Fig. 5): rewrite interesting order
    /// `interest` in terms of the target columns `targets`, substituting
    /// each column with an equivalent column from the target set.
    ///
    /// Unlike reduction, *any* member of the equivalence class may be
    /// chosen (the smallest available one, for determinism), and the
    /// equivalence classes here are typically the query-global ones —
    /// columns that will only become equivalent through join predicates
    /// applied later still qualify, because homogenization produces an
    /// order that must eventually satisfy `interest` (paper §4.4).
    ///
    /// Returns `None` when some column has no equivalent in the target.
    pub fn homogenize(&self, interest: &OrderSpec, targets: &ColSet) -> Option<OrderSpec> {
        let result = self.homogenize_inner(interest, targets);
        emit(|| TraceEvent::Homogenize {
            interest: interest.to_string(),
            result: result.as_ref().map(OrderSpec::to_string),
        });
        result
    }

    fn homogenize_inner(&self, interest: &OrderSpec, targets: &ColSet) -> Option<OrderSpec> {
        let reduced = self.reduce(interest);
        let mut out = OrderSpec::empty();
        for key in reduced.keys() {
            let subst = self.class_member_in(key.col, targets)?;
            out.push(SortKey {
                col: subst,
                dir: key.dir,
            });
        }
        Some(out)
    }

    /// The optimistic variant used by the order scan (paper §5.1): when
    /// full homogenization fails, the largest homogenizable *prefix* is
    /// returned, in the hope that a functional dependency discovered during
    /// planning makes the lost suffix redundant. The boolean reports
    /// whether the whole specification was homogenized.
    pub fn homogenize_prefix(&self, interest: &OrderSpec, targets: &ColSet) -> (OrderSpec, bool) {
        let reduced = self.reduce(interest);
        let mut out = OrderSpec::empty();
        let mut complete = true;
        for key in reduced.keys() {
            match self.class_member_in(key.col, targets) {
                Some(subst) => out.push(SortKey {
                    col: subst,
                    dir: key.dir,
                }),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        emit(|| TraceEvent::Homogenize {
            interest: interest.to_string(),
            result: complete.then(|| out.to_string()),
        });
        (out, complete)
    }

    /// The smallest member of `col`'s equivalence class contained in
    /// `targets`, if any.
    fn class_member_in(&self, col: ColId, targets: &ColSet) -> Option<ColId> {
        if targets.contains(col) {
            return Some(col);
        }
        self.eq
            .members(col)
            .into_iter()
            .find(|m| targets.contains(*m))
    }
}

/// Enumerates the heads of constant-bound equivalence classes.
fn eq_constant_heads(eq: &EquivalenceClasses) -> Vec<ColId> {
    // `members` only enumerates columns mentioned in merges/bindings, which
    // is exactly the set we need: untouched columns have no constants.
    let mut heads = Vec::new();
    let mut seen = ColSet::new();
    let upper = eq_universe(eq);
    for i in 0..upper {
        let c = ColId(i);
        let h = eq.head(c);
        if !seen.insert(h) {
            continue;
        }
        if eq.is_constant(h) {
            heads.push(h);
        }
    }
    heads
}

fn eq_universe(eq: &EquivalenceClasses) -> u32 {
    // The union-find only stores columns that were mentioned; probing heads
    // beyond that range returns the column itself with no constant, so a
    // generous upper bound would also be correct but wasteful. We recover
    // the exact bound through members() of column 0 being cheap; instead
    // EquivalenceClasses exposes its size via known_columns().
    eq.known_columns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::Value;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    fn cs(ids: &[u32]) -> ColSet {
        ids.iter().map(|&i| ColId(i)).collect()
    }

    fn asc(ids: &[u32]) -> OrderSpec {
        OrderSpec::ascending(ids.iter().map(|&i| ColId(i)))
    }

    /// Paper §4.1 motivating example: I = (x, y), OP = (y), predicate
    /// x = 10 applied. x is bound to a constant, so I reduces to (y) and
    /// OP satisfies it — no sort needed.
    #[test]
    fn reduce_removes_constant_bound_column() {
        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(0), Value::Int(10)); // x = 10
        let ctx = OrderContext::new(eq, &FdSet::new());
        let interest = asc(&[0, 1]); // (x, y)
        let prop = asc(&[1]); // (y)
        assert_eq!(ctx.reduce(&interest), asc(&[1]));
        assert!(ctx.test_order(&interest, &prop));
    }

    /// Paper §4.1: I = (x, z), OP = (y, z), predicate x = y applied.
    /// The equivalence class lets OP rewrite to (x, z), satisfying I.
    #[test]
    fn reduce_uses_equivalence_classes() {
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(1)); // x = y
        let ctx = OrderContext::new(eq, &FdSet::new());
        let interest = asc(&[0, 2]); // (x, z)
        let prop = asc(&[1, 2]); // (y, z)
        assert!(ctx.test_order(&interest, &prop));
        // Both reduce to head space: x is the head of {x, y}.
        assert_eq!(ctx.reduce(&prop), asc(&[0, 2]));
    }

    /// Paper §4.1: I = (x, y), OP = (x, z), x a key. Both reduce to (x).
    #[test]
    fn reduce_uses_keys_via_fds() {
        let mut fds = FdSet::new();
        fds.add_key(cs(&[0]), cs(&[0, 1, 2]));
        let ctx = OrderContext::new(EquivalenceClasses::new(), &fds);
        assert_eq!(ctx.reduce(&asc(&[0, 1])), asc(&[0]));
        assert_eq!(ctx.reduce(&asc(&[0, 2])), asc(&[0]));
        assert!(ctx.test_order(&asc(&[0, 1]), &asc(&[0, 2])));
    }

    /// Paper §4.1: an order on a constant-bound column reduces to empty,
    /// which any stream satisfies.
    #[test]
    fn reduce_to_empty() {
        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(3), Value::Int(7));
        let ctx = OrderContext::new(eq, &FdSet::new());
        assert!(ctx.reduce(&asc(&[3])).is_empty());
        assert!(ctx.test_order(&asc(&[3]), &OrderSpec::empty()));
    }

    #[test]
    fn reduce_removes_duplicates_via_reflexivity() {
        let ctx = OrderContext::trivial();
        let spec = asc(&[1, 2, 1]);
        assert_eq!(ctx.reduce(&spec), asc(&[1, 2]));
    }

    #[test]
    fn reduce_is_idempotent() {
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(4));
        eq.bind_constant(c(2), Value::Int(1));
        let mut fds = FdSet::new();
        fds.add_key(cs(&[4]), cs(&[0, 1, 2, 3, 4, 5]));
        let ctx = OrderContext::new(eq, &fds);
        let spec = asc(&[2, 4, 1, 5]);
        let once = ctx.reduce(&spec);
        assert_eq!(ctx.reduce(&once), once);
    }

    #[test]
    fn directions_survive_reduction() {
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(5));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let spec = OrderSpec::new(vec![SortKey::desc(c(5)), SortKey::asc(c(1))]);
        let reduced = ctx.reduce(&spec);
        assert_eq!(
            reduced,
            OrderSpec::new(vec![SortKey::desc(c(0)), SortKey::asc(c(1))])
        );
    }

    #[test]
    fn test_order_respects_direction() {
        let ctx = OrderContext::trivial();
        let i = OrderSpec::new(vec![SortKey::desc(c(1))]);
        let p = OrderSpec::new(vec![SortKey::asc(c(1))]);
        assert!(!ctx.test_order(&i, &p));
        assert!(ctx.test_order(&i, &i));
    }

    /// Paper §4.3: cover of (x) and (x, y) is (x, y); (y, x) and (x, y, z)
    /// have no cover — unless x = 10 is applied, after which they reduce
    /// to (y) and (y, z) with cover (y, z).
    #[test]
    fn cover_examples_from_paper() {
        let ctx = OrderContext::trivial();
        assert_eq!(ctx.cover(&asc(&[0]), &asc(&[0, 1])), Some(asc(&[0, 1])));
        assert_eq!(ctx.cover(&asc(&[0, 1]), &asc(&[0])), Some(asc(&[0, 1])));
        assert_eq!(ctx.cover(&asc(&[1, 0]), &asc(&[0, 1, 2])), None);

        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(0), Value::Int(10));
        let ctx = OrderContext::new(eq, &FdSet::new());
        assert_eq!(
            ctx.cover(&asc(&[1, 0]), &asc(&[0, 1, 2])),
            Some(asc(&[1, 2]))
        );
    }

    #[test]
    fn cover_of_identical_orders() {
        let ctx = OrderContext::trivial();
        assert_eq!(ctx.cover(&asc(&[1, 2]), &asc(&[1, 2])), Some(asc(&[1, 2])));
        assert_eq!(ctx.cover(&OrderSpec::empty(), &asc(&[1])), Some(asc(&[1])));
    }

    /// Paper §4.4: ORDER BY a.x, b.y over a join a.x = b.x. Homogenizing
    /// to b's columns yields (b.x, b.y); homogenizing to a's columns fails
    /// (b.y unavailable) — unless a.x is a key of the join result, in
    /// which case the order first reduces to (a.x).
    #[test]
    fn homogenize_example_from_paper() {
        // Columns: 0 = a.x, 1 = a.y, 2 = b.x, 3 = b.y.
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(2)); // a.x = b.x
        let ctx = OrderContext::new(eq.clone(), &FdSet::new());
        let interest = asc(&[0, 3]); // (a.x, b.y)

        let to_b = ctx.homogenize(&interest, &cs(&[2, 3])).unwrap();
        assert_eq!(to_b, asc(&[2, 3])); // (b.x, b.y)

        assert_eq!(ctx.homogenize(&interest, &cs(&[0, 1])), None);

        // With a.x a key that survives the join: {a.x} -> {b.y}.
        let mut fds = FdSet::new();
        fds.add_key(cs(&[0]), cs(&[0, 1, 2, 3]));
        let ctx = OrderContext::new(eq, &fds);
        let to_a = ctx.homogenize(&interest, &cs(&[0, 1])).unwrap();
        assert_eq!(to_a, asc(&[0]));
    }

    #[test]
    fn homogenize_prefix_returns_largest_prefix() {
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(2));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let interest = asc(&[0, 3, 1]);
        let (prefix, complete) = ctx.homogenize_prefix(&interest, &cs(&[2]));
        assert!(!complete);
        assert_eq!(prefix, asc(&[2]));
        let (full, complete) = ctx.homogenize_prefix(&asc(&[0]), &cs(&[2]));
        assert!(complete);
        assert_eq!(full, asc(&[2]));
    }

    #[test]
    fn homogenize_prefers_identity_when_available() {
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(1), c(4));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let out = ctx.homogenize(&asc(&[4]), &cs(&[1, 4])).unwrap();
        // Reduction maps to head c1 first; both are in the target, so the
        // head itself (already in targets) is chosen.
        assert_eq!(out, asc(&[1]));
    }

    #[test]
    fn homogenize_preserves_directions() {
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(2));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let interest = OrderSpec::new(vec![SortKey::desc(c(0))]);
        let out = ctx.homogenize(&interest, &cs(&[2])).unwrap();
        assert_eq!(out, OrderSpec::new(vec![SortKey::desc(c(2))]));
    }

    #[test]
    fn split_requirement_examples() {
        // Clustered index on (a) feeding ORDER BY a, b: prefix (a),
        // residual (b).
        let ctx = OrderContext::trivial();
        let (pfx, sfx) = ctx.split_requirement(&asc(&[0, 1]), &asc(&[0]));
        assert_eq!(pfx, asc(&[0]));
        assert_eq!(sfx, asc(&[1]));
        // Full satisfaction: empty suffix.
        let (pfx, sfx) = ctx.split_requirement(&asc(&[0, 1]), &asc(&[0, 1, 2]));
        assert_eq!(pfx, asc(&[0, 1]));
        assert!(sfx.is_empty());
        // No common prefix: everything is residual.
        let (pfx, sfx) = ctx.split_requirement(&asc(&[1, 0]), &asc(&[0]));
        assert!(pfx.is_empty());
        assert_eq!(sfx, asc(&[1, 0]));
        // Directions must match for the prefix to count.
        let i = OrderSpec::new(vec![SortKey::desc(c(0)), SortKey::asc(c(1))]);
        let (pfx, sfx) = ctx.split_requirement(&i, &asc(&[0]));
        assert!(pfx.is_empty());
        assert_eq!(sfx, i);
    }

    #[test]
    fn split_requirement_sees_through_the_algebra() {
        // x = 10 applied: ORDER BY x, y, z against a stream ordered by
        // (y) splits into prefix (y), suffix (z).
        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(0), Value::Int(10));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let (pfx, sfx) = ctx.split_requirement(&asc(&[0, 1, 2]), &asc(&[1]));
        assert_eq!(pfx, asc(&[1]));
        assert_eq!(sfx, asc(&[2]));

        // a = b applied: property (b, c) satisfies interest prefix (a).
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(1));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let (pfx, sfx) = ctx.split_requirement(&asc(&[0, 3]), &asc(&[1, 2]));
        assert_eq!(pfx, asc(&[0]));
        assert_eq!(sfx, asc(&[3]));
    }

    /// Property sweep: for pseudo-random contexts and specifications,
    /// `split_requirement` must round-trip (`prefix ⊕ suffix ==
    /// reduce(interest)`), agree with `test_order` on full coverage
    /// (empty suffix ⟺ satisfied), and return a prefix that is itself a
    /// satisfied requirement.
    #[test]
    fn split_requirement_round_trips() {
        fn rng(state: &mut u64) -> u32 {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*state >> 33) as u32
        }
        fn spec_of(state: &mut u64, len: u32) -> OrderSpec {
            OrderSpec::new(
                (0..len)
                    .map(|_| {
                        let col = c(rng(state) % 6);
                        if rng(state).is_multiple_of(2) {
                            SortKey::asc(col)
                        } else {
                            SortKey::desc(col)
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }
        let mut state = 0x9e3779b97f4a7c15u64;
        let s = &mut state;
        for _ in 0..500 {
            let mut eq = EquivalenceClasses::new();
            let mut fds = FdSet::new();
            for _ in 0..(rng(s) % 3) {
                eq.merge(c(rng(s) % 6), c(rng(s) % 6));
            }
            if rng(s).is_multiple_of(3) {
                eq.bind_constant(c(rng(s) % 6), Value::Int(7));
            }
            if rng(s).is_multiple_of(3) {
                fds.add(crate::fd::Fd::implies(c(rng(s) % 6), c(rng(s) % 6)));
            }
            let ctx = OrderContext::new(eq, &fds);
            let li = rng(s) % 5;
            let interest = spec_of(s, li);
            let lp = rng(s) % 5;
            let prop = spec_of(s, lp);
            let (pfx, sfx) = ctx.split_requirement(&interest, &prop);
            assert_eq!(
                pfx.concat(&sfx),
                ctx.reduce(&interest),
                "split must partition the reduced interest\n\
                 interest={interest} prop={prop}"
            );
            assert_eq!(
                sfx.is_empty(),
                ctx.test_order(&interest, &prop),
                "empty suffix must coincide with full satisfaction\n\
                 interest={interest} prop={prop}"
            );
            assert!(
                pfx.is_empty() || ctx.test_order(&pfx, &prop),
                "the returned prefix must itself be satisfied\n\
                 interest={interest} prop={prop} prefix={pfx}"
            );
        }
    }

    /// Transitive FD chains (beyond the paper's single-step test).
    #[test]
    fn reduce_uses_transitive_fds() {
        let mut fds = FdSet::new();
        fds.add(crate::fd::Fd::implies(c(0), c(1)));
        fds.add(crate::fd::Fd::implies(c(1), c(2)));
        let ctx = OrderContext::new(EquivalenceClasses::new(), &fds);
        assert_eq!(ctx.reduce(&asc(&[0, 2])), asc(&[0]));
    }

    /// FDs stated over non-head members must still apply after predicates
    /// merge the classes (normalization into head space).
    #[test]
    fn fds_normalize_into_head_space() {
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(1), c(5)); // head is c1
        let mut fds = FdSet::new();
        fds.add(crate::fd::Fd::implies(c(5), c(3))); // stated over member c5
        let ctx = OrderContext::new(eq, &fds);
        assert_eq!(ctx.reduce(&asc(&[1, 3])), asc(&[1]));
    }
}
