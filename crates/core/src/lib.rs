//! # fto-order — Fundamental Techniques for Order Optimization
//!
//! A faithful, documented implementation of the order-optimization machinery
//! from *Simmen, Shekita, Malkemus: "Fundamental Techniques for Order
//! Optimization", SIGMOD 1996* — the framework behind DB2/CS's treatment of
//! interesting orders, and the ancestor of modern "pathkeys" (PostgreSQL)
//! and "collation traits" (Calcite).
//!
//! ## The four fundamental operations (paper §4)
//!
//! | Operation | Paper figure | Entry point |
//! |---|---|---|
//! | Reduce Order | Fig. 2 | [`OrderContext::reduce`] |
//! | Test Order | Fig. 3 | [`OrderContext::test_order`] |
//! | Cover Order | Fig. 4 | [`OrderContext::cover`] |
//! | Homogenize Order | Fig. 5 | [`OrderContext::homogenize`] |
//!
//! All four hinge on *reduction*: rewriting an order specification into a
//! canonical form by substituting each column with its equivalence-class
//! head and deleting columns that are functionally determined by the
//! columns before them.
//!
//! ## Data properties (paper §5.2.1)
//!
//! [`StreamProps`] maintains the four properties the paper tracks per plan
//! stream — order, applied predicates, keys, and functional dependencies —
//! together with their propagation rules through filters, projections,
//! joins, and group-by.
//!
//! ## Degrees of freedom (paper §7)
//!
//! Order-based GROUP BY and DISTINCT do not dictate one exact order:
//! grouping columns may be permuted and each may be ascending or
//! descending. [`FlexOrder`] captures those degrees of freedom in a single
//! generalized interesting order, exactly as the production implementation
//! the paper describes.
//!
//! ## Example: the paper's §4.1 walk-through
//!
//! ```
//! use fto_common::{ColId, ColSet, Value};
//! use fto_order::{EquivalenceClasses, FdSet, OrderContext, OrderSpec};
//!
//! let (x, y, z) = (ColId(0), ColId(1), ColId(2));
//!
//! // Applied predicates: x = 10 (a constant) and x = y (an equivalence).
//! let mut eq = EquivalenceClasses::new();
//! eq.bind_constant(x, Value::Int(10));
//! eq.merge(x, y);
//!
//! // z is a key: {z} -> {x, y, z}.
//! let mut fds = FdSet::new();
//! fds.add_key(ColSet::singleton(z), ColSet::from_cols([x, y, z]));
//!
//! let ctx = OrderContext::new(eq, &fds);
//!
//! // ORDER BY x, z, y reduces to (z): x is bound to a constant, and the
//! // key FD makes everything after z redundant.
//! let interesting = OrderSpec::ascending([x, z, y]);
//! assert_eq!(ctx.reduce(&interesting), OrderSpec::ascending([z]));
//!
//! // A stream ordered by (z) therefore needs no sort at all.
//! assert!(ctx.test_order(&interesting, &OrderSpec::ascending([z])));
//! ```

#![deny(missing_docs)]

pub mod context;
pub mod eqclass;
pub mod fd;
pub mod freedom;
pub mod keyprop;
pub mod props;
pub mod spec;

pub use context::OrderContext;
pub use eqclass::EquivalenceClasses;
pub use fd::{Fd, FdSet};
pub use freedom::{FlexColumn, FlexOrder};
pub use keyprop::KeyProperty;
pub use props::StreamProps;
pub use spec::{OrderSpec, SortKey};
