//! Generalized interesting orders with *degrees of freedom* (paper §7).
//!
//! Order-based GROUP BY and DISTINCT do not dictate one exact order: the
//! grouping columns may appear in any permutation, and each may be
//! ascending or descending. The paper's example — `GROUP BY x, y` with
//! `sum(distinct z)` — is satisfied by `(x, y, z)` or `(y, x, z)` with any
//! of the 2³ direction choices: sixteen concrete orders in total.
//!
//! Rather than enumerating them, the production implementation keeps one
//! *general* interesting order recording which columns are permutable and
//! which directions are free. [`FlexOrder`] is that representation: an
//! ordered list of *segments*, each a set of mutually permutable
//! [`FlexColumn`]s. Satisfaction is tested greedily against a concrete
//! order property, consuming one segment at a time.

use crate::context::OrderContext;
use crate::spec::{OrderSpec, SortKey};
use fto_common::{ColId, ColSet, Direction};
use std::fmt;

/// One column of a generalized order, with its direction freedom.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FlexColumn {
    /// The column.
    pub col: ColId,
    /// `None` when either direction is acceptable; `Some(d)` when pinned.
    pub dir: Option<Direction>,
}

impl FlexColumn {
    /// A column with free direction.
    pub fn free(col: ColId) -> FlexColumn {
        FlexColumn { col, dir: None }
    }

    /// A column pinned to a direction.
    pub fn pinned(col: ColId, dir: Direction) -> FlexColumn {
        FlexColumn {
            col,
            dir: Some(dir),
        }
    }

    fn admits(&self, key: &SortKey, ctx: &OrderContext) -> bool {
        ctx.equivalences().same_class(self.col, key.col) && self.dir.is_none_or(|d| d == key.dir)
    }
}

/// A generalized interesting order: a sequence of segments whose columns
/// are permutable within the segment but not across segments.
///
/// * GROUP BY x, y ⇒ one segment `{x, y}`, directions free.
/// * GROUP BY x, y with `sum(distinct z)` ⇒ segments `[{x, y}, {z}]`
///   (z must come after all grouping columns, but may be asc or desc).
/// * ORDER BY x, y ⇒ two single-column segments with pinned directions —
///   i.e. a plain [`OrderSpec`] embeds exactly.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FlexOrder {
    segments: Vec<Vec<FlexColumn>>,
}

impl FlexOrder {
    /// The empty generalized order (satisfied by anything).
    pub fn empty() -> FlexOrder {
        FlexOrder::default()
    }

    /// Builds a generalized order from segments.
    pub fn new(segments: Vec<Vec<FlexColumn>>) -> FlexOrder {
        FlexOrder {
            segments: segments.into_iter().filter(|s| !s.is_empty()).collect(),
        }
    }

    /// The GROUP BY shape: one permutable, direction-free segment over the
    /// grouping columns, followed by one segment per DISTINCT aggregate
    /// argument.
    pub fn group_by(
        grouping: impl IntoIterator<Item = ColId>,
        distinct_args: impl IntoIterator<Item = ColId>,
    ) -> FlexOrder {
        let mut segments = Vec::new();
        let g: Vec<FlexColumn> = grouping.into_iter().map(FlexColumn::free).collect();
        if !g.is_empty() {
            segments.push(g);
        }
        for arg in distinct_args {
            segments.push(vec![FlexColumn::free(arg)]);
        }
        FlexOrder { segments }
    }

    /// Embeds an exact order specification (every column pinned, one per
    /// segment).
    pub fn exact(spec: &OrderSpec) -> FlexOrder {
        FlexOrder {
            segments: spec
                .keys()
                .iter()
                .map(|k| vec![FlexColumn::pinned(k.col, k.dir)])
                .collect(),
        }
    }

    /// The segments.
    pub fn segments(&self) -> &[Vec<FlexColumn>] {
        &self.segments
    }

    /// All columns mentioned.
    pub fn col_set(&self) -> ColSet {
        self.segments.iter().flatten().map(|fc| fc.col).collect()
    }

    /// True when no columns remain.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The number of concrete orders this generalized order admits
    /// (permutations × direction choices per segment). The paper's §7
    /// example yields sixteen.
    pub fn concrete_order_count(&self) -> u128 {
        self.segments
            .iter()
            .map(|seg| {
                let perms: u128 = (1..=seg.len() as u128).product();
                let dirs: u128 = seg
                    .iter()
                    .map(|fc| if fc.dir.is_none() { 2u128 } else { 1 })
                    .product();
                perms * dirs
            })
            .product()
    }

    /// Reduces the generalized order under a context: each column is
    /// rewritten to its class head; columns functionally determined by
    /// *all* columns of earlier segments plus the other columns of their
    /// own segment are removed (any satisfying concrete order necessarily
    /// places those before it).
    pub fn reduce(&self, ctx: &OrderContext) -> FlexOrder {
        let mut out: Vec<Vec<FlexColumn>> = Vec::new();
        let mut earlier = ColSet::new();
        for seg in &self.segments {
            let mut new_seg: Vec<FlexColumn> = Vec::new();
            // Head-rewrite and dedupe within the segment.
            for fc in seg {
                let head = ctx.equivalences().head(fc.col);
                if new_seg.iter().any(|e| e.col == head) {
                    continue;
                }
                new_seg.push(FlexColumn {
                    col: head,
                    dir: fc.dir,
                });
            }
            // Remove columns determined by earlier segments + the rest of
            // this segment.
            let mut i = 0;
            while i < new_seg.len() {
                let mut rest = earlier.clone();
                for (j, other) in new_seg.iter().enumerate() {
                    if j != i {
                        rest.insert(other.col);
                    }
                }
                if ctx.fds().determines(&rest, new_seg[i].col) {
                    new_seg.remove(i);
                } else {
                    i += 1;
                }
            }
            for fc in &new_seg {
                earlier.insert(fc.col);
            }
            if !new_seg.is_empty() {
                out.push(new_seg);
            }
        }
        FlexOrder { segments: out }
    }

    /// **Generalized Test Order**: does the concrete order property `prop`
    /// satisfy this generalized order under `ctx`?
    ///
    /// The test walks the reduced property greedily: each segment must be
    /// matched by the next `|segment|` property columns, in any
    /// permutation, with compatible directions. A property column that is
    /// functionally determined by the columns of the segments processed so
    /// far (including the current one) cannot split a group — rows equal
    /// on those columns are equal on it too — so it is skipped rather than
    /// failing the match (e.g. with the FD `{x} → {y}`, the property
    /// `(y, x)` satisfies GROUP BY x).
    pub fn satisfied_by(&self, prop: &OrderSpec, ctx: &OrderContext) -> bool {
        let reduced_self = self.reduce(ctx);
        if reduced_self.is_empty() {
            return true;
        }
        let prop = ctx.reduce(prop);
        let mut pos = 0usize;
        let mut determinants = ColSet::new();
        let mut consumed = ColSet::new();
        for seg in &reduced_self.segments {
            for fc in seg {
                determinants.insert(fc.col);
            }
            let mut remaining: Vec<&FlexColumn> = seg.iter().collect();
            loop {
                // Discharge direction-free flex columns the consumed
                // property columns already determine: rows equal on the
                // flex columns are equal on the consumed columns
                // (skip-rule invariant), so they share one property
                // tie-run, within which such a column is constant — it
                // cannot split a group. A pinned direction is an *order*
                // requirement, not mere adjacency, and is never
                // dischargeable.
                remaining
                    .retain(|fc| !(fc.dir.is_none() && ctx.fds().determines(&consumed, fc.col)));
                if remaining.is_empty() {
                    break;
                }
                let Some(key) = prop.keys().get(pos) else {
                    return false;
                };
                match remaining.iter().position(|fc| fc.admits(key, ctx)) {
                    Some(idx) => {
                        remaining.swap_remove(idx);
                        consumed.insert(key.col);
                        pos += 1;
                    }
                    None => {
                        // A property key that collides with a *pinned*
                        // remaining column has the wrong direction: the
                        // column can never be matched later (reduction
                        // removed repeats), so fail now.
                        let direction_conflict = remaining.iter().any(|fc| {
                            fc.dir.is_some() && ctx.equivalences().same_class(fc.col, key.col)
                        });
                        if !direction_conflict && ctx.fds().determines(&determinants, key.col) {
                            // Constant within each group: harmless
                            // interleaver.
                            consumed.insert(key.col);
                            pos += 1;
                        } else {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// A concrete order satisfying this generalized order that extends the
    /// stream's existing (reduced) order property as far as possible — the
    /// order the planner asks a sort to produce. Columns already implied
    /// keep the property's choice; the rest are pinned ascending in
    /// segment order.
    pub fn concretize(&self, prop: &OrderSpec, ctx: &OrderContext) -> OrderSpec {
        let reduced = self.reduce(ctx);
        let prop = ctx.reduce(prop);
        let mut out = OrderSpec::empty();
        let mut pos = 0usize;
        let mut determinants = ColSet::new();
        let mut diverged = false;
        for seg in &reduced.segments {
            for fc in seg {
                determinants.insert(fc.col);
            }
            let mut remaining: Vec<&FlexColumn> = seg.iter().collect();
            // Follow the property while it keeps matching this segment;
            // interleaved property columns that the grouping columns
            // determine may be emitted too (they cannot split groups),
            // which is how ORDER BY y combines with GROUP BY x under
            // {x} → {y}.
            while !remaining.is_empty() {
                let key = if diverged { None } else { prop.keys().get(pos) };
                match key {
                    Some(key) => {
                        if let Some(idx) = remaining.iter().position(|fc| fc.admits(key, ctx)) {
                            remaining.swap_remove(idx);
                            out.push(*key);
                            pos += 1;
                        } else if ctx.fds().determines(&determinants, key.col) {
                            out.push(*key);
                            pos += 1;
                        } else {
                            diverged = true;
                        }
                    }
                    None => {
                        // Property exhausted or diverged: pin the rest.
                        diverged = true;
                        for fc in remaining.drain(..) {
                            out.push(SortKey {
                                col: fc.col,
                                dir: fc.dir.unwrap_or(Direction::Asc),
                            });
                        }
                    }
                }
            }
        }
        ctx.reduce(&out)
    }
}

impl fmt::Display for FlexOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str("{")?;
            for (j, fc) in seg.iter().enumerate() {
                if j > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{}", fc.col)?;
                match fc.dir {
                    None => f.write_str("*")?,
                    Some(Direction::Desc) => f.write_str(" desc")?,
                    Some(Direction::Asc) => {}
                }
            }
            f.write_str("}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqclass::EquivalenceClasses;
    use crate::fd::FdSet;
    use fto_common::Value;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    fn asc(ids: &[u32]) -> OrderSpec {
        OrderSpec::ascending(ids.iter().map(|&i| ColId(i)))
    }

    /// Paper §7: GROUP BY x, y with sum(distinct z) admits sixteen orders.
    #[test]
    fn sixteen_orders_for_paper_example() {
        let flex = FlexOrder::group_by([c(0), c(1)], [c(2)]);
        assert_eq!(flex.concrete_order_count(), 16);
    }

    #[test]
    fn satisfaction_accepts_any_permutation_and_direction() {
        let ctx = OrderContext::trivial();
        let flex = FlexOrder::group_by([c(0), c(1)], [c(2)]);
        // (x, y, z)
        assert!(flex.satisfied_by(&asc(&[0, 1, 2]), &ctx));
        // (y, x, z)
        assert!(flex.satisfied_by(&asc(&[1, 0, 2]), &ctx));
        // (y desc, x, z desc)
        let prop = OrderSpec::new(vec![
            SortKey::desc(c(1)),
            SortKey::asc(c(0)),
            SortKey::desc(c(2)),
        ]);
        assert!(flex.satisfied_by(&prop, &ctx));
        // z may not come before the grouping columns.
        assert!(!flex.satisfied_by(&asc(&[2, 0, 1]), &ctx));
        // Missing a column fails.
        assert!(!flex.satisfied_by(&asc(&[0, 1]), &ctx));
        // A longer property is fine.
        assert!(flex.satisfied_by(&asc(&[0, 1, 2, 9]), &ctx));
    }

    #[test]
    fn pinned_directions_are_enforced() {
        let ctx = OrderContext::trivial();
        let flex = FlexOrder::new(vec![vec![
            FlexColumn::pinned(c(0), Direction::Desc),
            FlexColumn::free(c(1)),
        ]]);
        let good = OrderSpec::new(vec![SortKey::asc(c(1)), SortKey::desc(c(0))]);
        assert!(flex.satisfied_by(&good, &ctx));
        let bad = OrderSpec::new(vec![SortKey::asc(c(1)), SortKey::asc(c(0))]);
        assert!(!flex.satisfied_by(&bad, &ctx));
    }

    #[test]
    fn exact_embedding_matches_test_order() {
        let ctx = OrderContext::trivial();
        let spec = OrderSpec::new(vec![SortKey::asc(c(0)), SortKey::desc(c(1))]);
        let flex = FlexOrder::exact(&spec);
        assert_eq!(flex.concrete_order_count(), 1);
        assert!(flex.satisfied_by(&spec, &ctx));
        assert!(!flex.satisfied_by(&asc(&[0, 1]), &ctx));
    }

    #[test]
    fn reduction_removes_constants_and_duplicates() {
        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(0), Value::Int(1));
        eq.merge(c(1), c(3));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let flex = FlexOrder::group_by([c(0), c(1), c(3)], []);
        let reduced = flex.reduce(&ctx);
        // c0 constant → dropped; c1 and c3 same class → one column.
        assert_eq!(reduced.segments().len(), 1);
        assert_eq!(reduced.segments()[0].len(), 1);
        assert_eq!(reduced.segments()[0][0].col, c(1));
        // Satisfied by ordering on c3 alone (equivalent to c1).
        assert!(flex.satisfied_by(&asc(&[3]), &ctx));
    }

    #[test]
    fn empty_after_reduction_is_always_satisfied() {
        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(0), Value::Int(1));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let flex = FlexOrder::group_by([c(0)], []);
        assert!(flex.satisfied_by(&OrderSpec::empty(), &ctx));
    }

    #[test]
    fn grouping_on_key_reduces_to_key() {
        // GROUP BY pk, a, b where pk is a key: satisfied by order on pk.
        let mut fds = FdSet::new();
        fds.add_key(
            ColSet::singleton(c(0)),
            ColSet::from_cols([c(0), c(1), c(2)]),
        );
        let ctx = OrderContext::new(EquivalenceClasses::new(), &fds);
        let flex = FlexOrder::group_by([c(0), c(1), c(2)], []);
        assert!(flex.satisfied_by(&asc(&[0]), &ctx));
        let reduced = flex.reduce(&ctx);
        assert_eq!(reduced.col_set(), ColSet::singleton(c(0)));
    }

    #[test]
    fn concretize_follows_existing_property() {
        let ctx = OrderContext::trivial();
        let flex = FlexOrder::group_by([c(0), c(1)], []);
        // Stream already ordered by (1 desc): keep that, append 0.
        let prop = OrderSpec::new(vec![SortKey::desc(c(1))]);
        let sort = flex.concretize(&prop, &ctx);
        assert_eq!(
            sort,
            OrderSpec::new(vec![SortKey::desc(c(1)), SortKey::asc(c(0))])
        );
        assert!(flex.satisfied_by(&sort, &ctx));
    }

    #[test]
    fn concretize_with_no_property_pins_ascending() {
        let ctx = OrderContext::trivial();
        let flex = FlexOrder::group_by([c(1), c(0)], [c(2)]);
        let sort = flex.concretize(&OrderSpec::empty(), &ctx);
        assert!(flex.satisfied_by(&sort, &ctx));
        assert_eq!(sort.len(), 3);
    }

    #[test]
    fn concretize_diverging_property_still_satisfies() {
        let ctx = OrderContext::trivial();
        let flex = FlexOrder::new(vec![
            vec![FlexColumn::free(c(0))],
            vec![FlexColumn::free(c(1))],
        ]);
        // Property starts with an unrelated column: ignore it.
        let prop = asc(&[9, 0, 1]);
        let sort = flex.concretize(&prop, &ctx);
        assert!(flex.satisfied_by(&sort, &ctx));
    }

    #[test]
    fn display() {
        let flex = FlexOrder::group_by([c(0), c(1)], [c(2)]);
        assert_eq!(flex.to_string(), "({c0* c1*}, {c2*})");
        let pinned = FlexOrder::exact(&OrderSpec::new(vec![SortKey::desc(c(3))]));
        assert_eq!(pinned.to_string(), "({c3 desc})");
    }

    #[test]
    fn count_with_multi_column_segment() {
        // 3 free columns in one segment: 3! * 2^3 = 48.
        let flex = FlexOrder::group_by([c(0), c(1), c(2)], []);
        assert_eq!(flex.concrete_order_count(), 48);
        assert_eq!(FlexOrder::empty().concrete_order_count(), 1);
    }
}
