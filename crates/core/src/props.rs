//! [`StreamProps`]: the per-stream data properties the paper tracks
//! (§5.2.1) — order, applied predicates, keys, and functional dependencies
//! — together with their propagation through relational operators.
//!
//! Each operator in a plan determines the properties of its output stream
//! from the properties of its inputs and the operation applied (paper §3).
//! The planner calls the methods here operator by operator as it builds
//! plans bottom-up.

use crate::context::OrderContext;
use crate::eqclass::EquivalenceClasses;
use crate::fd::FdSet;
use crate::keyprop::KeyProperty;
use crate::spec::OrderSpec;
use fto_common::{ColId, ColSet};
use fto_expr::{PredClass, PredId, Predicate};

/// The data properties of one plan stream.
#[derive(Clone, Debug)]
pub struct StreamProps {
    /// Columns available in the stream.
    pub cols: ColSet,
    /// The order property: what the stream is physically ordered by
    /// (always originating from an index scan or a sort, paper §3).
    pub order: OrderSpec,
    /// The predicate property: ids of predicates already applied, sorted.
    pub preds: Vec<PredId>,
    /// The key property (uniqueness facts, incl. the one-record condition).
    pub keys: KeyProperty,
    /// The functional-dependency property.
    pub fds: FdSet,
    /// Column equivalences induced by the applied predicates.
    pub eq: EquivalenceClasses,
}

impl StreamProps {
    /// Properties of a base-table access: the table's columns, its keys
    /// (each contributing the FD `key → all columns`), no applied
    /// predicates, and no order (scans add an order separately via
    /// [`StreamProps::with_order`]).
    pub fn base_table(cols: ColSet, keys: Vec<ColSet>) -> StreamProps {
        let mut fds = FdSet::new();
        for k in &keys {
            fds.add_key(k.clone(), cols.clone());
        }
        StreamProps {
            cols,
            order: OrderSpec::empty(),
            preds: Vec::new(),
            keys: KeyProperty::from_keys(keys),
            fds,
            eq: EquivalenceClasses::new(),
        }
    }

    /// The reasoning context for this stream's order operations.
    pub fn ctx(&self) -> OrderContext {
        OrderContext::new(self.eq.clone(), &self.fds)
    }

    /// Returns the stream with an order property installed (index scans
    /// and sorts). The order is stored *reduced*, which both canonicalizes
    /// comparisons between plans and — for sorts — yields the minimal list
    /// of sort columns (paper §4.2).
    pub fn with_order(mut self, order: OrderSpec) -> StreamProps {
        self.order = self.ctx().reduce(&order);
        self
    }

    /// Applies a predicate to the stream: records it in the predicate
    /// property, feeds equivalence classes and FDs per the paper's §4.1
    /// mapping, and re-canonicalizes the key property (which may surface
    /// the one-record condition).
    pub fn apply_predicate(&mut self, id: PredId, pred: &Predicate) {
        match self.preds.binary_search(&id) {
            Ok(_) => return, // already applied
            Err(pos) => self.preds.insert(pos, id),
        }
        match pred.classify() {
            PredClass::ColEqConst(col, v) => {
                self.eq.bind_constant(col, v);
                self.fds.add_constant(col);
            }
            PredClass::ColEqCol(a, b) => {
                self.eq.merge(a, b);
                self.fds.add_equivalence(a, b);
            }
            PredClass::Opaque => {}
        }
        let ctx = self.ctx();
        self.keys.canonicalize(&ctx);
        // The physical order of rows is unchanged by filtering; keep the
        // order property but re-reduce it, since new constants may have
        // shortened it.
        self.order = ctx.reduce(&self.order);
    }

    /// Properties after projecting the stream down to `keep`.
    ///
    /// * The order property survives up to the first sort column with no
    ///   retained equivalent (the context may substitute an equivalent
    ///   retained column, so `SELECT b.x ... WHERE a.x = b.x` keeps an
    ///   order on `a.x`).
    /// * Keys containing projected-away columns are dropped (paper
    ///   §5.2.1).
    /// * FDs and equivalences are retained in full: they remain true
    ///   statements about the visible columns and may mention invisible
    ///   ones harmlessly.
    pub fn project(&self, keep: &ColSet) -> StreamProps {
        let ctx = self.ctx();
        let cols = self.cols.intersection(keep);
        let (order, _complete) = ctx.homogenize_prefix(&self.order, &cols);
        StreamProps {
            cols,
            order,
            preds: self.preds.clone(),
            keys: self.keys.project(keep),
            fds: self.fds.clone(),
            eq: self.eq.clone(),
        }
    }

    /// Properties after sorting the stream by `spec` (which the sort
    /// reduces to its minimal column list). Everything else passes through
    /// unchanged (paper §3: "a sort operator passes on all the properties
    /// of its input stream unchanged except for the order property").
    pub fn sorted(&self, spec: &OrderSpec) -> StreamProps {
        let mut out = self.clone();
        out.order = self.ctx().reduce(spec);
        out
    }

    /// Combines the properties of two join inputs, *before* the join's own
    /// predicates are applied:
    ///
    /// * available columns are the union;
    /// * applied predicates are the union (the inputs applied disjoint
    ///   sets);
    /// * FDs and equivalences are unioned;
    /// * the key property is computed by [`KeyProperty::join`] from the
    ///   equi-join pairs in `equates`;
    /// * the order property is `outer_order` — the caller passes the order
    ///   the join method actually preserves (the outer stream's order for
    ///   nested-loop and merge joins, or empty).
    ///
    /// The caller then applies the join predicates through
    /// [`StreamProps::apply_predicate`], which merges the equivalence
    /// classes and re-canonicalizes keys.
    pub fn join(
        left: &StreamProps,
        right: &StreamProps,
        equates: &[(ColId, ColId)],
        outer_order: OrderSpec,
    ) -> StreamProps {
        let mut preds = left.preds.clone();
        for p in &right.preds {
            if let Err(pos) = preds.binary_search(p) {
                preds.insert(pos, *p);
            }
        }
        let mut fds = left.fds.clone();
        fds.absorb(&right.fds);
        let mut eq = left.eq.clone();
        eq.absorb(&right.eq);
        let keys = KeyProperty::join(&left.keys, &right.keys, equates);
        let mut out = StreamProps {
            cols: left.cols.union(&right.cols),
            order: OrderSpec::empty(),
            preds,
            keys,
            fds,
            eq,
        };
        out.order = out.ctx().reduce(&outer_order);
        out
    }

    /// Records an outer-join ON predicate (paper §4.1): the predicate id
    /// joins the predicate property, and an equality `x = y` contributes
    /// only the one-directional FD `{x} → {y}` for `x` on the preserved
    /// side — never an equivalence class or a constant binding, because
    /// null-padded rows violate both.
    pub fn apply_outer_join_predicate(&mut self, id: PredId, pred: &Predicate, preserved: &ColSet) {
        match self.preds.binary_search(&id) {
            Ok(_) => return,
            Err(pos) => self.preds.insert(pos, id),
        }
        if let PredClass::ColEqCol(a, b) = pred.classify() {
            if preserved.contains(a) {
                self.fds.add(crate::fd::Fd::implies(a, b));
            } else if preserved.contains(b) {
                self.fds.add(crate::fd::Fd::implies(b, a));
            }
        }
        let ctx = self.ctx();
        self.keys.canonicalize(&ctx);
        self.order = ctx.reduce(&self.order);
    }

    /// Properties after a GROUP BY on `grouping` producing aggregate
    /// output columns `agg_cols`.
    ///
    /// * The grouping columns become a key of the output.
    /// * The FD `{grouping} → {aggregates}` holds (paper §4.1).
    /// * For order-based (streaming) group-by the input order survives on
    ///   the grouping columns; the caller passes `input_order` for a
    ///   streaming group-by or `OrderSpec::empty()` for a hash group-by.
    pub fn group_by(
        &self,
        grouping: &ColSet,
        agg_cols: &ColSet,
        input_order: OrderSpec,
    ) -> StreamProps {
        let cols = grouping.union(agg_cols);
        let mut fds = self.fds.clone();
        if !agg_cols.is_empty() {
            fds.add_key(grouping.clone(), cols.clone());
        }
        let mut keys = self.keys.clone().project(&cols);
        keys.add_key(grouping.clone());
        let mut out = StreamProps {
            cols,
            order: OrderSpec::empty(),
            preds: self.preds.clone(),
            keys,
            fds,
            eq: self.eq.clone(),
        };
        let ctx = out.ctx();
        out.keys.canonicalize(&ctx);
        let (order, _) = ctx.homogenize_prefix(&input_order, &out.cols);
        out.order = order;
        out
    }

    /// Properties after DISTINCT: every output column together forms a key.
    pub fn distinct(&self) -> StreamProps {
        let mut out = self.clone();
        out.keys.add_key(self.cols.clone());
        out.keys.canonicalize(&out.ctx());
        out
    }

    /// Plan-comparison dominance for pruning (paper §5.2.1): `self` is at
    /// least as good as `other` on the property dimensions when
    ///
    /// * `self`'s order property satisfies `other`'s (reduced prefix), and
    /// * `self` has applied every predicate `other` has, and
    /// * every key of `other` is implied by some key of `self`.
    ///
    /// Two plans with mutually incomparable properties must both be kept.
    pub fn dominates(&self, other: &StreamProps) -> bool {
        self.dominates_under(other, &self.ctx())
    }

    /// [`StreamProps::dominates`] with an explicit reasoning context —
    /// pass [`OrderContext::trivial`] to compare orders verbatim (the
    /// paper's "order optimization disabled" baseline).
    pub fn dominates_under(&self, other: &StreamProps, ctx: &OrderContext) -> bool {
        if !ctx.test_order(&other.order, &self.order) {
            return false;
        }
        if !other
            .preds
            .iter()
            .all(|p| self.preds.binary_search(p).is_ok())
        {
            return false;
        }
        other
            .keys
            .keys()
            .iter()
            .all(|ok| self.keys.keys().iter().any(|sk| sk.is_subset(ok)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::Value;
    use fto_expr::Expr;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    fn cs(ids: &[u32]) -> ColSet {
        ids.iter().map(|&i| ColId(i)).collect()
    }

    fn asc(ids: &[u32]) -> OrderSpec {
        OrderSpec::ascending(ids.iter().map(|&i| ColId(i)))
    }

    fn base() -> StreamProps {
        // Table with columns 0..4, key {0}.
        StreamProps::base_table(cs(&[0, 1, 2, 3]), vec![cs(&[0])])
    }

    #[test]
    fn base_table_key_fd() {
        let p = base();
        assert!(p.fds.determines(&cs(&[0]), c(3)));
        assert!(p.keys.determined_by(&cs(&[0])));
        assert!(p.order.is_empty());
        assert!(p.preds.is_empty());
    }

    #[test]
    fn with_order_reduces() {
        // Key {0}: an index order (0, 1) stores as (0).
        let p = base().with_order(asc(&[0, 1]));
        assert_eq!(p.order, asc(&[0]));
    }

    #[test]
    fn apply_constant_predicate_shortens_order() {
        let mut p = base().with_order(asc(&[1, 2]));
        p.apply_predicate(PredId(0), &Predicate::col_eq_const(c(1), Value::Int(5)));
        assert_eq!(p.order, asc(&[2]));
        assert_eq!(p.preds, vec![PredId(0)]);
        assert!(p.eq.is_constant(c(1)));
    }

    #[test]
    fn apply_predicate_is_idempotent() {
        let mut p = base();
        let pred = Predicate::col_eq_col(c(1), c(2));
        p.apply_predicate(PredId(3), &pred);
        p.apply_predicate(PredId(3), &pred);
        assert_eq!(p.preds, vec![PredId(3)]);
        assert!(p.eq.same_class(c(1), c(2)));
    }

    #[test]
    fn constant_on_key_gives_one_record() {
        let mut p = base();
        p.apply_predicate(PredId(0), &Predicate::col_eq_const(c(0), Value::Int(9)));
        assert!(p.keys.is_one_record());
    }

    #[test]
    fn project_keeps_order_through_equivalents() {
        // Order on column 1; 1 = 2 applied; project away 1 but keep 2.
        let mut p = StreamProps::base_table(cs(&[1, 2, 3]), vec![]);
        p = p.with_order(asc(&[1]));
        p.apply_predicate(PredId(0), &Predicate::col_eq_col(c(1), c(2)));
        let projected = p.project(&cs(&[2, 3]));
        assert_eq!(projected.order, asc(&[2]));
        assert_eq!(projected.cols, cs(&[2, 3]));
    }

    #[test]
    fn project_truncates_order_at_lost_column() {
        let p = StreamProps::base_table(cs(&[1, 2, 3]), vec![]).with_order(asc(&[1, 2, 3]));
        let projected = p.project(&cs(&[1, 3]));
        assert_eq!(projected.order, asc(&[1]));
    }

    #[test]
    fn project_drops_keys() {
        let p = StreamProps::base_table(cs(&[0, 1]), vec![cs(&[0])]);
        let projected = p.project(&cs(&[1]));
        assert!(projected.keys.is_empty());
    }

    #[test]
    fn sorted_replaces_order_only() {
        let mut p = base();
        p.apply_predicate(PredId(0), &Predicate::col_eq_col(c(1), c(2)));
        let s = p.sorted(&asc(&[2, 1, 3]));
        // 1 = 2 merges: (2,1,3) reduces to (1,3) in head space.
        assert_eq!(s.order, asc(&[1, 3]));
        assert_eq!(s.preds, p.preds);
    }

    #[test]
    fn join_combines_properties() {
        // Left: cols 0..2, key {0}; right: cols 10..12, key {10}.
        let left = StreamProps::base_table(cs(&[0, 1, 2]), vec![cs(&[0])]).with_order(asc(&[1]));
        let right = StreamProps::base_table(cs(&[10, 11]), vec![cs(&[10])]);
        // join predicate: 1 = 10 (n-to-1: right key fully qualified).
        let mut joined = StreamProps::join(&left, &right, &[(c(1), c(10))], left.order.clone());
        joined.apply_predicate(PredId(5), &Predicate::col_eq_col(c(1), c(10)));
        assert_eq!(joined.cols, cs(&[0, 1, 2, 10, 11]));
        // n-to-1: left key {0} propagates.
        assert!(joined.keys.determined_by(&cs(&[0])));
        // Order on the outer is preserved.
        assert_eq!(joined.order, asc(&[1]));
        // Equivalence 1 = 10 holds downstream.
        assert!(joined.eq.same_class(c(1), c(10)));
        // Key FD from the right side flows through: {10} -> {11}.
        assert!(joined.fds.determines(&cs(&[10]), c(11)));
        // And via equivalence, {1} -> {11}.
        assert!(joined.ctx().fds().determines(&cs(&[1]), c(11)));
    }

    #[test]
    fn group_by_props() {
        let p = base().with_order(asc(&[1, 2]));
        let out = p.group_by(&cs(&[1, 2]), &cs(&[7]), asc(&[1, 2]));
        assert_eq!(out.cols, cs(&[1, 2, 7]));
        assert!(out.keys.determined_by(&cs(&[1, 2])));
        assert!(out.fds.determines(&cs(&[1, 2]), c(7)));
        assert_eq!(out.order, asc(&[1, 2]));
    }

    #[test]
    fn hash_group_by_has_no_order() {
        let p = base().with_order(asc(&[1]));
        let out = p.group_by(&cs(&[1]), &cs(&[7]), OrderSpec::empty());
        assert!(out.order.is_empty());
    }

    #[test]
    fn distinct_makes_all_columns_a_key() {
        let p = StreamProps::base_table(cs(&[1, 2]), vec![]);
        let d = p.distinct();
        assert!(d.keys.determined_by(&cs(&[1, 2])));
        assert!(!d.keys.determined_by(&cs(&[1])));
    }

    #[test]
    fn dominance() {
        let unordered = base();
        let ordered = base().with_order(asc(&[1]));
        // An ordered stream dominates an unordered one (other things equal)
        assert!(ordered.dominates(&unordered));
        assert!(!unordered.dominates(&ordered));
        // More predicates applied dominates fewer.
        let mut filtered = base();
        filtered.apply_predicate(PredId(0), &Predicate::eq(Expr::col(c(2)), Expr::int(5)));
        assert!(filtered.dominates(&base()));
        assert!(!base().dominates(&filtered));
        // Incomparable: one has an order (on c1), the other a predicate
        // (on the unrelated c2).
        assert!(!ordered.dominates(&filtered));
        assert!(!filtered.dominates(&ordered));
        // But a predicate binding the *order* column to a constant makes
        // that order trivial: the filtered plan then dominates.
        let mut binds_order_col = base();
        binds_order_col.apply_predicate(PredId(1), &Predicate::eq(Expr::col(c(1)), Expr::int(5)));
        assert!(binds_order_col.dominates(&ordered));
    }

    #[test]
    fn dominance_on_keys() {
        let strong = StreamProps::base_table(cs(&[0, 1]), vec![cs(&[0])]);
        let weak = StreamProps::base_table(cs(&[0, 1]), vec![]);
        assert!(strong.dominates(&weak));
        assert!(!weak.dominates(&strong));
    }
}
