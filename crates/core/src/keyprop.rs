//! The key property of a stream and its propagation rules (paper §5.2.1).
//!
//! A *key* here is a set of columns whose values are unique within the
//! stream. The paper's *one-record condition* — "at most one record is in
//! the stream" — is represented as the **empty key**: zero columns suffice
//! to identify a record exactly when there is at most one. This single
//! representation makes all the paper's rules compositional:
//!
//! * a key that becomes fully qualified by equality predicates reduces to
//!   the empty key, flagging the one-record condition;
//! * the empty key trivially subsumes every other key during redundant-key
//!   removal;
//! * an n-to-1 join test ("some key of the inner is fully qualified by the
//!   join predicates") is trivially passed by a one-record inner.

use crate::context::OrderContext;
use fto_common::{ColId, ColSet};
use std::fmt;

/// The key property: a set of keys, canonicalized and minimal.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct KeyProperty {
    keys: Vec<ColSet>,
}

impl KeyProperty {
    /// No known keys.
    pub fn none() -> KeyProperty {
        KeyProperty::default()
    }

    /// Builds a property from keys.
    pub fn from_keys(keys: impl Into<Vec<ColSet>>) -> KeyProperty {
        let mut kp = KeyProperty { keys: keys.into() };
        kp.remove_redundant();
        kp
    }

    /// The one-record property.
    pub fn one_record() -> KeyProperty {
        KeyProperty {
            keys: vec![ColSet::new()],
        }
    }

    /// The keys currently known.
    pub fn keys(&self) -> &[ColSet] {
        &self.keys
    }

    /// True when no key is known.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// True when the stream is known to hold at most one record.
    pub fn is_one_record(&self) -> bool {
        self.keys.iter().any(|k| k.is_empty())
    }

    /// Adds a key and re-minimizes.
    pub fn add_key(&mut self, key: ColSet) {
        self.keys.push(key);
        self.remove_redundant();
    }

    /// True when `cols` is (a superset of) some known key — i.e. `cols`
    /// values identify records.
    pub fn determined_by(&self, cols: &ColSet) -> bool {
        self.keys.iter().any(|k| k.is_subset(cols))
    }

    /// Canonicalizes each key against the context (paper §5.2.1):
    /// rewrite columns to their equivalence-class heads, then drop any
    /// column functionally determined by the key's remaining columns
    /// (constant-bound columns are the common case). A key emptied by this
    /// process flags the one-record condition. Finally redundant keys are
    /// removed using the `<=` dominance of key sets (a subset key makes a
    /// superset key redundant).
    pub fn canonicalize(&mut self, ctx: &OrderContext) {
        for key in &mut self.keys {
            let mut k: ColSet = key.iter().map(|c| ctx.equivalences().head(c)).collect();
            loop {
                let mut removed = false;
                let members: Vec<ColId> = k.iter().collect();
                for col in members {
                    let mut rest = k.clone();
                    rest.remove(col);
                    if ctx.fds().determines(&rest, col) {
                        k = rest;
                        removed = true;
                        break;
                    }
                }
                if !removed {
                    break;
                }
            }
            *key = k;
        }
        self.remove_redundant();
    }

    /// Keys whose columns survive a projection to `available`.
    pub fn project(&self, available: &ColSet) -> KeyProperty {
        KeyProperty {
            keys: self
                .keys
                .iter()
                .filter(|k| k.is_subset(available))
                .cloned()
                .collect(),
        }
    }

    /// Key propagation through a join (paper §5.2.1).
    ///
    /// * If every column of some key of the **right** input is equated by
    ///   join predicates to columns of the left input, each left row
    ///   matches at most one right row (the join is n-to-1) and the left
    ///   keys propagate.
    /// * Symmetrically, a fully qualified left key makes the join 1-to-n
    ///   and the right keys propagate.
    /// * When neither holds, the concatenated key pairs `K₁ ∪ K₂` form the
    ///   join's key property.
    ///
    /// `equates` lists the equi-join column pairs `(left_col, right_col)`.
    pub fn join(
        left: &KeyProperty,
        right: &KeyProperty,
        equates: &[(ColId, ColId)],
    ) -> KeyProperty {
        let left_equated: ColSet = equates.iter().map(|&(l, _)| l).collect();
        let right_equated: ColSet = equates.iter().map(|&(_, r)| r).collect();

        let n_to_1 = right.keys.iter().any(|k| k.is_subset(&right_equated));
        let one_to_n = left.keys.iter().any(|k| k.is_subset(&left_equated));

        let mut keys = Vec::new();
        if n_to_1 {
            keys.extend(left.keys.iter().cloned());
        }
        if one_to_n {
            keys.extend(right.keys.iter().cloned());
        }
        if !n_to_1 && !one_to_n {
            for k1 in &left.keys {
                for k2 in &right.keys {
                    keys.push(k1.union(k2));
                }
            }
        }
        let mut kp = KeyProperty { keys };
        kp.remove_redundant();
        kp
    }

    fn remove_redundant(&mut self) {
        let mut minimal: Vec<ColSet> = Vec::with_capacity(self.keys.len());
        // Sort by size so subset keys are considered first.
        let mut keys = std::mem::take(&mut self.keys);
        keys.sort_by_key(|k| k.len());
        for k in keys {
            if !minimal.iter().any(|m| m.is_subset(&k)) {
                minimal.push(k);
            }
        }
        self.keys = minimal;
    }
}

impl fmt::Debug for KeyProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one_record() {
            return f.write_str("KeyProperty[one-record]");
        }
        f.write_str("KeyProperty[")?;
        for (i, k) in self.keys.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{k:?}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqclass::EquivalenceClasses;
    use crate::fd::FdSet;
    use fto_common::Value;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    fn cs(ids: &[u32]) -> ColSet {
        ids.iter().map(|&i| ColId(i)).collect()
    }

    #[test]
    fn redundant_keys_removed() {
        let kp = KeyProperty::from_keys(vec![cs(&[0, 1]), cs(&[0]), cs(&[0, 2])]);
        assert_eq!(kp.keys(), &[cs(&[0])]);
    }

    #[test]
    fn duplicate_keys_removed() {
        let kp = KeyProperty::from_keys(vec![cs(&[1, 2]), cs(&[2, 1])]);
        assert_eq!(kp.keys().len(), 1);
    }

    #[test]
    fn one_record_is_empty_key() {
        let kp = KeyProperty::one_record();
        assert!(kp.is_one_record());
        assert!(kp.determined_by(&ColSet::new()));
        // The empty key subsumes everything.
        let kp = KeyProperty::from_keys(vec![cs(&[1]), ColSet::new()]);
        assert_eq!(kp.keys().len(), 1);
        assert!(kp.is_one_record());
    }

    #[test]
    fn determined_by() {
        let kp = KeyProperty::from_keys(vec![cs(&[1, 2])]);
        assert!(kp.determined_by(&cs(&[1, 2, 3])));
        assert!(!kp.determined_by(&cs(&[1])));
        assert!(!KeyProperty::none().determined_by(&cs(&[1])));
    }

    #[test]
    fn canonicalize_rewrites_heads_and_drops_constants() {
        // Key {x, y} with y = 10 applied: y is constant, key becomes {x}.
        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(1), Value::Int(10));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let mut kp = KeyProperty::from_keys(vec![cs(&[0, 1])]);
        kp.canonicalize(&ctx);
        assert_eq!(kp.keys(), &[cs(&[0])]);
    }

    #[test]
    fn canonicalize_detects_one_record() {
        // Key {x} with x = 5: fully qualified, at most one record.
        let mut eq = EquivalenceClasses::new();
        eq.bind_constant(c(0), Value::Int(5));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let mut kp = KeyProperty::from_keys(vec![cs(&[0])]);
        kp.canonicalize(&ctx);
        assert!(kp.is_one_record());
    }

    #[test]
    fn canonicalize_merges_equivalent_columns() {
        // Key {x, y} with x = y: rewrites to {x} (head).
        let mut eq = EquivalenceClasses::new();
        eq.merge(c(0), c(1));
        let ctx = OrderContext::new(eq, &FdSet::new());
        let mut kp = KeyProperty::from_keys(vec![cs(&[0, 1])]);
        kp.canonicalize(&ctx);
        assert_eq!(kp.keys(), &[cs(&[0])]);
    }

    #[test]
    fn project_drops_keys_with_lost_columns() {
        let kp = KeyProperty::from_keys(vec![cs(&[0, 5]), cs(&[1, 2])]);
        let p = kp.project(&cs(&[1, 2, 3]));
        assert_eq!(p.keys(), &[cs(&[1, 2])]);
        let none = kp.project(&cs(&[9]));
        assert!(none.is_empty());
    }

    #[test]
    fn n_to_1_join_propagates_left_keys() {
        // left key {0}; right key {10}; join predicate l.5 = r.10 fully
        // qualifies the right key, so the join is n-to-1.
        let left = KeyProperty::from_keys(vec![cs(&[0])]);
        let right = KeyProperty::from_keys(vec![cs(&[10])]);
        let joined = KeyProperty::join(&left, &right, &[(c(5), c(10))]);
        assert_eq!(joined.keys(), &[cs(&[0])]);
    }

    #[test]
    fn one_to_n_join_propagates_right_keys() {
        let left = KeyProperty::from_keys(vec![cs(&[0])]);
        let right = KeyProperty::from_keys(vec![cs(&[10])]);
        let joined = KeyProperty::join(&left, &right, &[(c(0), c(11))]);
        assert_eq!(joined.keys(), &[cs(&[10])]);
    }

    #[test]
    fn one_to_one_join_propagates_both() {
        let left = KeyProperty::from_keys(vec![cs(&[0])]);
        let right = KeyProperty::from_keys(vec![cs(&[10])]);
        let joined = KeyProperty::join(&left, &right, &[(c(0), c(10))]);
        assert_eq!(joined.keys().len(), 2);
        assert!(joined.determined_by(&cs(&[0])));
        assert!(joined.determined_by(&cs(&[10])));
    }

    #[test]
    fn m_to_n_join_concatenates_keys() {
        let left = KeyProperty::from_keys(vec![cs(&[0]), cs(&[1])]);
        let right = KeyProperty::from_keys(vec![cs(&[10])]);
        let joined = KeyProperty::join(&left, &right, &[(c(2), c(11))]);
        assert_eq!(joined.keys().len(), 2);
        assert!(joined.determined_by(&cs(&[0, 10])));
        assert!(joined.determined_by(&cs(&[1, 10])));
        assert!(!joined.determined_by(&cs(&[0])));
    }

    #[test]
    fn join_with_one_record_inner_is_n_to_1() {
        let left = KeyProperty::from_keys(vec![cs(&[0])]);
        let right = KeyProperty::one_record();
        // No equates needed: the empty key is trivially fully qualified.
        let joined = KeyProperty::join(&left, &right, &[]);
        assert_eq!(joined.keys(), &[cs(&[0])]);
    }

    #[test]
    fn join_with_no_keys_yields_no_keys() {
        let joined = KeyProperty::join(&KeyProperty::none(), &KeyProperty::none(), &[]);
        assert!(joined.is_empty());
        let left = KeyProperty::from_keys(vec![cs(&[0])]);
        let joined = KeyProperty::join(&left, &KeyProperty::none(), &[]);
        assert!(joined.is_empty());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(
            format!("{:?}", KeyProperty::one_record()),
            "KeyProperty[one-record]"
        );
        let kp = KeyProperty::from_keys(vec![cs(&[1])]);
        assert!(format!("{kp:?}").contains("c1"));
    }
}
