//! Property-based laws of the functional-dependency algebra and the key
//! property.

use fto_common::{ColId, ColSet};
use fto_order::{EquivalenceClasses, Fd, FdSet, KeyProperty, OrderContext};
use proptest::prelude::*;

const NCOLS: u32 = 8;

fn colset() -> impl Strategy<Value = ColSet> {
    proptest::collection::btree_set(0u32..NCOLS, 0..4)
        .prop_map(|s| s.into_iter().map(ColId).collect())
}

fn fdset() -> impl Strategy<Value = FdSet> {
    proptest::collection::vec((colset(), colset()), 0..8).prop_map(|fds| {
        let mut set = FdSet::new();
        for (head, tail) in fds {
            set.add(Fd::new(head, tail));
        }
        set
    })
}

proptest! {
    /// Closure is extensive, monotone, and idempotent (a closure
    /// operator in the lattice-theoretic sense).
    #[test]
    fn closure_is_a_closure_operator(fds in fdset(), a in colset(), b in colset()) {
        let ca = fds.closure(&a);
        // extensive
        prop_assert!(a.is_subset(&ca));
        // idempotent
        prop_assert_eq!(fds.closure(&ca).clone(), ca.clone());
        // monotone
        if a.is_subset(&b) {
            prop_assert!(ca.is_subset(&fds.closure(&b)));
        }
    }

    /// Every stored FD is honoured by the closure.
    #[test]
    fn closure_honours_stored_fds(fds in fdset()) {
        for fd in fds.iter() {
            prop_assert!(fds.determines_all(&fd.head, &fd.tail));
        }
    }

    /// `determines` agrees with closure membership, and adding FDs never
    /// removes derivations.
    #[test]
    fn adding_fds_is_monotone(
        fds in fdset(),
        extra_head in colset(),
        extra_tail in colset(),
        probe in colset(),
        col in 0u32..NCOLS,
    ) {
        let col = ColId(col);
        let before = fds.determines(&probe, col);
        let mut bigger = fds.clone();
        bigger.add(Fd::new(extra_head, extra_tail));
        if before {
            prop_assert!(bigger.determines(&probe, col));
        }
    }

    /// map_cols through an injective rename preserves derivations.
    #[test]
    fn rename_preserves_derivations(fds in fdset(), probe in colset(), col in 0u32..NCOLS) {
        let col = ColId(col);
        let shift = |c: ColId| ColId(c.0 + 100);
        let renamed = fds.map_cols(shift);
        let probe_renamed: ColSet = probe.iter().map(shift).collect();
        prop_assert_eq!(
            fds.determines(&probe, col),
            renamed.determines(&probe_renamed, shift(col))
        );
    }

    /// Key-property minimization: no kept key is a superset of another,
    /// and `determined_by` is preserved by minimization.
    #[test]
    fn key_property_is_minimal(keys in proptest::collection::vec(colset(), 0..6), probe in colset()) {
        let kp = KeyProperty::from_keys(keys.clone());
        for (i, a) in kp.keys().iter().enumerate() {
            for (j, b) in kp.keys().iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset(b), "{a:?} subsumes {b:?}");
                }
            }
        }
        // Anything determined by the raw keys is determined by the
        // minimized property.
        let raw_hit = keys.iter().any(|k| k.is_subset(&probe));
        prop_assert_eq!(kp.determined_by(&probe), raw_hit);
    }

    /// Canonicalization never weakens the property: anything determined
    /// before is determined after (under closure reasoning).
    #[test]
    fn canonicalize_never_weakens(keys in proptest::collection::vec(colset(), 0..5), fds in fdset()) {
        let ctx = OrderContext::new(EquivalenceClasses::new(), &fds);
        let mut kp = KeyProperty::from_keys(keys.clone());
        kp.canonicalize(&ctx);
        for k in keys {
            // The original key (closed under the FDs) must still be
            // recognized as determining records.
            let closed = fds.closure(&k);
            prop_assert!(
                kp.is_empty() || kp.determined_by(&closed),
                "lost key {k:?}; kp = {kp:?}"
            );
        }
    }

    /// Join propagation returns only keys derivable from the inputs'
    /// columns (no invented columns).
    #[test]
    fn join_keys_use_input_columns(
        lk in proptest::collection::vec(colset(), 0..3),
        rk in proptest::collection::vec(colset(), 0..3),
    ) {
        let left = KeyProperty::from_keys(lk.clone());
        let right = KeyProperty::from_keys(rk.clone());
        let mut universe = ColSet::new();
        for k in lk.iter().chain(rk.iter()) {
            universe.union_with(k);
        }
        let joined = KeyProperty::join(&left, &right, &[]);
        for k in joined.keys() {
            prop_assert!(k.is_subset(&universe));
        }
    }
}
