//! Randomized laws of the functional-dependency algebra and the key
//! property, generated deterministically with the in-repo PRNG.

use fto_common::{ColId, ColSet, Rng};
use fto_order::{EquivalenceClasses, Fd, FdSet, KeyProperty, OrderContext};

const NCOLS: u32 = 8;
const CASES: u64 = 400;

fn colset(rng: &mut Rng) -> ColSet {
    let n = rng.range_usize(0, 4);
    let mut s = ColSet::new();
    for _ in 0..n {
        s.insert(ColId(rng.range_i64(0, NCOLS as i64) as u32));
    }
    s
}

fn fdset(rng: &mut Rng) -> FdSet {
    let n = rng.range_usize(0, 8);
    let mut set = FdSet::new();
    for _ in 0..n {
        let head = colset(rng);
        let tail = colset(rng);
        set.add(Fd::new(head, tail));
    }
    set
}

fn keys(rng: &mut Rng, max: usize) -> Vec<ColSet> {
    let n = rng.range_usize(0, max);
    (0..n).map(|_| colset(rng)).collect()
}

/// Closure is extensive, monotone, and idempotent (a closure operator in
/// the lattice-theoretic sense).
#[test]
fn closure_is_a_closure_operator() {
    let mut rng = Rng::new(0xFD_01);
    for case in 0..CASES {
        let fds = fdset(&mut rng);
        let a = colset(&mut rng);
        let b = colset(&mut rng);
        let ca = fds.closure(&a);
        // extensive
        assert!(a.is_subset(&ca), "case {case}");
        // idempotent
        assert_eq!(fds.closure(&ca).clone(), ca.clone(), "case {case}");
        // monotone
        if a.is_subset(&b) {
            assert!(ca.is_subset(&fds.closure(&b)), "case {case}");
        }
    }
}

/// Every stored FD is honoured by the closure.
#[test]
fn closure_honours_stored_fds() {
    let mut rng = Rng::new(0xFD_02);
    for case in 0..CASES {
        let fds = fdset(&mut rng);
        for fd in fds.iter() {
            assert!(fds.determines_all(&fd.head, &fd.tail), "case {case}");
        }
    }
}

/// `determines` agrees with closure membership, and adding FDs never
/// removes derivations.
#[test]
fn adding_fds_is_monotone() {
    let mut rng = Rng::new(0xFD_03);
    for case in 0..CASES {
        let fds = fdset(&mut rng);
        let extra_head = colset(&mut rng);
        let extra_tail = colset(&mut rng);
        let probe = colset(&mut rng);
        let col = ColId(rng.range_i64(0, NCOLS as i64) as u32);
        let before = fds.determines(&probe, col);
        let mut bigger = fds.clone();
        bigger.add(Fd::new(extra_head, extra_tail));
        if before {
            assert!(bigger.determines(&probe, col), "case {case}");
        }
    }
}

/// map_cols through an injective rename preserves derivations.
#[test]
fn rename_preserves_derivations() {
    let mut rng = Rng::new(0xFD_04);
    for case in 0..CASES {
        let fds = fdset(&mut rng);
        let probe = colset(&mut rng);
        let col = ColId(rng.range_i64(0, NCOLS as i64) as u32);
        let shift = |c: ColId| ColId(c.0 + 100);
        let renamed = fds.map_cols(shift);
        let probe_renamed: ColSet = probe.iter().map(shift).collect();
        assert_eq!(
            fds.determines(&probe, col),
            renamed.determines(&probe_renamed, shift(col)),
            "case {case}"
        );
    }
}

/// Key-property minimization: no kept key is a superset of another, and
/// `determined_by` is preserved by minimization.
#[test]
fn key_property_is_minimal() {
    let mut rng = Rng::new(0xFD_05);
    for case in 0..CASES {
        let ks = keys(&mut rng, 6);
        let probe = colset(&mut rng);
        let kp = KeyProperty::from_keys(ks.clone());
        for (i, a) in kp.keys().iter().enumerate() {
            for (j, b) in kp.keys().iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b), "case {case}: {a:?} subsumes {b:?}");
                }
            }
        }
        // Anything determined by the raw keys is determined by the
        // minimized property.
        let raw_hit = ks.iter().any(|k| k.is_subset(&probe));
        assert_eq!(kp.determined_by(&probe), raw_hit, "case {case}");
    }
}

/// Canonicalization never weakens the property: anything determined
/// before is determined after (under closure reasoning).
#[test]
fn canonicalize_never_weakens() {
    let mut rng = Rng::new(0xFD_06);
    for case in 0..CASES {
        let ks = keys(&mut rng, 5);
        let fds = fdset(&mut rng);
        let ctx = OrderContext::new(EquivalenceClasses::new(), &fds);
        let mut kp = KeyProperty::from_keys(ks.clone());
        kp.canonicalize(&ctx);
        for k in ks {
            // The original key (closed under the FDs) must still be
            // recognized as determining records.
            let closed = fds.closure(&k);
            assert!(
                kp.is_empty() || kp.determined_by(&closed),
                "case {case}: lost key {k:?}; kp = {kp:?}"
            );
        }
    }
}

/// Join propagation returns only keys derivable from the inputs' columns
/// (no invented columns).
#[test]
fn join_keys_use_input_columns() {
    let mut rng = Rng::new(0xFD_07);
    for case in 0..CASES {
        let lk = keys(&mut rng, 3);
        let rk = keys(&mut rng, 3);
        let left = KeyProperty::from_keys(lk.clone());
        let right = KeyProperty::from_keys(rk.clone());
        let mut universe = ColSet::new();
        for k in lk.iter().chain(rk.iter()) {
            universe.union_with(k);
        }
        let joined = KeyProperty::join(&left, &right, &[]);
        for k in joined.keys() {
            assert!(k.is_subset(&universe), "case {case}");
        }
    }
}
