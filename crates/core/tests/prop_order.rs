//! Property-based soundness tests for the fundamental operations.
//!
//! Strategy: generate a random *world* — a table whose columns are built
//! so that a known set of facts (constants, column equivalences,
//! functional dependencies, keys) holds **by construction** — then check
//! that every conclusion the order machinery draws from those facts is
//! true of the actual data:
//!
//! * sorting by `reduce(I)` really orders the data by `I`;
//! * `test_order(I, OP)` ⟹ data sorted by `OP` is ordered by `I`;
//! * `cover(I1, I2) = C` ⟹ data sorted by `C` is ordered by both;
//! * `homogenize(I, T) = H` ⟹ data sorted by `H` is ordered by `I`;
//! * `FlexOrder::satisfied_by(P)` ⟹ groups are contiguous under `P`.

use fto_common::{ColId, ColSet, Direction, Value};
use fto_order::{EquivalenceClasses, FdSet, FlexOrder, OrderContext, OrderSpec, SortKey};
use proptest::prelude::*;
use std::cmp::Ordering;

const NCOLS: usize = 6;

/// How each column's values are produced (indices may only look left, so
/// generation is single-pass).
#[derive(Clone, Debug)]
enum ColSpec {
    /// Independent small random values (provided by the value matrix).
    Free,
    /// Identical to an earlier column: yields an equivalence class.
    EqCol(usize),
    /// A constant: yields `{} → {col}`.
    Const(i64),
    /// A deterministic function of an earlier column: yields `{j} → {i}`.
    FnOf(usize),
    /// A row counter (unique): yields the key `{i}`.
    RowId,
}

fn col_spec(i: usize) -> impl Strategy<Value = ColSpec> {
    if i == 0 {
        prop_oneof![
            3 => Just(ColSpec::Free),
            1 => (0i64..3).prop_map(ColSpec::Const),
            1 => Just(ColSpec::RowId),
        ]
        .boxed()
    } else {
        prop_oneof![
            3 => Just(ColSpec::Free),
            1 => (0..i).prop_map(ColSpec::EqCol),
            1 => (0i64..3).prop_map(ColSpec::Const),
            1 => (0..i).prop_map(ColSpec::FnOf),
            1 => Just(ColSpec::RowId),
        ]
        .boxed()
    }
}

#[derive(Clone, Debug)]
struct World {
    rows: Vec<Vec<i64>>,
    ctx: OrderContext,
}

fn world() -> impl Strategy<Value = World> {
    let specs = (0..NCOLS).map(col_spec).collect::<Vec<_>>();
    let free_values = proptest::collection::vec(proptest::collection::vec(0i64..4, NCOLS), 0..40);
    (specs, free_values).prop_map(|(specs, free)| {
        let mut rows: Vec<Vec<i64>> = Vec::with_capacity(free.len());
        for (rid, seed) in free.iter().enumerate() {
            let mut row = vec![0i64; NCOLS];
            for (i, spec) in specs.iter().enumerate() {
                row[i] = match spec {
                    ColSpec::Free => seed[i],
                    ColSpec::EqCol(j) => row[*j],
                    ColSpec::Const(v) => *v,
                    ColSpec::FnOf(j) => row[*j] * 7 + 1,
                    ColSpec::RowId => rid as i64,
                };
            }
            rows.push(row);
        }
        // Facts that hold by construction.
        let mut eq = EquivalenceClasses::new();
        let mut fds = FdSet::new();
        let all: ColSet = (0..NCOLS as u32).map(ColId).collect();
        for (i, spec) in specs.iter().enumerate() {
            match spec {
                ColSpec::Free => {}
                ColSpec::EqCol(j) => {
                    eq.merge(ColId(i as u32), ColId(*j as u32));
                    fds.add_equivalence(ColId(i as u32), ColId(*j as u32));
                }
                ColSpec::Const(v) => {
                    eq.bind_constant(ColId(i as u32), Value::Int(*v));
                    fds.add_constant(ColId(i as u32));
                }
                ColSpec::FnOf(j) => fds.add(fto_order::Fd::new(
                    ColSet::singleton(ColId(*j as u32)),
                    ColSet::singleton(ColId(i as u32)),
                )),
                ColSpec::RowId => fds.add_key(ColSet::singleton(ColId(i as u32)), all.clone()),
            }
        }
        World {
            rows,
            ctx: OrderContext::new(eq, &fds),
        }
    })
}

fn spec_strategy() -> impl Strategy<Value = OrderSpec> {
    proptest::collection::vec((0u32..NCOLS as u32, any::<bool>()), 0..5).prop_map(|keys| {
        keys.into_iter()
            .map(|(c, desc)| SortKey {
                col: ColId(c),
                dir: if desc {
                    Direction::Desc
                } else {
                    Direction::Asc
                },
            })
            .collect()
    })
}

fn cmp_by_spec(a: &[i64], b: &[i64], spec: &OrderSpec) -> Ordering {
    for k in spec.keys() {
        let ord = k.dir.apply(a[k.col.index()].cmp(&b[k.col.index()]));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn sorted_by(rows: &[Vec<i64>], spec: &OrderSpec) -> Vec<Vec<i64>> {
    let mut rows = rows.to_vec();
    rows.sort_by(|a, b| cmp_by_spec(a, b, spec));
    rows
}

fn is_ordered_by(rows: &[Vec<i64>], spec: &OrderSpec) -> bool {
    rows.windows(2)
        .all(|w| cmp_by_spec(&w[0], &w[1], spec) != Ordering::Greater)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sorting by the reduced specification orders the data by the full
    /// specification (the correctness claim of Fig. 2).
    #[test]
    fn reduce_is_sound(w in world(), spec in spec_strategy()) {
        let reduced = w.ctx.reduce(&spec);
        let rows = sorted_by(&w.rows, &reduced);
        prop_assert!(is_ordered_by(&rows, &spec),
            "reduce({spec}) = {reduced} lost ordering");
    }

    /// Reduction is idempotent and never grows the specification.
    #[test]
    fn reduce_is_idempotent_and_shrinking(w in world(), spec in spec_strategy()) {
        let once = w.ctx.reduce(&spec);
        prop_assert!(once.len() <= spec.len());
        prop_assert_eq!(w.ctx.reduce(&once), once);
    }

    /// Test Order is sound: a stream sorted by the order property really
    /// is ordered by the interesting order (Fig. 3).
    #[test]
    fn test_order_is_sound(w in world(), interest in spec_strategy(), prop in spec_strategy()) {
        if w.ctx.test_order(&interest, &prop) {
            let rows = sorted_by(&w.rows, &prop);
            prop_assert!(is_ordered_by(&rows, &interest),
                "test_order said {prop} satisfies {interest}");
        }
    }

    /// Test Order is reflexive and closed under reduction.
    #[test]
    fn test_order_reflexive(w in world(), spec in spec_strategy()) {
        prop_assert!(w.ctx.test_order(&spec, &spec));
        prop_assert!(w.ctx.test_order(&spec, &w.ctx.reduce(&spec)));
    }

    /// Cover Order is sound: one sort satisfies both inputs (Fig. 4).
    #[test]
    fn cover_is_sound(w in world(), i1 in spec_strategy(), i2 in spec_strategy()) {
        if let Some(cover) = w.ctx.cover(&i1, &i2) {
            prop_assert!(w.ctx.test_order(&i1, &cover));
            prop_assert!(w.ctx.test_order(&i2, &cover));
            let rows = sorted_by(&w.rows, &cover);
            prop_assert!(is_ordered_by(&rows, &i1));
            prop_assert!(is_ordered_by(&rows, &i2));
        }
    }

    /// Cover is symmetric in satisfiability.
    #[test]
    fn cover_is_symmetric(w in world(), i1 in spec_strategy(), i2 in spec_strategy()) {
        let a = w.ctx.cover(&i1, &i2);
        let b = w.ctx.cover(&i2, &i1);
        prop_assert_eq!(a.is_some(), b.is_some());
    }

    /// Homogenize Order is sound: the homogenized order still delivers
    /// the original interesting order once the (already applied here)
    /// equivalences hold (Fig. 5).
    #[test]
    fn homogenize_is_sound(
        w in world(),
        interest in spec_strategy(),
        targets in proptest::collection::btree_set(0u32..NCOLS as u32, 1..NCOLS),
    ) {
        let target_set: ColSet = targets.into_iter().map(ColId).collect();
        if let Some(h) = w.ctx.homogenize(&interest, &target_set) {
            prop_assert!(h.col_set().is_subset(&target_set));
            let rows = sorted_by(&w.rows, &h);
            prop_assert!(is_ordered_by(&rows, &interest),
                "homogenize({interest}) = {h} lost ordering");
        }
    }

    /// The generalized GROUP BY order test is sound: when satisfied,
    /// sorting by the property makes every group (rows equal on all flex
    /// columns) contiguous (§7).
    #[test]
    fn flex_satisfaction_is_sound(
        w in world(),
        grouping in proptest::collection::btree_set(0u32..NCOLS as u32, 1..4),
        prop in spec_strategy(),
    ) {
        let cols: Vec<ColId> = grouping.into_iter().map(ColId).collect();
        let flex = FlexOrder::group_by(cols.iter().copied(), []);
        if flex.satisfied_by(&prop, &w.ctx) {
            let rows = sorted_by(&w.rows, &prop);
            // Groups must be contiguous: once a group key is left, it
            // never reappears.
            let key = |r: &Vec<i64>| -> Vec<i64> {
                cols.iter().map(|c| r[c.index()]).collect()
            };
            let mut seen: Vec<Vec<i64>> = Vec::new();
            for r in &rows {
                let k = key(r);
                match seen.last() {
                    Some(last) if *last == k => {}
                    _ => {
                        prop_assert!(!seen.contains(&k),
                            "group {k:?} split under {prop}");
                        seen.push(k);
                    }
                }
            }
        }
    }

    /// The flex concretization always satisfies its own requirement and
    /// extends the supplied property when it claimed to.
    #[test]
    fn flex_concretize_satisfies(
        w in world(),
        grouping in proptest::collection::btree_set(0u32..NCOLS as u32, 1..4),
        prop in spec_strategy(),
    ) {
        let cols: Vec<ColId> = grouping.into_iter().map(ColId).collect();
        let flex = FlexOrder::group_by(cols.iter().copied(), []);
        let sort = flex.concretize(&prop, &w.ctx);
        prop_assert!(flex.satisfied_by(&sort, &w.ctx),
            "concretize({prop}) = {sort} does not satisfy {flex}");
    }

    /// Reduced specifications mention only equivalence-class heads and
    /// contain no duplicate columns.
    #[test]
    fn reduce_yields_canonical_form(w in world(), spec in spec_strategy()) {
        let reduced = w.ctx.reduce(&spec);
        let mut seen = ColSet::new();
        for k in reduced.keys() {
            prop_assert_eq!(w.ctx.equivalences().head(k.col), k.col);
            prop_assert!(seen.insert(k.col), "duplicate {} in {}", k.col, reduced);
        }
    }
}
