//! Randomized soundness tests for the fundamental operations.
//!
//! Strategy: generate a random *world* — a table whose columns are built
//! so that a known set of facts (constants, column equivalences,
//! functional dependencies, keys) holds **by construction** — then check
//! that every conclusion the order machinery draws from those facts is
//! true of the actual data:
//!
//! * sorting by `reduce(I)` really orders the data by `I`;
//! * `test_order(I, OP)` ⟹ data sorted by `OP` is ordered by `I`;
//! * `cover(I1, I2) = C` ⟹ data sorted by `C` is ordered by both;
//! * `homogenize(I, T) = H` ⟹ data sorted by `H` is ordered by `I`;
//! * `FlexOrder::satisfied_by(P)` ⟹ groups are contiguous under `P`.
//!
//! Cases are generated from a fixed seed with the in-repo PRNG, so every
//! failure is reproducible from the printed case number.

use fto_common::{ColId, ColSet, Direction, Rng, Value};
use fto_order::{EquivalenceClasses, FdSet, FlexOrder, OrderContext, OrderSpec, SortKey};
use std::cmp::Ordering;

const NCOLS: usize = 6;
const CASES: u64 = 400;

/// How each column's values are produced (indices may only look left, so
/// generation is single-pass).
#[derive(Clone, Debug)]
enum ColSpec {
    /// Independent small random values.
    Free,
    /// Identical to an earlier column: yields an equivalence class.
    EqCol(usize),
    /// A constant: yields `{} → {col}`.
    Const(i64),
    /// A deterministic function of an earlier column: yields `{j} → {i}`.
    FnOf(usize),
    /// A row counter (unique): yields the key `{i}`.
    RowId,
}

fn col_spec(rng: &mut Rng, i: usize) -> ColSpec {
    let roll = rng.range_usize(0, if i == 0 { 5 } else { 7 });
    match roll {
        0..=2 => ColSpec::Free,
        3 => ColSpec::Const(rng.range_i64(0, 3)),
        4 => ColSpec::RowId,
        5 => ColSpec::EqCol(rng.range_usize(0, i)),
        _ => ColSpec::FnOf(rng.range_usize(0, i)),
    }
}

#[derive(Clone, Debug)]
struct World {
    rows: Vec<Vec<i64>>,
    ctx: OrderContext,
}

fn world(rng: &mut Rng) -> World {
    let specs: Vec<ColSpec> = (0..NCOLS).map(|i| col_spec(rng, i)).collect();
    let n_rows = rng.range_usize(0, 40);
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(n_rows);
    for rid in 0..n_rows {
        let mut row = vec![0i64; NCOLS];
        for (i, spec) in specs.iter().enumerate() {
            row[i] = match spec {
                ColSpec::Free => rng.range_i64(0, 4),
                ColSpec::EqCol(j) => row[*j],
                ColSpec::Const(v) => *v,
                ColSpec::FnOf(j) => row[*j] * 7 + 1,
                ColSpec::RowId => rid as i64,
            };
        }
        rows.push(row);
    }
    // Facts that hold by construction.
    let mut eq = EquivalenceClasses::new();
    let mut fds = FdSet::new();
    let all: ColSet = (0..NCOLS as u32).map(ColId).collect();
    for (i, spec) in specs.iter().enumerate() {
        match spec {
            ColSpec::Free => {}
            ColSpec::EqCol(j) => {
                eq.merge(ColId(i as u32), ColId(*j as u32));
                fds.add_equivalence(ColId(i as u32), ColId(*j as u32));
            }
            ColSpec::Const(v) => {
                eq.bind_constant(ColId(i as u32), Value::Int(*v));
                fds.add_constant(ColId(i as u32));
            }
            ColSpec::FnOf(j) => fds.add(fto_order::Fd::new(
                ColSet::singleton(ColId(*j as u32)),
                ColSet::singleton(ColId(i as u32)),
            )),
            ColSpec::RowId => fds.add_key(ColSet::singleton(ColId(i as u32)), all.clone()),
        }
    }
    World {
        rows,
        ctx: OrderContext::new(eq, &fds),
    }
}

fn spec_strategy(rng: &mut Rng) -> OrderSpec {
    let n = rng.range_usize(0, 5);
    (0..n)
        .map(|_| SortKey {
            col: ColId(rng.range_i64(0, NCOLS as i64) as u32),
            dir: if rng.bool() {
                Direction::Desc
            } else {
                Direction::Asc
            },
        })
        .collect()
}

fn random_colset(rng: &mut Rng, min: usize, max: usize) -> ColSet {
    let n = rng.range_usize(min, max);
    let mut s = ColSet::new();
    while s.len() < n {
        s.insert(ColId(rng.range_i64(0, NCOLS as i64) as u32));
    }
    s
}

fn cmp_by_spec(a: &[i64], b: &[i64], spec: &OrderSpec) -> Ordering {
    for k in spec.keys() {
        let ord = k.dir.apply(a[k.col.index()].cmp(&b[k.col.index()]));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn sorted_by(rows: &[Vec<i64>], spec: &OrderSpec) -> Vec<Vec<i64>> {
    let mut rows = rows.to_vec();
    rows.sort_by(|a, b| cmp_by_spec(a, b, spec));
    rows
}

fn is_ordered_by(rows: &[Vec<i64>], spec: &OrderSpec) -> bool {
    rows.windows(2)
        .all(|w| cmp_by_spec(&w[0], &w[1], spec) != Ordering::Greater)
}

/// Sorting by the reduced specification orders the data by the full
/// specification (the correctness claim of Fig. 2).
#[test]
fn reduce_is_sound() {
    let mut rng = Rng::new(0x01);
    for case in 0..CASES {
        let w = world(&mut rng);
        let spec = spec_strategy(&mut rng);
        let reduced = w.ctx.reduce(&spec);
        let rows = sorted_by(&w.rows, &reduced);
        assert!(
            is_ordered_by(&rows, &spec),
            "case {case}: reduce({spec}) = {reduced} lost ordering"
        );
    }
}

/// Reduction is idempotent and never grows the specification.
#[test]
fn reduce_is_idempotent_and_shrinking() {
    let mut rng = Rng::new(0x02);
    for case in 0..CASES {
        let w = world(&mut rng);
        let spec = spec_strategy(&mut rng);
        let once = w.ctx.reduce(&spec);
        assert!(once.len() <= spec.len(), "case {case}");
        assert_eq!(w.ctx.reduce(&once), once, "case {case}");
    }
}

/// Test Order is sound: a stream sorted by the order property really is
/// ordered by the interesting order (Fig. 3).
#[test]
fn test_order_is_sound() {
    let mut rng = Rng::new(0x03);
    for case in 0..CASES {
        let w = world(&mut rng);
        let interest = spec_strategy(&mut rng);
        let prop = spec_strategy(&mut rng);
        if w.ctx.test_order(&interest, &prop) {
            let rows = sorted_by(&w.rows, &prop);
            assert!(
                is_ordered_by(&rows, &interest),
                "case {case}: test_order said {prop} satisfies {interest}"
            );
        }
    }
}

/// Test Order is reflexive and closed under reduction.
#[test]
fn test_order_reflexive() {
    let mut rng = Rng::new(0x04);
    for case in 0..CASES {
        let w = world(&mut rng);
        let spec = spec_strategy(&mut rng);
        assert!(w.ctx.test_order(&spec, &spec), "case {case}");
        assert!(w.ctx.test_order(&spec, &w.ctx.reduce(&spec)), "case {case}");
    }
}

/// Cover Order is sound: one sort satisfies both inputs (Fig. 4).
#[test]
fn cover_is_sound() {
    let mut rng = Rng::new(0x05);
    for case in 0..CASES {
        let w = world(&mut rng);
        let i1 = spec_strategy(&mut rng);
        let i2 = spec_strategy(&mut rng);
        if let Some(cover) = w.ctx.cover(&i1, &i2) {
            assert!(w.ctx.test_order(&i1, &cover), "case {case}");
            assert!(w.ctx.test_order(&i2, &cover), "case {case}");
            let rows = sorted_by(&w.rows, &cover);
            assert!(is_ordered_by(&rows, &i1), "case {case}");
            assert!(is_ordered_by(&rows, &i2), "case {case}");
        }
    }
}

/// Cover is symmetric in satisfiability.
#[test]
fn cover_is_symmetric() {
    let mut rng = Rng::new(0x06);
    for case in 0..CASES {
        let w = world(&mut rng);
        let i1 = spec_strategy(&mut rng);
        let i2 = spec_strategy(&mut rng);
        let a = w.ctx.cover(&i1, &i2);
        let b = w.ctx.cover(&i2, &i1);
        assert_eq!(a.is_some(), b.is_some(), "case {case}: {i1} vs {i2}");
    }
}

/// Homogenize Order is sound: the homogenized order still delivers the
/// original interesting order once the (already applied here)
/// equivalences hold (Fig. 5).
#[test]
fn homogenize_is_sound() {
    let mut rng = Rng::new(0x07);
    for case in 0..CASES {
        let w = world(&mut rng);
        let interest = spec_strategy(&mut rng);
        let target_set = random_colset(&mut rng, 1, NCOLS);
        if let Some(h) = w.ctx.homogenize(&interest, &target_set) {
            assert!(h.col_set().is_subset(&target_set), "case {case}");
            let rows = sorted_by(&w.rows, &h);
            assert!(
                is_ordered_by(&rows, &interest),
                "case {case}: homogenize({interest}) = {h} lost ordering"
            );
        }
    }
}

/// The generalized GROUP BY order test is sound: when satisfied, sorting
/// by the property makes every group (rows equal on all flex columns)
/// contiguous (§7).
#[test]
fn flex_satisfaction_is_sound() {
    let mut rng = Rng::new(0x08);
    for case in 0..CASES {
        let w = world(&mut rng);
        let cols: Vec<ColId> = random_colset(&mut rng, 1, 4).iter().collect();
        let prop = spec_strategy(&mut rng);
        let flex = FlexOrder::group_by(cols.iter().copied(), []);
        if flex.satisfied_by(&prop, &w.ctx) {
            let rows = sorted_by(&w.rows, &prop);
            // Groups must be contiguous: once a group key is left, it
            // never reappears.
            let key = |r: &Vec<i64>| -> Vec<i64> { cols.iter().map(|c| r[c.index()]).collect() };
            let mut seen: Vec<Vec<i64>> = Vec::new();
            for r in &rows {
                let k = key(r);
                match seen.last() {
                    Some(last) if *last == k => {}
                    _ => {
                        assert!(
                            !seen.contains(&k),
                            "case {case}: group {k:?} split under {prop}"
                        );
                        seen.push(k);
                    }
                }
            }
        }
    }
}

/// The flex concretization always satisfies its own requirement and
/// extends the supplied property when it claimed to.
#[test]
fn flex_concretize_satisfies() {
    let mut rng = Rng::new(0x09);
    for case in 0..CASES {
        let w = world(&mut rng);
        let cols: Vec<ColId> = random_colset(&mut rng, 1, 4).iter().collect();
        let prop = spec_strategy(&mut rng);
        let flex = FlexOrder::group_by(cols.iter().copied(), []);
        let sort = flex.concretize(&prop, &w.ctx);
        assert!(
            flex.satisfied_by(&sort, &w.ctx),
            "case {case}: concretize({prop}) = {sort} does not satisfy {flex}"
        );
    }
}

/// Reduced specifications mention only equivalence-class heads and
/// contain no duplicate columns.
#[test]
fn reduce_yields_canonical_form() {
    let mut rng = Rng::new(0x0A);
    for case in 0..CASES {
        let w = world(&mut rng);
        let spec = spec_strategy(&mut rng);
        let reduced = w.ctx.reduce(&spec);
        let mut seen = ColSet::new();
        for k in reduced.keys() {
            assert_eq!(
                w.ctx.equivalences().head(k.col),
                k.col,
                "case {case}: non-head in {reduced}"
            );
            assert!(
                seen.insert(k.col),
                "case {case}: duplicate {} in {}",
                k.col,
                reduced
            );
        }
    }
}
