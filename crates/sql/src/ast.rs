//! The abstract syntax tree produced by the parser.

use fto_common::Value;
use fto_expr::{AggFunc, ArithOp, CompareOp};

/// A column reference, optionally qualified with a table alias.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnRef {
    /// Table name or alias, when written `t.c`.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExpr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Value),
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// An aggregate call — legal only inside HAVING predicates, where it
    /// refers to (or introduces) a per-group aggregate.
    Agg(Box<SqlAgg>),
}

/// An aggregate call in the select list.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlAgg {
    /// The function.
    pub func: AggFunc,
    /// The argument; `None` for `count(*)`.
    pub arg: Option<SqlExpr>,
    /// `DISTINCT` inside the call.
    pub distinct: bool,
}

/// One item of the select list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of every FROM item.
    Wildcard,
    /// A scalar expression with an optional alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call with an optional alias.
    Agg {
        /// The call.
        agg: SqlAgg,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A comparison predicate in the WHERE clause.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlPredicate {
    /// The operator.
    pub op: CompareOp,
    /// Left operand.
    pub left: SqlExpr,
    /// Right operand.
    pub right: SqlExpr,
}

/// One WHERE conjunct: a plain comparison or an `IN (subquery)` test.
#[derive(Clone, Debug, PartialEq)]
pub enum WherePred {
    /// `expr op expr`.
    Compare(SqlPredicate),
    /// `expr IN (select ...)` — desugared by the binder into a join
    /// against the DISTINCT subquery (the QGM subquery-to-join
    /// transformation the paper's §3 references).
    InSubquery {
        /// The tested expression.
        expr: SqlExpr,
        /// The one-column subquery.
        query: Box<Query>,
    },
}

/// One FROM item.
#[derive(Clone, Debug, PartialEq)]
pub enum TableRef {
    /// A base table with an optional alias.
    Table {
        /// Table name.
        name: String,
        /// Alias (defaults to the table name).
        alias: Option<String>,
    },
    /// A derived table: `(query) AS alias`.
    Subquery {
        /// The nested query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
    /// An explicit join: `left [LEFT [OUTER]] JOIN right ON preds`.
    /// Chains associate left-deep.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// Right operand.
        right: Box<TableRef>,
        /// ON-clause conjuncts.
        on: Vec<SqlPredicate>,
    },
}

/// Explicit-join kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN (equivalent to a comma plus WHERE predicates).
    Inner,
    /// `LEFT [OUTER] JOIN`: the left side is preserved.
    LeftOuter,
}

impl TableRef {
    /// The name the item is known by in the query; explicit joins have
    /// no single binding name.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
            TableRef::Join { .. } => "",
        }
    }
}

/// One ORDER BY item.
#[derive(Clone, Debug, PartialEq)]
pub struct SortItem {
    /// What to sort by.
    pub target: SortTarget,
    /// True for DESC.
    pub desc: bool,
}

/// The target of a sort item.
#[derive(Clone, Debug, PartialEq)]
pub enum SortTarget {
    /// A column reference or select-list alias.
    Name(ColumnRef),
    /// A 1-based select-list ordinal.
    Ordinal(usize),
}

/// A parsed SELECT query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// DISTINCT flag.
    pub distinct: bool,
    /// The select list.
    pub items: Vec<SelectItem>,
    /// FROM items.
    pub from: Vec<TableRef>,
    /// WHERE conjuncts.
    pub predicates: Vec<WherePred>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// HAVING conjuncts (may contain aggregate calls).
    pub having: Vec<SqlPredicate>,
    /// UNION branches appended to this query; `order_by` and `limit`
    /// then apply to the whole union.
    pub union_branches: Vec<UnionBranch>,
    /// ORDER BY items.
    pub order_by: Vec<SortItem>,
    /// LIMIT row budget.
    pub limit: Option<u64>,
}

/// A top-level SQL statement: a query, optionally wrapped in
/// `EXPLAIN [ANALYZE | OPTIMIZER]`.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A plain SELECT query.
    Query(Query),
    /// `EXPLAIN [ANALYZE | OPTIMIZER] <query>`: render the chosen plan
    /// (or the optimizer's decision trace) rather than the result rows.
    Explain {
        /// What the explanation should show.
        mode: ExplainMode,
        /// The explained query.
        query: Query,
    },
}

/// Variants of the EXPLAIN statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExplainMode {
    /// `EXPLAIN`: the chosen plan with cost/row/order estimates.
    Plan,
    /// `EXPLAIN ANALYZE`: the query is also executed so the rendering
    /// can annotate estimates with actuals.
    Analyze,
    /// `EXPLAIN OPTIMIZER`: the optimizer's decision trace — every plan
    /// generated and pruned, every sort added or avoided, every
    /// sort-ahead variant — plus an enumeration summary.
    Optimizer,
}

/// One `UNION [ALL] select ...` continuation.
#[derive(Clone, Debug, PartialEq)]
pub struct UnionBranch {
    /// True for UNION ALL (bag semantics); false for set UNION.
    pub all: bool,
    /// The branch query (its own order_by/limit are always empty).
    pub query: Query,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_names() {
        let t = TableRef::Table {
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "orders");
        let t = TableRef::Table {
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding_name(), "o");
    }
}
