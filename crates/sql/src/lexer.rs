//! The SQL tokenizer.

use fto_common::{FtoError, Result};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// A punctuation or operator symbol.
    Symbol(&'static str),
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenizes SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '*' | '+' | '-' | '/' | '.' => {
                tokens.push(Token::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    _ => ".",
                }));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol("<>"));
                i += 2;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(FtoError::Parse("unterminated string literal".into()));
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    match bytes[j] as char {
                        '0'..='9' => j += 1,
                        '.' if !is_float
                            && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) =>
                        {
                            is_float = true;
                            j += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[start..j];
                if is_float {
                    tokens
                        .push(Token::Float(text.parse().map_err(|_| {
                            FtoError::Parse(format!("bad number '{text}'"))
                        })?));
                } else {
                    tokens
                        .push(Token::Int(text.parse().map_err(|_| {
                            FtoError::Parse(format!("bad number '{text}'"))
                        })?));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let c = bytes[j] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..j].to_ascii_lowercase()));
                i = j;
            }
            other => {
                return Err(FtoError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let t = tokenize("SELECT a.x, 10 FROM t WHERE a.x <= 'hi'").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("select".into()),
                Token::Ident("a".into()),
                Token::Symbol("."),
                Token::Ident("x".into()),
                Token::Symbol(","),
                Token::Int(10),
                Token::Ident("from".into()),
                Token::Ident("t".into()),
                Token::Ident("where".into()),
                Token::Ident("a".into()),
                Token::Symbol("."),
                Token::Ident("x".into()),
                Token::Symbol("<="),
                Token::Str("hi".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 0.01").unwrap();
        assert_eq!(
            t,
            vec![Token::Int(1), Token::Float(2.5), Token::Float(0.01)]
        );
    }

    #[test]
    fn operators() {
        let t = tokenize("= <> != < <= > >= + - * /").unwrap();
        let syms: Vec<&str> = t
            .iter()
            .map(|tok| match tok {
                Token::Symbol(s) => *s,
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            syms,
            vec!["=", "<>", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/"]
        );
    }

    #[test]
    fn comments_and_whitespace() {
        let t = tokenize("select -- comment\n 1").unwrap();
        assert_eq!(t, vec![Token::Ident("select".into()), Token::Int(1)]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("select #").is_err());
    }

    #[test]
    fn keywords_lowercased() {
        let t = tokenize("SeLeCt FROM").unwrap();
        assert_eq!(t[0].as_ident(), Some("select"));
        assert_eq!(t[1].as_ident(), Some("from"));
    }
}
