//! Civil-date ↔ day-number conversion (days since 1970-01-01).
//!
//! Implements Howard Hinnant's `days_from_civil` algorithm; no external
//! dependency needed for the `date('YYYY-MM-DD')` literals in workloads.

use fto_common::{FtoError, Result};

/// Converts a civil date to days since the Unix epoch.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Converts days since the Unix epoch back to (year, month, day).
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parses `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Result<i32> {
    let parts: Vec<&str> = s.split('-').collect();
    let err = || FtoError::Parse(format!("invalid date literal '{s}'"));
    if parts.len() != 3 {
        return Err(err());
    }
    let y: i64 = parts[0].parse().map_err(|_| err())?;
    let m: u32 = parts[1].parse().map_err(|_| err())?;
    let d: u32 = parts[2].parse().map_err(|_| err())?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(err());
    }
    Ok(days_from_civil(y, m, d) as i32)
}

/// Formats days since the epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // The paper's TPC-D date.
        assert_eq!(days_from_civil(1995, 3, 15), 9204);
        assert_eq!(civil_from_days(9204), (1995, 3, 15));
        // Leap-year boundary.
        assert_eq!(
            days_from_civil(2000, 3, 1) - days_from_civil(2000, 2, 28),
            2
        );
        assert_eq!(
            days_from_civil(1900, 3, 1) - days_from_civil(1900, 2, 28),
            1
        );
    }

    #[test]
    fn roundtrip_range() {
        for z in (-200_000..200_000).step_by(733) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("1995-03-15").unwrap(), 9204);
        assert_eq!(format_date(9204), "1995-03-15");
        assert!(parse_date("1995-3").is_err());
        assert!(parse_date("abcd-ef-gh").is_err());
        assert!(parse_date("1995-13-01").is_err());
        assert!(parse_date("1995-00-01").is_err());
    }
}
