//! The recursive-descent parser.

use crate::ast::*;
use crate::dates::parse_date;
use crate::lexer::{tokenize, Token};
use fto_common::{FtoError, Result, Value};
use fto_expr::{AggFunc, ArithOp, CompareOp};

/// Parses a SELECT query.
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(FtoError::Parse(format!(
            "trailing tokens after query: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(q)
}

/// Parses a top-level statement: a SELECT query optionally preceded by
/// `EXPLAIN [ANALYZE | OPTIMIZER]`.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.eat_keyword("explain") {
        let mode = if p.eat_keyword("analyze") {
            ExplainMode::Analyze
        } else if p.eat_keyword("optimizer") {
            ExplainMode::Optimizer
        } else {
            ExplainMode::Plan
        };
        Statement::Explain {
            mode,
            query: p.query()?,
        }
    } else {
        Statement::Query(p.query()?)
    };
    if p.pos != p.tokens.len() {
        return Err(FtoError::Parse(format!(
            "trailing tokens after query: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().and_then(Token::as_ident) == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(FtoError::Parse(format!(
                "expected '{kw}', found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(FtoError::Parse(format!(
                "expected '{sym}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(FtoError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        let mut query = self.select_core()?;
        while self.eat_keyword("union") {
            let all = self.eat_keyword("all");
            let branch = self.select_core()?;
            query
                .union_branches
                .push(UnionBranch { all, query: branch });
        }
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            query.order_by.push(self.sort_item()?);
            while self.eat_symbol(",") {
                query.order_by.push(self.sort_item()?);
            }
        }
        if self.eat_keyword("limit") {
            query.limit = match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(FtoError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            };
        }
        Ok(query)
    }

    /// One SELECT without trailing ORDER BY / LIMIT / UNION.
    fn select_core(&mut self) -> Result<Query> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(",") {
            items.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        let mut from = vec![self.table_ref()?];
        while self.eat_symbol(",") {
            from.push(self.table_ref()?);
        }
        let mut predicates = Vec::new();
        if self.eat_keyword("where") {
            predicates.push(self.where_pred()?);
            while self.eat_keyword("and") {
                predicates.push(self.where_pred()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.column_ref()?);
            while self.eat_symbol(",") {
                group_by.push(self.column_ref()?);
            }
        }
        let mut having = Vec::new();
        if self.eat_keyword("having") {
            having.push(self.predicate_with_aggs()?);
            while self.eat_keyword("and") {
                having.push(self.predicate_with_aggs()?);
            }
        }
        Ok(Query {
            distinct,
            items,
            from,
            predicates,
            group_by,
            having,
            union_branches: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate call?
        if let Some(func) = self.peek().and_then(Token::as_ident).and_then(agg_func) {
            if matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol("("))) {
                self.pos += 2; // func (
                let distinct = self.eat_keyword("distinct");
                let arg = if self.eat_symbol("*") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_symbol(")")?;
                let alias = self.alias()?;
                return Ok(SelectItem::Agg {
                    agg: SqlAgg {
                        func,
                        arg,
                        distinct,
                    },
                    alias,
                });
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut item = self.table_primary()?;
        loop {
            let kind = if self.eat_keyword("left") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::LeftOuter
            } else if self.eat_keyword("inner") {
                self.expect_keyword("join")?;
                JoinKind::Inner
            } else if self.eat_keyword("join") {
                JoinKind::Inner
            } else {
                return Ok(item);
            };
            let right = self.table_primary()?;
            self.expect_keyword("on")?;
            let mut on = vec![self.predicate()?];
            while self.eat_keyword("and") {
                on.push(self.predicate()?);
            }
            item = TableRef::Join {
                left: Box::new(item),
                kind,
                right: Box::new(right),
                on,
            };
        }
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if self.eat_symbol("(") {
            let query = self.query()?;
            self.expect_symbol(")")?;
            self.eat_keyword("as");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        // Optional alias: a bare identifier that is not a clause keyword.
        let alias = match self.peek().and_then(Token::as_ident) {
            Some(kw) if is_clause_keyword(kw) => None,
            Some(_) => Some(self.ident()?),
            None => None,
        };
        Ok(TableRef::Table { name, alias })
    }

    fn predicate(&mut self) -> Result<SqlPredicate> {
        let left = self.expr()?;
        if let Some(p) = self.null_test(&left)? {
            return Ok(p);
        }
        let op = self.comparison_op()?;
        let right = self.expr()?;
        Ok(SqlPredicate { op, left, right })
    }

    /// A WHERE conjunct: comparison, null test, or `IN (subquery)`.
    fn where_pred(&mut self) -> Result<WherePred> {
        let left = self.expr()?;
        if let Some(p) = self.null_test(&left)? {
            return Ok(WherePred::Compare(p));
        }
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            let query = self.query()?;
            self.expect_symbol(")")?;
            return Ok(WherePred::InSubquery {
                expr: left,
                query: Box::new(query),
            });
        }
        let op = self.comparison_op()?;
        let right = self.expr()?;
        Ok(WherePred::Compare(SqlPredicate { op, left, right }))
    }

    /// A HAVING predicate: operands may contain aggregate calls.
    fn predicate_with_aggs(&mut self) -> Result<SqlPredicate> {
        let left = self.expr_in(true)?;
        if let Some(p) = self.null_test(&left)? {
            return Ok(p);
        }
        let op = self.comparison_op()?;
        let right = self.expr_in(true)?;
        Ok(SqlPredicate { op, left, right })
    }

    /// Parses a trailing `IS [NOT] NULL`, if present.
    fn null_test(&mut self, left: &SqlExpr) -> Result<Option<SqlPredicate>> {
        if !self.eat_keyword("is") {
            return Ok(None);
        }
        let negated = self.eat_keyword("not");
        self.expect_keyword("null")?;
        Ok(Some(SqlPredicate {
            op: if negated {
                CompareOp::IsNotNull
            } else {
                CompareOp::IsNull
            },
            left: left.clone(),
            right: SqlExpr::Literal(Value::Null),
        }))
    }

    fn comparison_op(&mut self) -> Result<CompareOp> {
        match self.next() {
            Some(Token::Symbol("=")) => Ok(CompareOp::Eq),
            Some(Token::Symbol("<>")) => Ok(CompareOp::Ne),
            Some(Token::Symbol("<")) => Ok(CompareOp::Lt),
            Some(Token::Symbol("<=")) => Ok(CompareOp::Le),
            Some(Token::Symbol(">")) => Ok(CompareOp::Gt),
            Some(Token::Symbol(">=")) => Ok(CompareOp::Ge),
            other => Err(FtoError::Parse(format!(
                "expected comparison operator, found {other:?}"
            ))),
        }
    }

    fn sort_item(&mut self) -> Result<SortItem> {
        let target = match self.peek() {
            Some(Token::Int(n)) => {
                let n = *n;
                self.pos += 1;
                if n < 1 {
                    return Err(FtoError::Parse(format!("bad ORDER BY ordinal {n}")));
                }
                SortTarget::Ordinal(n as usize)
            }
            _ => SortTarget::Name(self.column_ref()?),
        };
        let desc = if self.eat_keyword("desc") {
            true
        } else {
            self.eat_keyword("asc");
            false
        };
        Ok(SortItem { target, desc })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let name = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
            })
        }
    }

    // expr := term (("+" | "-") term)*
    fn expr(&mut self) -> Result<SqlExpr> {
        self.expr_in(false)
    }

    fn expr_in(&mut self, allow_agg: bool) -> Result<SqlExpr> {
        let mut left = self.term(allow_agg)?;
        loop {
            let op = if self.eat_symbol("+") {
                ArithOp::Add
            } else if self.eat_symbol("-") {
                ArithOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.term(allow_agg)?;
            left = SqlExpr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    // term := factor (("*" | "/") factor)*
    fn term(&mut self, allow_agg: bool) -> Result<SqlExpr> {
        let mut left = self.factor(allow_agg)?;
        loop {
            let op = if self.eat_symbol("*") {
                ArithOp::Mul
            } else if self.eat_symbol("/") {
                ArithOp::Div
            } else {
                return Ok(left);
            };
            let right = self.factor(allow_agg)?;
            left = SqlExpr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn factor(&mut self, allow_agg: bool) -> Result<SqlExpr> {
        if allow_agg {
            if let Some(func) = self.peek().and_then(Token::as_ident).and_then(agg_func) {
                if matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol("("))) {
                    self.pos += 2;
                    let distinct = self.eat_keyword("distinct");
                    let arg = if self.eat_symbol("*") {
                        None
                    } else {
                        Some(self.expr_in(false)?)
                    };
                    self.expect_symbol(")")?;
                    return Ok(SqlExpr::Agg(Box::new(SqlAgg {
                        func,
                        arg,
                        distinct,
                    })));
                }
            }
        }
        match self.peek().cloned() {
            Some(Token::Symbol("(")) => {
                self.pos += 1;
                let e = self.expr_in(allow_agg)?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Symbol("-")) => {
                self.pos += 1;
                let e = self.factor(allow_agg)?;
                Ok(SqlExpr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(SqlExpr::Literal(Value::Int(0))),
                    right: Box::new(e),
                })
            }
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Double(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::str(s)))
            }
            Some(Token::Ident(id)) if id == "date" => {
                self.pos += 1;
                self.expect_symbol("(")?;
                let lit = match self.next() {
                    Some(Token::Str(s)) => s,
                    other => {
                        return Err(FtoError::Parse(format!(
                            "date() expects a string literal, found {other:?}"
                        )))
                    }
                };
                self.expect_symbol(")")?;
                Ok(SqlExpr::Literal(Value::Date(parse_date(&lit)?)))
            }
            Some(Token::Ident(_)) => Ok(SqlExpr::Column(self.column_ref()?)),
            other => Err(FtoError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name {
        "sum" => Some(AggFunc::Sum),
        "count" => Some(AggFunc::Count),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        "avg" => Some(AggFunc::Avg),
        _ => None,
    }
}

fn is_clause_keyword(kw: &str) -> bool {
    matches!(
        kw,
        "where"
            | "group"
            | "order"
            | "as"
            | "on"
            | "and"
            | "select"
            | "from"
            | "limit"
            | "having"
            | "union"
            | "left"
            | "inner"
            | "join"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q3() {
        let q = parse_query(
            "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as rev, \
             o_orderdate, o_shippriority \
             from customer, orders, lineitem \
             where c_custkey = o_custkey and l_orderkey = o_orderkey \
             and c_mktsegment = 'building' \
             and o_orderdate < date('1995-03-15') \
             and l_shipdate > date('1995-03-15') \
             group by l_orderkey, o_orderdate, o_shippriority \
             order by rev desc, o_orderdate",
        )
        .unwrap();
        assert_eq!(q.items.len(), 4);
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.predicates.len(), 5);
        assert_eq!(q.group_by.len(), 3);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        match &q.items[1] {
            SelectItem::Agg { agg, alias } => {
                assert_eq!(agg.func, AggFunc::Sum);
                assert!(!agg.distinct);
                assert_eq!(alias.as_deref(), Some("rev"));
            }
            other => panic!("{other:?}"),
        }
        // Date literal resolved to day number.
        match &q.predicates[3] {
            WherePred::Compare(SqlPredicate {
                right: SqlExpr::Literal(Value::Date(d)),
                ..
            }) => assert_eq!(*d, 9204),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_aliases_and_wildcard() {
        let q = parse_query("select * from orders o, lineitem l where o.k = l.k").unwrap();
        assert_eq!(q.items, vec![SelectItem::Wildcard]);
        assert_eq!(q.from[0].binding_name(), "o");
        assert_eq!(q.from[1].binding_name(), "l");
    }

    #[test]
    fn parses_subquery_in_from() {
        let q =
            parse_query("select v.x from (select x from t where x > 3) as v order by v.x").unwrap();
        match &q.from[0] {
            TableRef::Subquery { query, alias } => {
                assert_eq!(alias, "v");
                assert_eq!(query.predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_distinct_and_count_star() {
        let q = parse_query("select distinct count(*) from t").unwrap();
        assert!(q.distinct);
        match &q.items[0] {
            SelectItem::Agg { agg, .. } => {
                assert_eq!(agg.func, AggFunc::Count);
                assert!(agg.arg.is_none());
            }
            other => panic!("{other:?}"),
        }
        let q = parse_query("select sum(distinct x) from t").unwrap();
        match &q.items[0] {
            SelectItem::Agg { agg, .. } => assert!(agg.distinct),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_order_by_ordinal() {
        let q = parse_query("select x, y from t order by 2 desc, 1").unwrap();
        assert_eq!(q.order_by[0].target, SortTarget::Ordinal(2));
        assert!(q.order_by[0].desc);
        assert!(parse_query("select x from t order by 0").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("select 1 + 2 * 3 from t").unwrap();
        match &q.items[0] {
            SelectItem::Expr { expr, .. } => match expr {
                SqlExpr::Arith {
                    op: ArithOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        **right,
                        SqlExpr::Arith {
                            op: ArithOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let q = parse_query("select -5 from t").unwrap();
        match &q.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert!(matches!(
                    expr,
                    SqlExpr::Arith {
                        op: ArithOp::Sub,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_in_subquery() {
        let q = parse_query("select x from t where x in (select y from u where y > 3) and x < 9")
            .unwrap();
        assert_eq!(q.predicates.len(), 2);
        match &q.predicates[0] {
            WherePred::InSubquery { query, .. } => {
                assert_eq!(query.predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(q.predicates[1], WherePred::Compare(_)));
        assert!(parse_query("select x from t where x in select y from u").is_err());
    }

    #[test]
    fn parses_null_tests() {
        let q = parse_query("select x from t where x is null and y is not null").unwrap();
        let op_of = |p: &WherePred| match p {
            WherePred::Compare(c) => c.op,
            other => panic!("{other:?}"),
        };
        assert_eq!(op_of(&q.predicates[0]), CompareOp::IsNull);
        assert_eq!(op_of(&q.predicates[1]), CompareOp::IsNotNull);
        let q =
            parse_query("select g, count(*) from t group by g having sum(v) is not null").unwrap();
        assert_eq!(q.having[0].op, CompareOp::IsNotNull);
        assert!(parse_query("select x from t where x is 3").is_err());
    }

    #[test]
    fn parses_explicit_joins() {
        let q = parse_query(
            "select * from a join b on a.x = b.x              left outer join c on b.y = c.y and c.z > 1",
        )
        .unwrap();
        assert_eq!(q.from.len(), 1);
        match &q.from[0] {
            TableRef::Join { kind, on, left, .. } => {
                assert_eq!(*kind, JoinKind::LeftOuter);
                assert_eq!(on.len(), 2);
                assert!(matches!(
                    **left,
                    TableRef::Join {
                        kind: JoinKind::Inner,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        // `left join` without `outer` also parses.
        let q = parse_query("select * from a left join b on a.x = b.x").unwrap();
        assert!(matches!(
            q.from[0],
            TableRef::Join {
                kind: JoinKind::LeftOuter,
                ..
            }
        ));
        // `inner join` is explicit too.
        let q = parse_query("select * from a inner join b on a.x = b.x").unwrap();
        assert!(matches!(
            q.from[0],
            TableRef::Join {
                kind: JoinKind::Inner,
                ..
            }
        ));
        // ON is mandatory.
        assert!(parse_query("select * from a join b").is_err());
    }

    #[test]
    fn parses_union() {
        let q = parse_query(
            "select x from t union all select y from u union select z from v              order by 1 limit 3",
        )
        .unwrap();
        assert_eq!(q.union_branches.len(), 2);
        assert!(q.union_branches[0].all);
        assert!(!q.union_branches[1].all);
        assert_eq!(q.limit, Some(3));
        assert_eq!(q.order_by.len(), 1);
        // Branch queries carry no trailing clauses of their own.
        assert!(q.union_branches[0].query.order_by.is_empty());
    }

    #[test]
    fn parses_having() {
        let q = parse_query(
            "select g, count(*) from t group by g              having count(*) > 5 and g <> 2 and sum(v) <= 100",
        )
        .unwrap();
        assert_eq!(q.having.len(), 3);
        assert!(matches!(q.having[0].left, SqlExpr::Agg(_)));
        assert!(matches!(q.having[2].left, SqlExpr::Agg(_)));
        // Aggregates outside select/having stay rejected.
        assert!(parse_query("select x from t where sum(x) > 1").is_err());
    }

    #[test]
    fn parses_limit() {
        let q = parse_query("select x from t order by x desc limit 10").unwrap();
        assert_eq!(q.limit, Some(10));
        let q = parse_query("select x from t").unwrap();
        assert_eq!(q.limit, None);
        assert!(parse_query("select x from t limit x").is_err());
    }

    #[test]
    fn parses_explain_statements() {
        let s = parse_statement("select x from t").unwrap();
        assert!(matches!(s, Statement::Query(_)));
        let s = parse_statement("explain select x from t order by x").unwrap();
        assert!(matches!(
            s,
            Statement::Explain {
                mode: ExplainMode::Plan,
                ..
            }
        ));
        let s = parse_statement("EXPLAIN ANALYZE select x from t").unwrap();
        assert!(matches!(
            s,
            Statement::Explain {
                mode: ExplainMode::Analyze,
                ..
            }
        ));
        let s = parse_statement("explain optimizer select x from t").unwrap();
        assert!(matches!(
            s,
            Statement::Explain {
                mode: ExplainMode::Optimizer,
                ..
            }
        ));
        // EXPLAIN needs a query behind it; ANALYZE alone is not one.
        assert!(parse_statement("explain analyze").is_err());
        assert!(parse_statement("explain optimizer").is_err());
        assert!(parse_statement("explain select x from t trailing !").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("frobnicate").is_err());
        assert!(parse_query("select from t").is_err());
        // "t extra" parses as an alias; real trailing junk is an error.
        assert!(parse_query("select x from t where").is_err());
        assert!(parse_query("select x from t order by x junk junk").is_err());
        assert!(parse_query("select x from t where x ~ 3").is_err());
        assert!(parse_query("select date(5) from t").is_err());
    }
}
