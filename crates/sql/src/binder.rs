//! The binder: name resolution and QGM construction from the AST.
//!
//! A query without aggregation binds to a single SELECT box. A query with
//! GROUP BY / aggregates binds to the paper's three-box shape (§6 and the
//! Q3 walk-through):
//!
//! ```text
//!   SELECT box   — joins + predicates, passing through every column the
//!                  upper boxes need
//!   GROUP BY box — grouping columns + aggregate outputs
//!   SELECT box   — the final select list (scalar expressions over
//!                  grouping columns, aggregate results), DISTINCT, and
//!                  the ORDER BY output requirement
//! ```

use crate::ast::*;
use fto_catalog::Catalog;
use fto_common::{ColId, ColSet, DataType, FtoError, Result};
use fto_expr::{AggCall, CompareOp, Expr, Predicate};
use fto_order::{OrderSpec, SortKey};
use fto_qgm::graph::{BoxId, BoxKind, OutputCol, OutputExpr, QueryGraph};

/// Binds a parsed query against a catalog, producing a query graph ready
/// for the rewrites and the order scan.
pub fn bind(query: &Query, catalog: &Catalog) -> Result<QueryGraph> {
    let mut graph = QueryGraph::new();
    let root = bind_any(&mut graph, catalog, query)?;
    graph.root = root;
    Ok(graph)
}

/// Binds either a plain query or a UNION of queries.
fn bind_any(graph: &mut QueryGraph, catalog: &Catalog, q: &Query) -> Result<BoxId> {
    if q.union_branches.is_empty() {
        bind_query(graph, catalog, q)
    } else {
        bind_union(graph, catalog, q)
    }
}

/// Binds `q UNION [ALL] b1 UNION [ALL] b2 ...` into a Union box; the
/// trailing ORDER BY / LIMIT / set-semantics DISTINCT apply to the whole
/// union.
fn bind_union(graph: &mut QueryGraph, catalog: &Catalog, q: &Query) -> Result<BoxId> {
    let first_core = Query {
        union_branches: Vec::new(),
        order_by: Vec::new(),
        limit: None,
        ..q.clone()
    };
    let mut distinct_union = false;
    let mut branches = vec![bind_any(graph, catalog, &first_core)?];
    for b in &q.union_branches {
        if !b.all {
            distinct_union = true;
        }
        branches.push(bind_any(graph, catalog, &b.query)?);
    }

    let arity = graph.boxed(branches[0]).output.len();
    for &b in &branches[1..] {
        if graph.boxed(b).output.len() != arity {
            return Err(FtoError::Semantic(format!(
                "UNION branches have different arities ({} vs {})",
                arity,
                graph.boxed(b).output.len()
            )));
        }
    }

    let union_box = graph.add_box(BoxKind::Union);
    for &b in &branches {
        graph.add_box_quantifier(union_box, b);
    }
    // Union outputs are fresh columns (a merged value is not any single
    // branch's column); names and types come from the first branch.
    let first_cols = graph.boxed(branches[0]).output_cols();
    let mut outputs = Vec::with_capacity(arity);
    let mut names = Vec::with_capacity(arity);
    for &c in &first_cols {
        let name = graph.registry.name(c).to_string();
        let dt = graph.registry.info(c).data_type;
        let out = graph.fresh_derived(union_box, name.clone(), dt);
        outputs.push(OutputCol::passthrough(out));
        names.push(name);
    }

    let empty_scope = Scope {
        bindings: Vec::new(),
    };
    let order = resolve_order_by(graph, &empty_scope, q, &outputs, &names)?;
    let b = graph.boxed_mut(union_box);
    b.output = outputs;
    b.distinct = distinct_union;
    b.output_order = order;
    b.limit = q.limit;
    Ok(union_box)
}

/// Per-column (qualifier, name) metadata of a binding.
type QualifiedNames = Vec<(Option<String>, String)>;

/// One visible FROM binding. Columns carry individual qualifiers so an
/// explicit join tree (one binding, many source tables) still resolves
/// `a.x` and `b.y`.
struct Binding {
    cols: Vec<ColId>,
    /// Per-column (qualifier, name) pairs.
    col_names: QualifiedNames,
}

impl Binding {
    /// The distinct qualifiers this binding introduces.
    fn qualifiers(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .col_names
            .iter()
            .filter_map(|(q, _)| q.as_deref())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

struct Scope {
    bindings: Vec<Binding>,
}

impl Scope {
    fn resolve(&self, r: &ColumnRef) -> Result<ColId> {
        let name = r.name.to_ascii_lowercase();
        let mut found: Option<ColId> = None;
        for b in &self.bindings {
            for (i, (cq, cn)) in b.col_names.iter().enumerate() {
                if *cn != name {
                    continue;
                }
                if let Some(q) = &r.qualifier {
                    let matches = cq.as_deref().is_some_and(|c| c.eq_ignore_ascii_case(q));
                    if !matches {
                        continue;
                    }
                }
                if found.is_some() {
                    return Err(FtoError::Resolution(format!(
                        "ambiguous column '{}'",
                        display_ref(r)
                    )));
                }
                found = Some(b.cols[i]);
            }
        }
        found.ok_or_else(|| FtoError::Resolution(format!("unknown column '{}'", display_ref(r))))
    }

    fn all_cols(&self) -> Vec<(ColId, String)> {
        self.bindings
            .iter()
            .flat_map(|b| {
                b.cols
                    .iter()
                    .copied()
                    .zip(b.col_names.iter().map(|(_, n)| n.clone()))
            })
            .collect()
    }
}

fn display_ref(r: &ColumnRef) -> String {
    match &r.qualifier {
        Some(q) => format!("{q}.{}", r.name),
        None => r.name.clone(),
    }
}

fn bind_query(graph: &mut QueryGraph, catalog: &Catalog, q: &Query) -> Result<BoxId> {
    let sel = graph.add_box(BoxKind::Select);

    // FROM items become quantifiers.
    let mut scope = Scope {
        bindings: Vec::new(),
    };
    for item in &q.from {
        let binding = bind_from_item(graph, catalog, sel, item)?;
        for qual in binding.qualifiers() {
            let clash = scope
                .bindings
                .iter()
                .any(|b| b.qualifiers().iter().any(|x| x.eq_ignore_ascii_case(qual)));
            if clash {
                return Err(FtoError::Resolution(format!(
                    "duplicate table binding '{qual}'"
                )));
            }
        }
        scope.bindings.push(binding);
    }

    // WHERE predicates. `IN (subquery)` conjuncts apply the QGM
    // subquery-to-join transformation (paper §3): the subquery becomes a
    // DISTINCT derived table joined on equality — semantically a
    // semi-join, with the DISTINCT guaranteeing join multiplicity one.
    for pred in &q.predicates {
        match pred {
            WherePred::Compare(pred) => {
                let p = Predicate::new(
                    pred.op,
                    bind_expr(&scope, &pred.left)?,
                    bind_expr(&scope, &pred.right)?,
                );
                let pid = graph.add_predicate(p);
                graph.boxed_mut(sel).predicates.push(pid);
            }
            WherePred::InSubquery { expr, query } => {
                let tested = bind_expr(&scope, expr)?;
                let child = bind_any(graph, catalog, query)?;
                if graph.boxed(child).output.len() != 1 {
                    return Err(FtoError::Semantic(
                        "IN subquery must produce exactly one column".into(),
                    ));
                }
                graph.boxed_mut(child).distinct = true;
                graph.add_box_quantifier(sel, child);
                let sub_col = graph.boxed(sel).quantifiers.last().unwrap().cols[0];
                let p = Predicate::new(CompareOp::Eq, tested, Expr::col(sub_col));
                let pid = graph.add_predicate(p);
                graph.boxed_mut(sel).predicates.push(pid);
            }
        }
    }

    // Expand the select list.
    let has_aggs =
        q.items.iter().any(|i| matches!(i, SelectItem::Agg { .. })) || !q.group_by.is_empty();

    if !has_aggs {
        if !q.having.is_empty() {
            return Err(FtoError::Semantic(
                "HAVING requires GROUP BY or aggregates".into(),
            ));
        }
        bind_plain_select(graph, &scope, q, sel)
    } else {
        bind_aggregate_select(graph, &scope, q, sel)
    }
}

/// Binds one FROM item into `sel`, returning its visible binding.
fn bind_from_item(
    graph: &mut QueryGraph,
    catalog: &Catalog,
    sel: BoxId,
    item: &TableRef,
) -> Result<Binding> {
    match item {
        TableRef::Table { name, alias } => {
            let td = catalog.table_by_name(name)?.clone();
            graph.add_table_quantifier(sel, &td);
            let cols = graph.boxed(sel).quantifiers.last().unwrap().cols.clone();
            let qual = Some(alias.clone().unwrap_or_else(|| td.name.clone()));
            Ok(Binding {
                col_names: td
                    .columns
                    .iter()
                    .map(|c| (qual.clone(), c.name.clone()))
                    .collect(),
                cols,
            })
        }
        TableRef::Subquery { query, alias } => {
            let child = bind_any(graph, catalog, query)?;
            graph.add_box_quantifier(sel, child);
            let cols = graph.boxed(sel).quantifiers.last().unwrap().cols.clone();
            let col_names = cols
                .iter()
                .map(|&c| (Some(alias.clone()), graph.registry.name(c).to_string()))
                .collect();
            Ok(Binding { cols, col_names })
        }
        TableRef::Join { .. } => {
            let (jb, col_names) = bind_join_tree(graph, catalog, item)?;
            graph.add_box_quantifier(sel, jb);
            let cols = graph.boxed(sel).quantifiers.last().unwrap().cols.clone();
            Ok(Binding { cols, col_names })
        }
    }
}

/// Builds the box for an explicit join tree. Inner joins become plain
/// SELECT boxes (the view-merging rewrite flattens them back into the
/// enclosing join); LEFT OUTER joins become [`BoxKind::OuterJoin`] boxes
/// whose ON predicates feed only one-directional order facts.
fn bind_join_tree(
    graph: &mut QueryGraph,
    catalog: &Catalog,
    item: &TableRef,
) -> Result<(BoxId, QualifiedNames)> {
    let TableRef::Join {
        left,
        kind,
        right,
        on,
    } = item
    else {
        return Err(FtoError::internal("bind_join_tree expects a join"));
    };
    let jb = graph.add_box(match kind {
        JoinKind::Inner => BoxKind::Select,
        JoinKind::LeftOuter => BoxKind::OuterJoin { on: Vec::new() },
    });
    let mut col_names = attach_join_side(graph, catalog, jb, left)?;
    let rnames = attach_join_side(graph, catalog, jb, right)?;
    col_names.extend(rnames);

    let mut cols: Vec<ColId> = Vec::new();
    for q in &graph.boxed(jb).quantifiers {
        cols.extend(q.cols.iter().copied());
    }
    graph.boxed_mut(jb).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();

    let local = Scope {
        bindings: vec![Binding {
            cols,
            col_names: col_names.clone(),
        }],
    };
    let mut pids = Vec::with_capacity(on.len());
    for pred in on {
        let p = Predicate::new(
            pred.op,
            bind_expr(&local, &pred.left)?,
            bind_expr(&local, &pred.right)?,
        );
        pids.push(graph.add_predicate(p));
    }
    match kind {
        JoinKind::Inner => graph.boxed_mut(jb).predicates = pids,
        JoinKind::LeftOuter => graph.boxed_mut(jb).kind = BoxKind::OuterJoin { on: pids },
    }
    Ok((jb, col_names))
}

/// Attaches one side of a join tree as a quantifier of `jb`.
fn attach_join_side(
    graph: &mut QueryGraph,
    catalog: &Catalog,
    jb: BoxId,
    side: &TableRef,
) -> Result<QualifiedNames> {
    match side {
        TableRef::Table { name, alias } => {
            let td = catalog.table_by_name(name)?.clone();
            graph.add_table_quantifier(jb, &td);
            let qual = Some(alias.clone().unwrap_or_else(|| td.name.clone()));
            Ok(td
                .columns
                .iter()
                .map(|c| (qual.clone(), c.name.clone()))
                .collect())
        }
        TableRef::Subquery { query, alias } => {
            let child = bind_any(graph, catalog, query)?;
            let cols = graph.boxed(child).output_cols();
            graph.add_box_quantifier(jb, child);
            Ok(cols
                .iter()
                .map(|&c| (Some(alias.clone()), graph.registry.name(c).to_string()))
                .collect())
        }
        TableRef::Join { .. } => {
            let (child, names) = bind_join_tree(graph, catalog, side)?;
            graph.add_box_quantifier(jb, child);
            Ok(names)
        }
    }
}

/// The non-aggregating shape: outputs, DISTINCT, and ORDER BY all live on
/// the one select box.
fn bind_plain_select(
    graph: &mut QueryGraph,
    scope: &Scope,
    q: &Query,
    sel: BoxId,
) -> Result<BoxId> {
    let mut outputs: Vec<OutputCol> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (i, item) in q.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (col, name) in scope.all_cols() {
                    outputs.push(OutputCol::passthrough(col));
                    names.push(name);
                }
            }
            SelectItem::Expr { expr, alias } => {
                let e = bind_expr(scope, expr)?;
                match e.as_col() {
                    Some(c) => {
                        outputs.push(OutputCol::passthrough(c));
                        names.push(
                            alias
                                .clone()
                                .unwrap_or_else(|| graph.registry.name(c).to_string()),
                        );
                    }
                    None => {
                        let name = alias.clone().unwrap_or_else(|| format!("col{}", i + 1));
                        let col = graph.fresh_derived(sel, name.clone(), expr_type(&e));
                        outputs.push(OutputCol {
                            col,
                            expr: OutputExpr::Scalar(e),
                        });
                        names.push(name);
                    }
                }
            }
            SelectItem::Agg { .. } => unreachable!("agg handled in aggregate path"),
        }
    }
    let order = resolve_order_by(graph, scope, q, &outputs, &names)?;
    let b = graph.boxed_mut(sel);
    b.output = outputs;
    b.distinct = q.distinct;
    b.output_order = order;
    b.limit = q.limit;
    Ok(sel)
}

/// The aggregating shape: select box → group-by box → final select box.
fn bind_aggregate_select(
    graph: &mut QueryGraph,
    scope: &Scope,
    q: &Query,
    sel: BoxId,
) -> Result<BoxId> {
    // Resolve grouping columns and aggregate calls.
    let grouping: Vec<ColId> = q
        .group_by
        .iter()
        .map(|r| scope.resolve(r))
        .collect::<Result<Vec<_>>>()?;
    let grouping_set: ColSet = grouping.iter().copied().collect();

    enum FinalItem {
        /// Pass a grouping column through.
        Pass(ColId, String),
        /// A scalar expression over grouping columns.
        Computed(Expr, String),
        /// The result of `aggs[i]`.
        AggSlot(usize, String),
    }
    let mut aggs: Vec<(AggCall, ColId, String)> = Vec::new();
    let mut final_items: Vec<FinalItem> = Vec::new();

    // Everything the upper boxes need must pass through the select box.
    let mut needed: ColSet = grouping_set.clone();

    for (i, item) in q.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(FtoError::Semantic(
                    "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                ))
            }
            SelectItem::Expr { expr, alias } => {
                let e = bind_expr(scope, expr)?;
                if !e.cols().is_subset(&grouping_set) {
                    return Err(FtoError::Semantic(format!(
                        "select item {} must reference only grouping columns",
                        i + 1
                    )));
                }
                needed.union_with(&e.cols());
                match e.as_col() {
                    Some(c) => final_items.push(FinalItem::Pass(
                        c,
                        alias
                            .clone()
                            .unwrap_or_else(|| graph.registry.name(c).to_string()),
                    )),
                    None => {
                        let name = alias.clone().unwrap_or_else(|| format!("col{}", i + 1));
                        final_items.push(FinalItem::Computed(e, name));
                    }
                }
            }
            SelectItem::Agg { agg, alias } => {
                let arg = match &agg.arg {
                    Some(e) => bind_expr(scope, e)?,
                    None => Expr::int(1), // count(*) ≡ count(1)
                };
                needed.union_with(&arg.cols());
                let mut call = AggCall::new(agg.func, arg);
                if agg.distinct {
                    call = call.distinct();
                }
                let name = alias
                    .clone()
                    .unwrap_or_else(|| format!("{}{}", agg.func.name(), i + 1));
                // Result column minted on the group-by box (below).
                aggs.push((call, ColId(u32::MAX), name.clone()));
                final_items.push(FinalItem::AggSlot(aggs.len() - 1, name));
            }
        }
    }

    // HAVING operands may match select-list aggregates or introduce
    // hidden ones; they must be bound before aggregate columns are
    // minted so hidden aggregates join the group-by box's outputs.
    let mut having_bound: Vec<(fto_expr::CompareOp, HavingExpr, HavingExpr)> = Vec::new();
    for pred in &q.having {
        let left = bind_having_expr(scope, &pred.left, &grouping_set, &mut aggs, &mut needed)?;
        let right = bind_having_expr(scope, &pred.right, &grouping_set, &mut aggs, &mut needed)?;
        having_bound.push((pred.op, left, right));
    }

    // Select box outputs: pass through every needed column.
    graph.boxed_mut(sel).output = needed.iter().map(OutputCol::passthrough).collect();

    // Group-by box.
    let gb = graph.add_box(BoxKind::GroupBy {
        grouping: grouping.clone(),
    });
    graph.add_box_quantifier(gb, sel);
    let mut gb_outputs: Vec<OutputCol> = grouping
        .iter()
        .map(|&c| OutputCol::passthrough(c))
        .collect();
    for (call, col_slot, name) in &mut aggs {
        let col = graph.fresh_derived(gb, name.clone(), agg_type(call));
        *col_slot = col;
        gb_outputs.push(OutputCol {
            col,
            expr: OutputExpr::Agg(call.clone()),
        });
    }
    graph.boxed_mut(gb).output = gb_outputs;

    // Final select box over the group-by.
    let fin = graph.add_box(BoxKind::Select);
    graph.add_box_quantifier(fin, gb);
    for (op, left, right) in having_bound {
        let pred = Predicate::new(op, left.lower(&aggs), right.lower(&aggs));
        let pid = graph.add_predicate(pred);
        graph.boxed_mut(fin).predicates.push(pid);
    }
    let mut outputs = Vec::new();
    let mut names = Vec::new();
    for item in final_items {
        let (output, name) = match item {
            FinalItem::Pass(c, name) => (OutputCol::passthrough(c), name),
            FinalItem::Computed(e, name) => {
                let col = graph.fresh_derived(fin, name.clone(), expr_type(&e));
                (
                    OutputCol {
                        col,
                        expr: OutputExpr::Scalar(e),
                    },
                    name,
                )
            }
            FinalItem::AggSlot(i, name) => (OutputCol::passthrough(aggs[i].1), name),
        };
        outputs.push(output);
        names.push(name);
    }
    let order = resolve_order_by(graph, scope, q, &outputs, &names)?;
    let b = graph.boxed_mut(fin);
    b.output = outputs;
    b.distinct = q.distinct;
    b.output_order = order;
    b.limit = q.limit;
    Ok(fin)
}

/// Resolves ORDER BY items against the output list (aliases and ordinals)
/// or, failing that, the FROM scope — requiring the resolved column to be
/// among the outputs so the sort can run on the final stream.
fn resolve_order_by(
    graph: &QueryGraph,
    scope: &Scope,
    q: &Query,
    outputs: &[OutputCol],
    names: &[String],
) -> Result<Option<OrderSpec>> {
    if q.order_by.is_empty() {
        return Ok(None);
    }
    let mut spec = OrderSpec::empty();
    for item in &q.order_by {
        let col = match &item.target {
            SortTarget::Ordinal(n) => outputs
                .get(n - 1)
                .map(|o| o.col)
                .ok_or_else(|| FtoError::Semantic(format!("ORDER BY ordinal {n} out of range")))?,
            SortTarget::Name(r) => {
                // Alias first (unqualified only), then scope resolution.
                let alias_hit = r.qualifier.is_none().then(|| {
                    names
                        .iter()
                        .position(|n| n.eq_ignore_ascii_case(&r.name))
                        .map(|i| outputs[i].col)
                });
                match alias_hit.flatten() {
                    Some(c) => c,
                    None => {
                        let c = scope.resolve(r)?;
                        if !outputs.iter().any(|o| o.col == c) {
                            return Err(FtoError::Semantic(format!(
                                "ORDER BY column '{}' must appear in the select list",
                                display_ref(r)
                            )));
                        }
                        c
                    }
                }
            }
        };
        spec.push(SortKey {
            col,
            dir: if item.desc {
                fto_common::Direction::Desc
            } else {
                fto_common::Direction::Asc
            },
        });
    }
    let _ = graph;
    Ok(Some(spec))
}

fn bind_expr(scope: &Scope, e: &SqlExpr) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Column(r) => Expr::col(scope.resolve(r)?),
        SqlExpr::Literal(v) => Expr::Lit(v.clone()),
        SqlExpr::Arith { op, left, right } => {
            Expr::arith(*op, bind_expr(scope, left)?, bind_expr(scope, right)?)
        }
        SqlExpr::Agg(_) => {
            return Err(FtoError::Semantic(
                "aggregate calls are only allowed in the select list and HAVING".into(),
            ))
        }
    })
}

/// A HAVING operand before aggregate results have column ids: aggregates
/// are referenced by their index in the aggregate list.
enum HavingExpr {
    Lit(fto_common::Value),
    Col(ColId),
    AggRef(usize),
    Arith(fto_expr::ArithOp, Box<HavingExpr>, Box<HavingExpr>),
}

impl HavingExpr {
    /// Lowers to a real expression once aggregate columns are minted.
    fn lower(&self, aggs: &[(AggCall, ColId, String)]) -> Expr {
        match self {
            HavingExpr::Lit(v) => Expr::Lit(v.clone()),
            HavingExpr::Col(c) => Expr::col(*c),
            HavingExpr::AggRef(i) => Expr::col(aggs[*i].1),
            HavingExpr::Arith(op, l, r) => Expr::arith(*op, l.lower(aggs), r.lower(aggs)),
        }
    }
}

/// Binds one HAVING operand: scalar parts must use grouping columns;
/// aggregate calls are matched against the select list's aggregates or
/// appended as hidden aggregates computed by the group-by box.
fn bind_having_expr(
    scope: &Scope,
    e: &SqlExpr,
    grouping_set: &ColSet,
    aggs: &mut Vec<(AggCall, ColId, String)>,
    needed: &mut ColSet,
) -> Result<HavingExpr> {
    Ok(match e {
        SqlExpr::Literal(v) => HavingExpr::Lit(v.clone()),
        SqlExpr::Column(r) => {
            let c = scope.resolve(r)?;
            if !grouping_set.contains(c) {
                return Err(FtoError::Semantic(format!(
                    "HAVING column '{}' must be a grouping column or inside an aggregate",
                    display_ref(r)
                )));
            }
            HavingExpr::Col(c)
        }
        SqlExpr::Arith { op, left, right } => HavingExpr::Arith(
            *op,
            Box::new(bind_having_expr(scope, left, grouping_set, aggs, needed)?),
            Box::new(bind_having_expr(scope, right, grouping_set, aggs, needed)?),
        ),
        SqlExpr::Agg(call) => {
            let arg = match &call.arg {
                Some(e) => bind_expr(scope, e)?,
                None => Expr::int(1),
            };
            needed.union_with(&arg.cols());
            let mut bound = AggCall::new(call.func, arg);
            if call.distinct {
                bound = bound.distinct();
            }
            let idx = match aggs.iter().position(|(a, _, _)| *a == bound) {
                Some(i) => i,
                None => {
                    let name = format!("having_{}{}", call.func.name(), aggs.len());
                    aggs.push((bound, ColId(u32::MAX), name));
                    aggs.len() - 1
                }
            };
            HavingExpr::AggRef(idx)
        }
    })
}

/// Crude output typing for derived columns (display metadata only).
fn expr_type(_e: &Expr) -> DataType {
    DataType::Double
}

fn agg_type(call: &AggCall) -> DataType {
    match call.func {
        fto_expr::AggFunc::Count => DataType::Int,
        _ => DataType::Double,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use fto_catalog::{ColumnDef, KeyDef};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "orders",
            vec![
                ColumnDef::new("o_orderkey", DataType::Int),
                ColumnDef::new("o_custkey", DataType::Int),
                ColumnDef::new("o_orderdate", DataType::Date),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
        cat.create_table(
            "lineitem",
            vec![
                ColumnDef::new("l_orderkey", DataType::Int),
                ColumnDef::new("l_price", DataType::Double),
            ],
            vec![],
        )
        .unwrap();
        cat
    }

    fn bind_sql(sql: &str) -> Result<QueryGraph> {
        let q = parse_query(sql)?;
        bind(&q, &catalog())
    }

    #[test]
    fn binds_simple_join() {
        let g = bind_sql(
            "select o_orderkey, l_price from orders, lineitem \
             where o_orderkey = l_orderkey order by o_orderkey desc",
        )
        .unwrap();
        let root = g.boxed(g.root);
        assert_eq!(root.quantifiers.len(), 2);
        assert_eq!(root.predicates.len(), 1);
        assert_eq!(root.output.len(), 2);
        let order = root.output_order.as_ref().unwrap();
        assert_eq!(order.keys()[0].dir, fto_common::Direction::Desc);
    }

    #[test]
    fn binds_aggregate_into_three_boxes() {
        let g = bind_sql(
            "select o_custkey, count(*) as n, sum(o_orderkey) \
             from orders group by o_custkey order by n desc",
        )
        .unwrap();
        // select → group-by → final select.
        let order = g.bottom_up();
        assert_eq!(order.len(), 3);
        let gb = g
            .boxes
            .iter()
            .find(|b| matches!(b.kind, BoxKind::GroupBy { .. }))
            .unwrap();
        assert_eq!(gb.output.len(), 3); // o_custkey + two aggs
        let root = g.boxed(g.root);
        assert_eq!(root.output.len(), 3);
        // ORDER BY alias resolves to the count output.
        let req = root.output_order.as_ref().unwrap();
        assert_eq!(g.registry.name(req.keys()[0].col), "n");
    }

    #[test]
    fn scalar_items_must_use_grouping_columns() {
        let err =
            bind_sql("select o_orderdate, count(*) from orders group by o_custkey").unwrap_err();
        assert!(matches!(err, FtoError::Semantic(_)));
    }

    #[test]
    fn wildcard_with_group_by_rejected() {
        assert!(bind_sql("select * from orders group by o_custkey").is_err());
    }

    #[test]
    fn ambiguous_and_unknown_columns() {
        let err = bind_sql("select orderkey from orders, lineitem where o_orderkey = l_orderkey")
            .unwrap_err();
        assert!(matches!(err, FtoError::Resolution(_)));
        // qualified reference resolves.
        let g = bind_sql(
            "select orders.o_orderkey from orders, lineitem \
             where o_orderkey = l_orderkey",
        )
        .unwrap();
        assert_eq!(g.boxed(g.root).output.len(), 1);
    }

    #[test]
    fn duplicate_binding_rejected() {
        assert!(bind_sql("select 1 from orders, orders").is_err());
        // With distinct aliases the self-join binds.
        let g = bind_sql(
            "select a.o_orderkey from orders a, orders b \
             where a.o_orderkey = b.o_custkey",
        )
        .unwrap();
        assert_eq!(g.boxed(g.root).quantifiers.len(), 2);
    }

    #[test]
    fn subquery_binds_and_exposes_columns() {
        let g = bind_sql(
            "select v.o_custkey from \
             (select o_custkey from orders where o_orderkey > 5) as v \
             order by v.o_custkey",
        )
        .unwrap();
        assert_eq!(g.bottom_up().len(), 2);
        let root = g.boxed(g.root);
        assert!(root.output_order.is_some());
    }

    #[test]
    fn order_by_non_output_column_rejected() {
        let err = bind_sql("select o_custkey from orders order by o_orderdate").unwrap_err();
        assert!(matches!(err, FtoError::Semantic(_)));
    }

    #[test]
    fn computed_output_gets_fresh_column() {
        let g = bind_sql("select o_orderkey + 1 as k1 from orders").unwrap();
        let root = g.boxed(g.root);
        assert_eq!(root.output.len(), 1);
        assert!(!root.output[0].is_passthrough());
        assert_eq!(g.registry.name(root.output[0].col), "k1");
    }

    #[test]
    fn wildcard_expands_all_tables() {
        let g = bind_sql("select * from orders, lineitem where o_orderkey = l_orderkey").unwrap();
        assert_eq!(g.boxed(g.root).output.len(), 5);
    }
}
