//! A SQL subset front end: lexer, recursive-descent parser, and binder
//! producing an [`fto_qgm::QueryGraph`].
//!
//! Supported grammar (enough for the paper's workloads, including TPC-D
//! Query 3):
//!
//! ```text
//! statement  := [EXPLAIN [ANALYZE | OPTIMIZER]] query
//! query      := SELECT [DISTINCT] item ("," item)*
//!               FROM table_ref ("," table_ref)*
//!               [WHERE pred (AND pred)*]
//!               [GROUP BY column ("," column)*]
//!               [ORDER BY sort_item ("," sort_item)*]
//! item       := expr [AS ident] | agg "(" [DISTINCT] expr | "*" ")" [AS ident]
//! table_ref  := ident [AS ident] | "(" query ")" AS ident
//! pred       := expr ("=" | "<>" | "<" | "<=" | ">" | ">=") expr
//! expr       := additive arithmetic over columns, numbers, strings,
//!               date('YYYY-MM-DD')
//! sort_item  := (alias | column | ordinal) [ASC | DESC]
//! ```
//!
//! Limitations (documented, deliberate): conjunctive WHERE only, no outer
//! joins, no HAVING, no subqueries outside FROM, ORDER BY columns must
//! appear in the select list.

#![deny(missing_docs)]

pub mod ast;
pub mod binder;
pub mod dates;
pub mod lexer;
pub mod parser;

pub use ast::{ExplainMode, Statement};
pub use binder::bind;
pub use parser::{parse_query, parse_statement};
