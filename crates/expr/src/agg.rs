//! Aggregate function calls and their incremental accumulators.

use crate::expr::Expr;
use crate::layout::RowLayout;
use fto_common::{ColSet, Result, Value};
use std::collections::HashSet;
use std::fmt;

/// Aggregate functions supported by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)` when the argument is a literal.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl AggFunc {
    /// The SQL name of the function.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// An aggregate call appearing in a GROUP BY output list.
#[derive(Clone, PartialEq, Debug)]
pub struct AggCall {
    /// The function.
    pub func: AggFunc,
    /// Argument expression.
    pub arg: Expr,
    /// SQL `DISTINCT` inside the call (`sum(distinct x)`).
    pub distinct: bool,
}

impl AggCall {
    /// Constructs an aggregate call.
    pub fn new(func: AggFunc, arg: Expr) -> Self {
        AggCall {
            func,
            arg,
            distinct: false,
        }
    }

    /// Marks the call as `DISTINCT`.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Columns referenced by the argument.
    pub fn cols(&self) -> ColSet {
        self.arg.cols()
    }

    /// Creates a fresh accumulator for this call.
    pub fn accumulator(&self) -> Accumulator {
        Accumulator {
            func: self.func,
            distinct: self.distinct,
            seen: if self.distinct {
                Some(HashSet::new())
            } else {
                None
            },
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            min: None,
            max: None,
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}{})",
            self.func.name(),
            if self.distinct { "distinct " } else { "" },
            self.arg
        )
    }
}

/// Incremental state for one aggregate over one group.
#[derive(Clone, Debug)]
pub struct Accumulator {
    func: AggFunc,
    distinct: bool,
    seen: Option<HashSet<Value>>,
    count: u64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Feeds one input row; NULL arguments are skipped per SQL semantics.
    pub fn update(&mut self, call: &AggCall, row: &[Value], layout: &RowLayout) -> Result<()> {
        self.update_value(call.arg.eval(row, layout)?);
        Ok(())
    }

    /// Feeds one already-evaluated argument value (the columnar group-by
    /// path evaluates argument expressions batch-at-a-time and then feeds
    /// the column slots here). Semantics identical to
    /// [`Accumulator::update`].
    pub fn update_value(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        if self.distinct {
            let seen = self.seen.as_mut().expect("distinct accumulator has set");
            if !seen.insert(v.clone()) {
                return;
            }
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match &v {
                Value::Int(i) => self.sum_i = self.sum_i.wrapping_add(*i),
                other => {
                    self.saw_float = true;
                    self.sum_f += other.as_double().unwrap_or(0.0);
                }
            },
            AggFunc::Min => {
                if self.min.as_ref().is_none_or(|m| v < *m) {
                    self.min = Some(v);
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().is_none_or(|m| v > *m) {
                    self.max = Some(v);
                }
            }
        }
    }

    /// Produces the final aggregate value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Double(self.sum_f + self.sum_i as f64)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double((self.sum_f + self.sum_i as f64) / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::ColId;

    fn layout() -> RowLayout {
        RowLayout::new(vec![ColId(0)])
    }

    fn feed(call: &AggCall, vals: &[Value]) -> Value {
        let l = layout();
        let mut acc = call.accumulator();
        for v in vals {
            acc.update(call, std::slice::from_ref(v), &l).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn sum_int() {
        let call = AggCall::new(AggFunc::Sum, Expr::col(ColId(0)));
        let out = feed(&call, &[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(out, Value::Int(6));
    }

    #[test]
    fn sum_mixed_widens() {
        let call = AggCall::new(AggFunc::Sum, Expr::col(ColId(0)));
        let out = feed(&call, &[Value::Int(1), Value::Double(0.5)]);
        assert_eq!(out, Value::Double(1.5));
    }

    #[test]
    fn sum_of_empty_is_null() {
        let call = AggCall::new(AggFunc::Sum, Expr::col(ColId(0)));
        assert_eq!(feed(&call, &[]), Value::Null);
        assert_eq!(feed(&call, &[Value::Null]), Value::Null);
    }

    #[test]
    fn count_skips_nulls() {
        let call = AggCall::new(AggFunc::Count, Expr::col(ColId(0)));
        let out = feed(&call, &[Value::Int(1), Value::Null, Value::Int(2)]);
        assert_eq!(out, Value::Int(2));
    }

    #[test]
    fn count_star_counts_everything_nonnull() {
        // COUNT(*) is modelled as COUNT(1).
        let call = AggCall::new(AggFunc::Count, Expr::int(1));
        let out = feed(&call, &[Value::Null, Value::Null]);
        assert_eq!(out, Value::Int(2));
    }

    #[test]
    fn min_max() {
        let call = AggCall::new(AggFunc::Min, Expr::col(ColId(0)));
        assert_eq!(feed(&call, &[Value::Int(5), Value::Int(2)]), Value::Int(2));
        let call = AggCall::new(AggFunc::Max, Expr::col(ColId(0)));
        assert_eq!(
            feed(&call, &[Value::str("a"), Value::str("c"), Value::str("b")]),
            Value::str("c")
        );
        let call = AggCall::new(AggFunc::Max, Expr::col(ColId(0)));
        assert_eq!(feed(&call, &[]), Value::Null);
    }

    #[test]
    fn avg() {
        let call = AggCall::new(AggFunc::Avg, Expr::col(ColId(0)));
        let out = feed(&call, &[Value::Int(1), Value::Int(2)]);
        assert_eq!(out, Value::Double(1.5));
        assert_eq!(feed(&call, &[]), Value::Null);
    }

    #[test]
    fn distinct_sum() {
        let call = AggCall::new(AggFunc::Sum, Expr::col(ColId(0))).distinct();
        let out = feed(
            &call,
            &[Value::Int(2), Value::Int(2), Value::Int(3), Value::Int(3)],
        );
        assert_eq!(out, Value::Int(5));
    }

    #[test]
    fn distinct_count() {
        let call = AggCall::new(AggFunc::Count, Expr::col(ColId(0))).distinct();
        let out = feed(&call, &[Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(out, Value::Int(2));
    }

    #[test]
    fn display() {
        let call = AggCall::new(AggFunc::Sum, Expr::col(ColId(0))).distinct();
        assert_eq!(call.to_string(), "sum(distinct c0)");
    }
}
