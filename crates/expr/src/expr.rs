//! Scalar expressions and their evaluation.

use crate::layout::RowLayout;
use fto_common::{ColId, ColSet, FtoError, Result, Value};
use std::fmt;

/// Binary arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl ArithOp {
    fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression over query columns.
///
/// Expressions are deliberately small: column references, literals, and
/// arithmetic are all the paper's workloads (including TPC-D Q3's
/// `l_extendedprice * (1 - l_discount)`) require. Aggregate calls are a
/// separate type ([`crate::AggCall`]) because they only appear in GROUP BY
/// output lists.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Reference to a query column.
    Col(ColId),
    /// A literal constant.
    Lit(Value),
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// Column reference constructor.
    pub fn col(c: ColId) -> Expr {
        Expr::Col(c)
    }

    /// Integer literal constructor.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Arithmetic constructor.
    pub fn arith(op: ArithOp, left: Expr, right: Expr) -> Expr {
        Expr::Arith {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// If the expression is a bare column reference, returns it.
    pub fn as_col(&self) -> Option<ColId> {
        match self {
            Expr::Col(c) => Some(*c),
            _ => None,
        }
    }

    /// If the expression is a literal, returns it.
    pub fn as_lit(&self) -> Option<&Value> {
        match self {
            Expr::Lit(v) => Some(v),
            _ => None,
        }
    }

    /// Collects every column referenced by the expression into `out`.
    pub fn collect_cols(&self, out: &mut ColSet) {
        match self {
            Expr::Col(c) => {
                out.insert(*c);
            }
            Expr::Lit(_) => {}
            Expr::Arith { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
        }
    }

    /// The set of columns referenced by the expression.
    pub fn cols(&self) -> ColSet {
        let mut s = ColSet::new();
        self.collect_cols(&mut s);
        s
    }

    /// Rewrites every column reference through `f` (used when the planner
    /// remaps columns, e.g. during homogenization or view merging).
    pub fn map_cols(&self, f: &mut impl FnMut(ColId) -> ColId) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(f(*c)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(left.map_cols(f)),
                right: Box::new(right.map_cols(f)),
            },
        }
    }

    /// Evaluates the expression against a row.
    ///
    /// Arithmetic on NULL yields NULL; integer arithmetic stays integral,
    /// any float operand widens the result. Division by zero yields NULL
    /// (the engine's deliberate, non-erroring choice for workload data).
    pub fn eval(&self, row: &[Value], layout: &RowLayout) -> Result<Value> {
        match self {
            Expr::Col(c) => {
                let pos = layout.position(*c).ok_or_else(|| {
                    FtoError::internal(format!("column {c} missing from row layout"))
                })?;
                Ok(row[pos].clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Arith { op, left, right } => {
                let l = left.eval(row, layout)?;
                let r = right.eval(row, layout)?;
                eval_arith(*op, &l, &r)
            }
        }
    }
}

fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
        }),
        _ => {
            let (a, b) = match (l.as_double(), r.as_double()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(FtoError::Exec(format!(
                        "cannot apply {} to {l} and {r}",
                        op.symbol()
                    )))
                }
            };
            Ok(match op {
                ArithOp::Add => Value::Double(a + b),
                ArithOp::Sub => Value::Double(a - b),
                ArithOp::Mul => Value::Double(a * b),
                ArithOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
            })
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    fn layout() -> RowLayout {
        RowLayout::new(vec![c(0), c(1), c(2)])
    }

    #[test]
    fn eval_column_and_literal() {
        let row = [Value::Int(10), Value::str("x"), Value::Null];
        let l = layout();
        assert_eq!(Expr::col(c(0)).eval(&row, &l).unwrap(), Value::Int(10));
        assert_eq!(Expr::int(7).eval(&row, &l).unwrap(), Value::Int(7));
    }

    #[test]
    fn eval_missing_column_is_internal_error() {
        let row = [Value::Int(10)];
        let l = RowLayout::new(vec![c(0)]);
        let err = Expr::col(c(5)).eval(&row, &l).unwrap_err();
        assert!(matches!(err, FtoError::Internal(_)));
    }

    #[test]
    fn integer_arithmetic() {
        let l = layout();
        let row = [Value::Int(10), Value::Int(3), Value::Null];
        let e = Expr::arith(ArithOp::Add, Expr::col(c(0)), Expr::col(c(1)));
        assert_eq!(e.eval(&row, &l).unwrap(), Value::Int(13));
        let e = Expr::arith(ArithOp::Div, Expr::col(c(0)), Expr::col(c(1)));
        assert_eq!(e.eval(&row, &l).unwrap(), Value::Int(3));
        let e = Expr::arith(ArithOp::Div, Expr::col(c(0)), Expr::int(0));
        assert_eq!(e.eval(&row, &l).unwrap(), Value::Null);
    }

    #[test]
    fn mixed_arithmetic_widens() {
        let l = layout();
        let row = [Value::Int(4), Value::Double(0.5), Value::Null];
        let e = Expr::arith(ArithOp::Mul, Expr::col(c(0)), Expr::col(c(1)));
        assert_eq!(e.eval(&row, &l).unwrap(), Value::Double(2.0));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let l = layout();
        let row = [Value::Int(4), Value::Int(1), Value::Null];
        let e = Expr::arith(ArithOp::Add, Expr::col(c(2)), Expr::col(c(0)));
        assert_eq!(e.eval(&row, &l).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_on_strings_errors() {
        let l = layout();
        let row = [Value::str("a"), Value::Int(1), Value::Null];
        let e = Expr::arith(ArithOp::Add, Expr::col(c(0)), Expr::col(c(1)));
        assert!(e.eval(&row, &l).is_err());
    }

    #[test]
    fn q3_revenue_expression() {
        // l_extendedprice * (1 - l_discount)
        let l = RowLayout::new(vec![c(0), c(1)]);
        let row = [Value::Double(100.0), Value::Double(0.05)];
        let e = Expr::arith(
            ArithOp::Mul,
            Expr::col(c(0)),
            Expr::arith(ArithOp::Sub, Expr::int(1), Expr::col(c(1))),
        );
        assert_eq!(e.eval(&row, &l).unwrap(), Value::Double(95.0));
        assert_eq!(e.to_string(), "(c0 * (1 - c1))");
    }

    #[test]
    fn collects_columns() {
        let e = Expr::arith(ArithOp::Add, Expr::col(c(1)), Expr::col(c(2)));
        assert_eq!(e.cols(), ColSet::from_cols([c(1), c(2)]));
        assert!(Expr::int(1).cols().is_empty());
    }

    #[test]
    fn map_cols_rewrites() {
        let e = Expr::arith(ArithOp::Add, Expr::col(c(1)), Expr::int(2));
        let e2 = e.map_cols(&mut |col| ColId(col.0 + 10));
        assert_eq!(e2.cols(), ColSet::from_cols([c(11)]));
    }

    #[test]
    fn as_col_and_as_lit() {
        assert_eq!(Expr::col(c(3)).as_col(), Some(c(3)));
        assert_eq!(Expr::int(1).as_col(), None);
        assert_eq!(Expr::int(1).as_lit(), Some(&Value::Int(1)));
        assert_eq!(Expr::col(c(3)).as_lit(), None);
    }
}
