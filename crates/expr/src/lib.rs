//! Scalar expressions, predicates, and aggregates for the fto engine.
//!
//! This crate supplies the expression substrate the paper's techniques
//! analyse:
//!
//! * [`Expr`] — scalar expressions over query columns, evaluated against
//!   rows via a [`RowLayout`].
//! * [`Predicate`] — comparisons between expressions, with the structural
//!   *analysis* that order optimization feeds on: classifying a predicate
//!   as `col = col` (an equivalence-class generator), `col = constant`
//!   (an "empty-headed" functional dependency, per §4.1 of the paper), or
//!   opaque.
//! * [`AggCall`] — aggregate function calls for GROUP BY processing.

#![deny(missing_docs)]

pub mod agg;
pub mod expr;
pub mod layout;
pub mod predicate;
pub mod vector;

pub use agg::{AggCall, AggFunc};
pub use expr::{ArithOp, Expr};
pub use layout::RowLayout;
pub use predicate::{CompareOp, PredClass, PredId, Predicate};
