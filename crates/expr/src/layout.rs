//! [`RowLayout`]: the mapping from query-scoped [`ColId`]s to positions in
//! a physical row.
//!
//! Every stream in a plan carries a layout describing which columns its
//! rows contain and in what order. Expression evaluation resolves column
//! references through the layout.

use fto_common::{ColId, ColSet};

/// Maps [`ColId`]s to row positions.
///
/// Lookup is O(1) via a dense reverse table indexed by `ColId`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowLayout {
    cols: Vec<ColId>,
    /// reverse[col.index()] = position + 1; 0 means absent.
    reverse: Vec<u32>,
}

impl RowLayout {
    /// Builds a layout from the column order of a row.
    ///
    /// # Panics
    /// Panics if the same column appears twice.
    pub fn new(cols: impl Into<Vec<ColId>>) -> Self {
        let cols = cols.into();
        let max = cols.iter().map(|c| c.index()).max().map_or(0, |m| m + 1);
        let mut reverse = vec![0u32; max];
        for (pos, c) in cols.iter().enumerate() {
            assert_eq!(reverse[c.index()], 0, "duplicate column {c} in layout");
            reverse[c.index()] = pos as u32 + 1;
        }
        RowLayout { cols, reverse }
    }

    /// The columns of the row, in physical order.
    pub fn cols(&self) -> &[ColId] {
        &self.cols
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Position of `col` in the row, if present.
    #[inline]
    pub fn position(&self, col: ColId) -> Option<usize> {
        match self.reverse.get(col.index()) {
            Some(&p) if p != 0 => Some(p as usize - 1),
            _ => None,
        }
    }

    /// True when the layout carries `col`.
    pub fn contains(&self, col: ColId) -> bool {
        self.position(col).is_some()
    }

    /// True when the layout carries every column of `set`.
    pub fn contains_all(&self, set: &ColSet) -> bool {
        set.iter().all(|c| self.contains(c))
    }

    /// The columns as a [`ColSet`].
    pub fn col_set(&self) -> ColSet {
        self.cols.iter().copied().collect()
    }

    /// Builds the layout of `self` concatenated with `other`
    /// (left row followed by right row, as join operators produce).
    pub fn concat(&self, other: &RowLayout) -> RowLayout {
        let mut cols = self.cols.clone();
        cols.extend_from_slice(&other.cols);
        RowLayout::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    #[test]
    fn positions() {
        let l = RowLayout::new(vec![c(5), c(2), c(9)]);
        assert_eq!(l.position(c(5)), Some(0));
        assert_eq!(l.position(c(2)), Some(1));
        assert_eq!(l.position(c(9)), Some(2));
        assert_eq!(l.position(c(0)), None);
        assert_eq!(l.position(c(100)), None);
        assert_eq!(l.arity(), 3);
    }

    #[test]
    fn contains_all() {
        let l = RowLayout::new(vec![c(1), c(2)]);
        assert!(l.contains_all(&ColSet::from_cols([c(1)])));
        assert!(l.contains_all(&ColSet::from_cols([c(1), c(2)])));
        assert!(!l.contains_all(&ColSet::from_cols([c(1), c(3)])));
        assert!(l.contains_all(&ColSet::new()));
    }

    #[test]
    fn concat_layouts() {
        let l = RowLayout::new(vec![c(1)]).concat(&RowLayout::new(vec![c(4), c(2)]));
        assert_eq!(l.cols(), &[c(1), c(4), c(2)]);
        assert_eq!(l.position(c(2)), Some(2));
    }

    #[test]
    fn col_set_roundtrip() {
        let l = RowLayout::new(vec![c(3), c(1)]);
        assert_eq!(l.col_set(), ColSet::from_cols([c(1), c(3)]));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        let _ = RowLayout::new(vec![c(1), c(1)]);
    }
}
