//! Vectorized predicate and expression evaluation over columnar batches.
//!
//! The executor's hot paths call these instead of the per-row
//! [`Predicate::eval`] / [`Expr::eval`]: predicates refine a selection
//! vector with one type dispatch per *column* (tight monomorphic loops
//! over the typed vectors), and projections evaluate whole columns —
//! a bare column reference is an `Arc` clone, numeric arithmetic runs a
//! per-type loop.
//!
//! Every kernel decides exactly as the row evaluator does: comparisons go
//! through the same total order ([`cmp_f64_nan_high`], [`cmp_int_double`],
//! byte-wise string compare), NULL comparisons are false, and arithmetic
//! is only vectorized over numeric columns — where it cannot error — so
//! anything that *could* diverge from row-at-a-time semantics (mixed-type
//! columns, string arithmetic) falls back to materializing rows and
//! running the row evaluator. The differential suites hold the two paths
//! bit-identical.

use crate::expr::{ArithOp, Expr};
use crate::layout::RowLayout;
use crate::predicate::{CompareOp, Predicate};
use fto_common::column::{Batch, Bitmap, Column, ColumnData};
use fto_common::value::{cmp_f64_nan_high, cmp_int_double};
use fto_common::{FtoError, Result, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Refines `sel` (candidate row indices into `batch`, ascending) to the
/// rows satisfying `pred`, with SQL three-valued logic exactly as
/// [`Predicate::eval`]: comparisons involving NULL filter the row.
///
/// Simple shapes (column/arith vs. literal, column vs. column over typed
/// vectors) run columnar kernels; anything else evaluates row-at-a-time,
/// but only over the still-selected rows so error behavior matches the
/// short-circuiting row path.
pub fn filter_selection(
    pred: &Predicate,
    batch: &Batch,
    layout: &RowLayout,
    sel: &mut Vec<u32>,
) -> Result<()> {
    match pred.op {
        CompareOp::IsNull | CompareOp::IsNotNull => {
            if let Some(col) = try_eval_column(&pred.left, batch, layout)? {
                let want_null = pred.op == CompareOp::IsNull;
                sel.retain(|&i| col.is_valid(i as usize) != want_null);
                return Ok(());
            }
        }
        _ => {
            // Column-vs-literal first: the common case, no constant
            // column materialization.
            if let Some(lit) = pred.right.as_lit() {
                if let Some(col) = try_eval_column(&pred.left, batch, layout)? {
                    compare_col_lit(pred.op, &col, lit, sel);
                    return Ok(());
                }
            } else if let Some(lit) = pred.left.as_lit() {
                if let Some(col) = try_eval_column(&pred.right, batch, layout)? {
                    compare_col_lit(pred.op.flipped(), &col, lit, sel);
                    return Ok(());
                }
            } else if let (Some(l), Some(r)) = (
                try_eval_column(&pred.left, batch, layout)?,
                try_eval_column(&pred.right, batch, layout)?,
            ) {
                compare_col_col(pred.op, &l, &r, sel);
                return Ok(());
            }
        }
    }
    // Row fallback over the surviving candidates only.
    let mut out = Vec::with_capacity(sel.len());
    for &i in sel.iter() {
        if pred.eval(&batch.row(i as usize), layout)? {
            out.push(i);
        }
    }
    *sel = out;
    Ok(())
}

/// Evaluates each projection expression over the whole batch, returning
/// the projected batch. Vectorizable expressions (column references,
/// literals, numeric arithmetic) run columnar; the rest share one row
/// materialization of the batch.
pub fn project_batch(exprs: &[Expr], batch: &Batch, layout: &RowLayout) -> Result<Batch> {
    let mut cols: Vec<Option<Arc<Column>>> = Vec::with_capacity(exprs.len());
    let mut need_rows = false;
    for e in exprs {
        let c = try_eval_column(e, batch, layout)?;
        need_rows |= c.is_none();
        cols.push(c);
    }
    if need_rows {
        let rows = batch.to_rows();
        for (e, slot) in exprs.iter().zip(cols.iter_mut()) {
            if slot.is_none() {
                let mut vals = Vec::with_capacity(rows.len());
                for row in &rows {
                    vals.push(e.eval(row, layout)?);
                }
                *slot = Some(Arc::new(Column::from_values(vals.iter())));
            }
        }
    }
    let cols: Vec<Arc<Column>> = cols
        .into_iter()
        .map(|c| c.expect("all slots filled"))
        .collect();
    Batch::from_columns_with_len(cols, batch.len())
}

/// Evaluates `expr` as a whole column when it is vectorizable:
///
/// * a column reference — `Arc` clone of the batch column (errors like
///   the row path when the column is missing from the layout);
/// * a literal — materialized constant column;
/// * arithmetic whose operands vectorize to numeric (`Int64`/`Float64`)
///   columns — typed loops reproducing [`Expr::eval`]'s semantics
///   (wrapping integer ops, division by zero → NULL, any float operand
///   widens, NULL propagates); numeric arithmetic cannot error, so
///   evaluating unselected rows is unobservable.
///
/// Returns `Ok(None)` when the expression must run row-at-a-time
/// (arithmetic over strings, dates, booleans, or mixed-type columns —
/// where the row evaluator may error).
pub fn try_eval_column(
    expr: &Expr,
    batch: &Batch,
    layout: &RowLayout,
) -> Result<Option<Arc<Column>>> {
    match expr {
        Expr::Col(c) => {
            let pos = layout
                .position(*c)
                .ok_or_else(|| FtoError::internal(format!("column {c} missing from row layout")))?;
            Ok(Some(Arc::clone(batch.column(pos))))
        }
        Expr::Lit(v) => Ok(Some(Arc::new(constant_column(v, batch.len())))),
        Expr::Arith { op, left, right } => {
            let (Some(l), Some(r)) = (
                try_eval_column(left, batch, layout)?,
                try_eval_column(right, batch, layout)?,
            ) else {
                return Ok(None);
            };
            Ok(arith_columns(*op, &l, &r).map(Arc::new))
        }
    }
}

/// A column of `n` copies of `v`.
fn constant_column(v: &Value, n: usize) -> Column {
    let (data, validity) = match v {
        Value::Null => (ColumnData::Int64(vec![0; n]), Some(Bitmap::new(n, false))),
        Value::Int(x) => (ColumnData::Int64(vec![*x; n]), None),
        Value::Double(x) => (ColumnData::Float64(vec![*x; n]), None),
        Value::Str(s) => {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut bytes = Vec::with_capacity(n * s.len());
            offsets.push(0u32);
            for _ in 0..n {
                bytes.extend_from_slice(s.as_bytes());
                offsets.push(bytes.len() as u32);
            }
            (ColumnData::Utf8 { offsets, bytes }, None)
        }
        Value::Date(d) => (ColumnData::Date32(vec![*d; n]), None),
        Value::Bool(b) => (ColumnData::Bool(vec![*b; n]), None),
    };
    Column { data, validity }
}

/// Reads a column slot as `f64`, widening integers — the vectorized
/// equivalent of [`Value::as_double`] for numeric columns.
fn numeric_as_f64(col: &Column) -> Option<Vec<f64>> {
    match &col.data {
        ColumnData::Int64(v) => Some(v.iter().map(|&x| x as f64).collect()),
        ColumnData::Float64(v) => Some(v.clone()),
        _ => None,
    }
}

/// Typed arithmetic over two equal-length columns; `None` when either
/// operand is non-numeric (row fallback required).
fn arith_columns(op: ArithOp, l: &Column, r: &Column) -> Option<Column> {
    let n = l.len();
    debug_assert_eq!(n, r.len());
    let int_pair = matches!(
        (&l.data, &r.data),
        (ColumnData::Int64(_), ColumnData::Int64(_))
    );
    if int_pair {
        let (ColumnData::Int64(a), ColumnData::Int64(b)) = (&l.data, &r.data) else {
            unreachable!()
        };
        let mut out = Vec::with_capacity(n);
        let mut bm = Bitmap::new(n, true);
        let mut any_null = false;
        for i in 0..n {
            if !l.is_valid(i) || !r.is_valid(i) || (op == ArithOp::Div && b[i] == 0) {
                bm.set(i, false);
                any_null = true;
                out.push(0);
                continue;
            }
            out.push(match op {
                ArithOp::Add => a[i].wrapping_add(b[i]),
                ArithOp::Sub => a[i].wrapping_sub(b[i]),
                ArithOp::Mul => a[i].wrapping_mul(b[i]),
                ArithOp::Div => a[i].wrapping_div(b[i]),
            });
        }
        return Some(Column {
            data: ColumnData::Int64(out),
            validity: any_null.then_some(bm),
        });
    }
    let (a, b) = (numeric_as_f64(l)?, numeric_as_f64(r)?);
    let mut out = Vec::with_capacity(n);
    let mut bm = Bitmap::new(n, true);
    let mut any_null = false;
    for i in 0..n {
        if !l.is_valid(i) || !r.is_valid(i) || (op == ArithOp::Div && b[i] == 0.0) {
            bm.set(i, false);
            any_null = true;
            out.push(0.0);
            continue;
        }
        out.push(match op {
            ArithOp::Add => a[i] + b[i],
            ArithOp::Sub => a[i] - b[i],
            ArithOp::Mul => a[i] * b[i],
            ArithOp::Div => a[i] / b[i],
        });
    }
    Some(Column {
        data: ColumnData::Float64(out),
        validity: any_null.then_some(bm),
    })
}

/// Retains in `sel` the rows where `col[i] op lit` holds (false on NULL
/// either side). One type dispatch, then a tight per-type loop.
fn compare_col_lit(op: CompareOp, col: &Column, lit: &Value, sel: &mut Vec<u32>) {
    if lit.is_null() {
        sel.clear();
        return;
    }
    macro_rules! kernel {
        ($i:ident, $ord:expr) => {
            sel.retain(|&ix| {
                let $i = ix as usize;
                col.is_valid($i) && op.evaluate($ord)
            })
        };
    }
    match (&col.data, lit) {
        (ColumnData::Int64(vals), Value::Int(b)) => kernel!(i, vals[i].cmp(b)),
        (ColumnData::Int64(vals), Value::Double(b)) => {
            kernel!(i, cmp_int_double(vals[i], *b))
        }
        (ColumnData::Float64(vals), Value::Double(b)) => {
            kernel!(i, cmp_f64_nan_high(vals[i], *b))
        }
        (ColumnData::Float64(vals), Value::Int(b)) => {
            kernel!(i, cmp_int_double(*b, vals[i]).reverse())
        }
        (ColumnData::Utf8 { offsets, bytes }, Value::Str(s)) => {
            let needle = s.as_bytes();
            sel.retain(|&ix| {
                let i = ix as usize;
                col.is_valid(i)
                    && op.evaluate(bytes[offsets[i] as usize..offsets[i + 1] as usize].cmp(needle))
            });
        }
        (ColumnData::Date32(vals), Value::Date(b)) => kernel!(i, vals[i].cmp(b)),
        (ColumnData::Bool(vals), Value::Bool(b)) => kernel!(i, vals[i].cmp(b)),
        (ColumnData::Mixed(vals), _) => {
            sel.retain(|&ix| {
                let v = &vals[ix as usize];
                !v.is_null() && op.evaluate(v.total_cmp(lit))
            });
        }
        // Cross-type comparison (e.g. an Int64 column against a string
        // literal): rank by type tag exactly as `Value::total_cmp`.
        _ => {
            sel.retain(|&ix| {
                let i = ix as usize;
                col.is_valid(i) && op.evaluate(col.value(i).total_cmp(lit))
            });
        }
    }
}

/// Retains in `sel` the rows where `l[i] op r[i]` holds (false when
/// either side is NULL).
fn compare_col_col(op: CompareOp, l: &Column, r: &Column, sel: &mut Vec<u32>) {
    let ord_fn: Option<Box<dyn Fn(usize) -> Ordering>> = match (&l.data, &r.data) {
        (ColumnData::Int64(a), ColumnData::Int64(b)) => Some(Box::new(move |i| a[i].cmp(&b[i]))),
        (ColumnData::Float64(a), ColumnData::Float64(b)) => {
            Some(Box::new(move |i| cmp_f64_nan_high(a[i], b[i])))
        }
        (ColumnData::Int64(a), ColumnData::Float64(b)) => {
            Some(Box::new(move |i| cmp_int_double(a[i], b[i])))
        }
        (ColumnData::Float64(a), ColumnData::Int64(b)) => {
            Some(Box::new(move |i| cmp_int_double(b[i], a[i]).reverse()))
        }
        (
            ColumnData::Utf8 { offsets, bytes },
            ColumnData::Utf8 {
                offsets: ro,
                bytes: rb,
            },
        ) => Some(Box::new(move |i| {
            bytes[offsets[i] as usize..offsets[i + 1] as usize]
                .cmp(&rb[ro[i] as usize..ro[i + 1] as usize])
        })),
        (ColumnData::Date32(a), ColumnData::Date32(b)) => Some(Box::new(move |i| a[i].cmp(&b[i]))),
        (ColumnData::Bool(a), ColumnData::Bool(b)) => Some(Box::new(move |i| a[i].cmp(&b[i]))),
        _ => None,
    };
    match ord_fn {
        Some(ord) => sel.retain(|&ix| {
            let i = ix as usize;
            l.is_valid(i) && r.is_valid(i) && op.evaluate(ord(i))
        }),
        // Mixed or cross-type columns: per-slot Value comparison, which
        // carries the exact total_cmp semantics (type-rank fallback).
        None => sel.retain(|&ix| {
            let i = ix as usize;
            l.is_valid(i) && r.is_valid(i) && op.evaluate(l.value(i).total_cmp(&r.value(i)))
        }),
    }
}

/// Evaluates each aggregate argument expression over the whole batch —
/// the vectorized front half of group-by accumulation. Falls back to
/// row-at-a-time per expression exactly like [`project_batch`].
pub fn eval_agg_args(args: &[Expr], batch: &Batch, layout: &RowLayout) -> Result<Vec<Arc<Column>>> {
    Ok(project_batch(args, batch, layout)?.columns().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::{ColId, Row};

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    fn rows(vals: Vec<Vec<Value>>) -> Vec<Row> {
        vals.into_iter().map(|r| r.into_boxed_slice()).collect()
    }

    fn sel_for(b: &Batch) -> Vec<u32> {
        (0..b.len() as u32).collect()
    }

    /// Runs the vectorized filter and the row evaluator and asserts they
    /// select the same rows.
    fn assert_matches_rows(pred: &Predicate, batch: &Batch, layout: &RowLayout) {
        let mut sel = sel_for(batch);
        filter_selection(pred, batch, layout, &mut sel).unwrap();
        let expect: Vec<u32> = (0..batch.len())
            .filter(|&i| pred.eval(&batch.row(i), layout).unwrap())
            .map(|i| i as u32)
            .collect();
        assert_eq!(sel, expect, "{pred}");
    }

    #[test]
    fn typed_compare_kernels_match_row_eval() {
        let rs = rows(vec![
            vec![
                Value::Int(3),
                Value::Double(1.5),
                Value::str("b"),
                Value::Date(10),
                Value::Bool(true),
            ],
            vec![
                Value::Null,
                Value::Double(f64::NAN),
                Value::Null,
                Value::Date(-4),
                Value::Bool(false),
            ],
            vec![
                Value::Int(-7),
                Value::Double(-0.0),
                Value::str("a\0x"),
                Value::Null,
                Value::Null,
            ],
        ]);
        let batch = Batch::from_rows(&rs);
        let layout = RowLayout::new((0..5).map(c).collect::<Vec<_>>());
        let lits = [
            Value::Int(0),
            Value::Double(0.0),
            Value::str("a\0x"),
            Value::Date(-4),
            Value::Bool(true),
            Value::Null,
            Value::Double(f64::NAN),
        ];
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            for col in 0..5u32 {
                for lit in &lits {
                    let p = Predicate::new(op, Expr::col(c(col)), Expr::Lit(lit.clone()));
                    assert_matches_rows(&p, &batch, &layout);
                    // Literal on the left.
                    let p = Predicate::new(op, Expr::Lit(lit.clone()), Expr::col(c(col)));
                    assert_matches_rows(&p, &batch, &layout);
                }
                for col2 in 0..5u32 {
                    let p = Predicate::new(op, Expr::col(c(col)), Expr::col(c(col2)));
                    assert_matches_rows(&p, &batch, &layout);
                }
            }
        }
        for col in 0..5u32 {
            assert_matches_rows(&Predicate::is_null(Expr::col(c(col))), &batch, &layout);
            assert_matches_rows(&Predicate::is_not_null(Expr::col(c(col))), &batch, &layout);
        }
    }

    #[test]
    fn arith_filter_matches_row_eval() {
        let rs = rows(vec![
            vec![Value::Int(4), Value::Int(0)],
            vec![Value::Int(-3), Value::Int(2)],
            vec![Value::Null, Value::Int(5)],
            vec![Value::Int(i64::MAX), Value::Int(1)],
        ]);
        let batch = Batch::from_rows(&rs);
        let layout = RowLayout::new(vec![c(0), c(1)]);
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div] {
            let e = Expr::arith(op, Expr::col(c(0)), Expr::col(c(1)));
            let p = Predicate::new(CompareOp::Gt, e, Expr::int(0));
            assert_matches_rows(&p, &batch, &layout);
        }
    }

    #[test]
    fn project_matches_row_eval() {
        let rs = rows(vec![
            vec![Value::Int(4), Value::Double(0.5), Value::str("s")],
            vec![Value::Null, Value::Double(2.0), Value::str("t")],
            vec![Value::Int(10), Value::Null, Value::Null],
        ]);
        let batch = Batch::from_rows(&rs);
        let layout = RowLayout::new(vec![c(0), c(1), c(2)]);
        let exprs = vec![
            Expr::col(c(2)),
            Expr::arith(ArithOp::Mul, Expr::col(c(0)), Expr::col(c(1))),
            Expr::arith(ArithOp::Div, Expr::col(c(0)), Expr::int(0)),
            Expr::int(7),
        ];
        let out = project_batch(&exprs, &batch, &layout).unwrap();
        for (i, row) in batch.to_rows().iter().enumerate() {
            for (j, e) in exprs.iter().enumerate() {
                let expect = e.eval(row, &layout).unwrap();
                let got = out.column(j).value(i);
                match (&got, &expect) {
                    (Value::Double(p), Value::Double(q)) => {
                        assert_eq!(p.to_bits(), q.to_bits())
                    }
                    _ => assert_eq!(got, expect),
                }
            }
        }
        // Bare column projection is an Arc clone, not a copy.
        assert!(Arc::ptr_eq(out.column(0), batch.column(2)));
    }

    #[test]
    fn row_fallback_only_touches_selected_rows() {
        // String arithmetic errors row-at-a-time; a prior predicate has
        // already deselected the poisoned row, so the fallback must not
        // evaluate it.
        let rs = rows(vec![
            vec![Value::str("x"), Value::Int(1)],
            vec![Value::Int(5), Value::Int(2)],
        ]);
        let batch = Batch::from_rows(&rs);
        let layout = RowLayout::new(vec![c(0), c(1)]);
        let p = Predicate::new(
            CompareOp::Gt,
            Expr::arith(ArithOp::Add, Expr::col(c(0)), Expr::col(c(1))),
            Expr::int(0),
        );
        let mut sel = vec![1u32];
        filter_selection(&p, &batch, &layout, &mut sel).unwrap();
        assert_eq!(sel, vec![1]);
    }
}
