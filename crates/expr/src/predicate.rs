//! Predicates and the structural analysis order optimization feeds on.
//!
//! The paper (§4.1) derives three kinds of information from applied
//! predicates:
//!
//! * `col = constant` ⇒ the empty-headed functional dependency `{} → {col}`
//!   (and a constant binding for the column's equivalence class);
//! * `col1 = col2` ⇒ the two FDs `{col1} → {col2}` and `{col2} → {col1}`,
//!   and membership of both columns in one equivalence class;
//! * everything else is opaque to order optimization but still filters rows.
//!
//! [`Predicate::classify`] performs exactly this analysis.

use crate::expr::Expr;
use crate::layout::RowLayout;
use fto_common::{ColId, ColSet, Result, Value};
use std::fmt;

/// Identifies a predicate within one query; used by the predicate property
/// (the set of predicates already applied to a stream).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PredId(pub u32);

impl PredId {
    /// Returns the id as a usize for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `IS NULL` (unary; the right operand is ignored).
    IsNull,
    /// `IS NOT NULL` (unary; the right operand is ignored).
    IsNotNull,
}

impl CompareOp {
    /// The SQL token for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::IsNull => "is null",
            CompareOp::IsNotNull => "is not null",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
            CompareOp::IsNull => CompareOp::IsNull,
            CompareOp::IsNotNull => CompareOp::IsNotNull,
        }
    }

    /// Whether an ordering between two non-null operands satisfies the
    /// operator; shared with the vectorized comparison kernels.
    pub(crate) fn evaluate(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
            // Unary null tests never reach the ordering path.
            CompareOp::IsNull | CompareOp::IsNotNull => false,
        }
    }
}

/// A single comparison predicate. Conjunctions are represented as slices of
/// predicates (the engine is conjunctive-normal-form only, like the paper's
/// examples).
#[derive(Clone, PartialEq, Debug)]
pub struct Predicate {
    /// Comparison operator.
    pub op: CompareOp,
    /// Left operand.
    pub left: Expr,
    /// Right operand.
    pub right: Expr,
}

/// The structural classification of a predicate for order optimization.
#[derive(Clone, PartialEq, Debug)]
pub enum PredClass {
    /// `col = constant` (either operand order). Generates `{} → {col}`.
    ColEqConst(ColId, Value),
    /// `col1 = col2`. Generates both FDs and one equivalence class.
    ColEqCol(ColId, ColId),
    /// Any other predicate: still filters, but contributes no order facts.
    Opaque,
}

impl Predicate {
    /// Constructs a predicate.
    pub fn new(op: CompareOp, left: Expr, right: Expr) -> Self {
        Predicate { op, left, right }
    }

    /// `left = right` convenience constructor.
    pub fn eq(left: Expr, right: Expr) -> Self {
        Predicate::new(CompareOp::Eq, left, right)
    }

    /// `col1 = col2` convenience constructor.
    pub fn col_eq_col(a: ColId, b: ColId) -> Self {
        Predicate::eq(Expr::col(a), Expr::col(b))
    }

    /// `col = constant` convenience constructor.
    pub fn col_eq_const(c: ColId, v: Value) -> Self {
        Predicate::eq(Expr::col(c), Expr::Lit(v))
    }

    /// Classifies the predicate per the paper's §4.1 taxonomy.
    ///
    /// A literal expression qualifies as a constant; the paper notes host
    /// variables and correlated columns also qualify, which in this engine
    /// surface as literals by the time planning happens.
    pub fn classify(&self) -> PredClass {
        if self.op != CompareOp::Eq {
            return PredClass::Opaque;
        }
        match (&self.left, &self.right) {
            (Expr::Col(a), Expr::Col(b)) => {
                if a == b {
                    PredClass::Opaque // x = x filters nulls but orders nothing new
                } else {
                    PredClass::ColEqCol(*a, *b)
                }
            }
            (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c)) => {
                PredClass::ColEqConst(*c, v.clone())
            }
            _ => PredClass::Opaque,
        }
    }

    /// True when this is an equality between two distinct columns.
    pub fn is_col_eq_col(&self) -> bool {
        matches!(self.classify(), PredClass::ColEqCol(..))
    }

    /// The columns referenced by both operands.
    pub fn cols(&self) -> ColSet {
        let mut s = self.left.cols();
        self.right.collect_cols(&mut s);
        s
    }

    /// Rewrites column references through `f`.
    pub fn map_cols(&self, f: &mut impl FnMut(ColId) -> ColId) -> Predicate {
        Predicate {
            op: self.op,
            left: self.left.map_cols(f),
            right: self.right.map_cols(f),
        }
    }

    /// `expr IS NULL` constructor.
    pub fn is_null(e: Expr) -> Self {
        Predicate::new(CompareOp::IsNull, e, Expr::Lit(Value::Null))
    }

    /// `expr IS NOT NULL` constructor.
    pub fn is_not_null(e: Expr) -> Self {
        Predicate::new(CompareOp::IsNotNull, e, Expr::Lit(Value::Null))
    }

    /// Evaluates the predicate against a row with SQL three-valued logic:
    /// a comparison involving NULL is *unknown* and therefore filters the
    /// row (returns `false`). `IS [NOT] NULL` are the exceptions — they
    /// are defined on NULL.
    pub fn eval(&self, row: &[Value], layout: &RowLayout) -> Result<bool> {
        let l = self.left.eval(row, layout)?;
        match self.op {
            CompareOp::IsNull => return Ok(l.is_null()),
            CompareOp::IsNotNull => return Ok(!l.is_null()),
            _ => {}
        }
        let r = self.right.eval(row, layout)?;
        if l.is_null() || r.is_null() {
            return Ok(false);
        }
        Ok(self.op.evaluate(l.total_cmp(&r)))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            CompareOp::IsNull | CompareOp::IsNotNull => {
                write!(f, "{} {}", self.left, self.op.symbol())
            }
            _ => write!(f, "{} {} {}", self.left, self.op.symbol(), self.right),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithOp;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    #[test]
    fn classify_col_eq_const() {
        let p = Predicate::col_eq_const(c(1), Value::Int(10));
        assert_eq!(p.classify(), PredClass::ColEqConst(c(1), Value::Int(10)));
        // Literal on the left too.
        let p = Predicate::eq(Expr::int(10), Expr::col(c(1)));
        assert_eq!(p.classify(), PredClass::ColEqConst(c(1), Value::Int(10)));
    }

    #[test]
    fn classify_col_eq_col() {
        let p = Predicate::col_eq_col(c(1), c(2));
        assert_eq!(p.classify(), PredClass::ColEqCol(c(1), c(2)));
    }

    #[test]
    fn classify_self_equality_is_opaque() {
        let p = Predicate::col_eq_col(c(1), c(1));
        assert_eq!(p.classify(), PredClass::Opaque);
    }

    #[test]
    fn classify_non_equality_is_opaque() {
        let p = Predicate::new(CompareOp::Lt, Expr::col(c(1)), Expr::int(5));
        assert_eq!(p.classify(), PredClass::Opaque);
        let p = Predicate::eq(
            Expr::arith(ArithOp::Add, Expr::col(c(1)), Expr::int(1)),
            Expr::int(5),
        );
        assert_eq!(p.classify(), PredClass::Opaque);
    }

    #[test]
    fn eval_comparisons() {
        let l = RowLayout::new(vec![c(0), c(1)]);
        let row = [Value::Int(3), Value::Int(5)];
        let lt = Predicate::new(CompareOp::Lt, Expr::col(c(0)), Expr::col(c(1)));
        assert!(lt.eval(&row, &l).unwrap());
        let ge = Predicate::new(CompareOp::Ge, Expr::col(c(0)), Expr::col(c(1)));
        assert!(!ge.eval(&row, &l).unwrap());
        let ne = Predicate::new(CompareOp::Ne, Expr::col(c(0)), Expr::col(c(1)));
        assert!(ne.eval(&row, &l).unwrap());
        let le = Predicate::new(CompareOp::Le, Expr::col(c(0)), Expr::int(3));
        assert!(le.eval(&row, &l).unwrap());
        let gt = Predicate::new(CompareOp::Gt, Expr::col(c(1)), Expr::int(3));
        assert!(gt.eval(&row, &l).unwrap());
    }

    #[test]
    fn eval_null_is_false() {
        let l = RowLayout::new(vec![c(0)]);
        let row = [Value::Null];
        for op in [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt] {
            let p = Predicate::new(op, Expr::col(c(0)), Expr::int(1));
            assert!(!p.eval(&row, &l).unwrap(), "{op:?}");
        }
    }

    #[test]
    fn is_null_predicates() {
        let l = RowLayout::new(vec![ColId(0)]);
        let p = Predicate::is_null(Expr::col(ColId(0)));
        assert!(p.eval(&[Value::Null], &l).unwrap());
        assert!(!p.eval(&[Value::Int(1)], &l).unwrap());
        let p = Predicate::is_not_null(Expr::col(ColId(0)));
        assert!(!p.eval(&[Value::Null], &l).unwrap());
        assert!(p.eval(&[Value::Int(1)], &l).unwrap());
        assert_eq!(p.classify(), PredClass::Opaque);
        assert_eq!(p.to_string(), "c0 is not null");
    }

    #[test]
    fn flipped_ops() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Le.flipped(), CompareOp::Ge);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
        assert_eq!(CompareOp::Ne.flipped(), CompareOp::Ne);
    }

    #[test]
    fn cols_union_of_sides() {
        let p = Predicate::new(
            CompareOp::Lt,
            Expr::arith(ArithOp::Add, Expr::col(c(1)), Expr::col(c(2))),
            Expr::col(c(3)),
        );
        assert_eq!(p.cols(), ColSet::from_cols([c(1), c(2), c(3)]));
    }

    #[test]
    fn display() {
        let p = Predicate::col_eq_col(c(1), c(2));
        assert_eq!(p.to_string(), "c1 = c2");
        assert_eq!(PredId(3).to_string(), "p3");
    }

    #[test]
    fn map_cols() {
        let p = Predicate::col_eq_col(c(1), c(2));
        let q = p.map_cols(&mut |col| ColId(col.0 + 1));
        assert_eq!(q.classify(), PredClass::ColEqCol(c(2), c(3)));
    }
}
