//! Algebraic laws of the [`ColSet`] bitset, checked against
//! `BTreeSet<u32>` as the model over many deterministic random cases.

use fto_common::{ColId, ColSet, Rng};
use std::collections::BTreeSet;

const CASES: u64 = 300;

fn random_model(rng: &mut Rng) -> BTreeSet<u32> {
    let n = rng.range_usize(0, 24);
    (0..n).map(|_| rng.range_i64(0, 300) as u32).collect()
}

fn to_colset(m: &BTreeSet<u32>) -> ColSet {
    m.iter().map(|&i| ColId(i)).collect()
}

#[test]
fn union_matches_model() {
    let mut rng = Rng::new(0xC01_5E71);
    for case in 0..CASES {
        let (a, b) = (random_model(&mut rng), random_model(&mut rng));
        let u = to_colset(&a).union(&to_colset(&b));
        let m: BTreeSet<u32> = a.union(&b).copied().collect();
        assert_eq!(u, to_colset(&m), "case {case}: {a:?} ∪ {b:?}");
    }
}

#[test]
fn intersection_matches_model() {
    let mut rng = Rng::new(0xC01_5E72);
    for case in 0..CASES {
        let (a, b) = (random_model(&mut rng), random_model(&mut rng));
        let i = to_colset(&a).intersection(&to_colset(&b));
        let m: BTreeSet<u32> = a.intersection(&b).copied().collect();
        assert_eq!(i, to_colset(&m), "case {case}: {a:?} ∩ {b:?}");
    }
}

#[test]
fn difference_matches_model() {
    let mut rng = Rng::new(0xC01_5E73);
    for case in 0..CASES {
        let (a, b) = (random_model(&mut rng), random_model(&mut rng));
        let d = to_colset(&a).difference(&to_colset(&b));
        let m: BTreeSet<u32> = a.difference(&b).copied().collect();
        assert_eq!(d, to_colset(&m), "case {case}: {a:?} ∖ {b:?}");
    }
}

#[test]
fn subset_matches_model() {
    let mut rng = Rng::new(0xC01_5E74);
    for case in 0..CASES {
        let (a, b) = (random_model(&mut rng), random_model(&mut rng));
        assert_eq!(
            to_colset(&a).is_subset(&to_colset(&b)),
            a.is_subset(&b),
            "case {case}"
        );
        assert_eq!(
            to_colset(&a).is_disjoint(&to_colset(&b)),
            a.is_disjoint(&b),
            "case {case}"
        );
        // And reflexively with a subset of itself.
        assert!(to_colset(&a).is_subset(&to_colset(&a)));
    }
}

#[test]
fn iteration_is_sorted_and_complete() {
    let mut rng = Rng::new(0xC01_5E75);
    for case in 0..CASES {
        let a = random_model(&mut rng);
        let s = to_colset(&a);
        let got: Vec<u32> = s.iter().map(|c| c.0).collect();
        let want: Vec<u32> = a.iter().copied().collect();
        assert_eq!(got, want, "case {case}");
        assert_eq!(s.len(), a.len());
        assert_eq!(s.is_empty(), a.is_empty());
    }
}

#[test]
fn insert_remove_roundtrip() {
    let mut rng = Rng::new(0xC01_5E76);
    for case in 0..CASES {
        let a = random_model(&mut rng);
        let extra = rng.range_i64(0, 300) as u32;
        let mut s = to_colset(&a);
        let was_present = a.contains(&extra);
        assert_eq!(s.insert(ColId(extra)), !was_present, "case {case}");
        assert!(s.contains(ColId(extra)));
        assert!(s.remove(ColId(extra)));
        if was_present {
            assert_ne!(s, to_colset(&a), "case {case}");
        } else {
            assert_eq!(s, to_colset(&a), "case {case}");
        }
    }
}

#[test]
fn union_with_grows_exactly_when_needed() {
    let mut rng = Rng::new(0xC01_5E77);
    for case in 0..CASES {
        let (a, b) = (random_model(&mut rng), random_model(&mut rng));
        let mut s = to_colset(&a);
        let grew = s.union_with(&to_colset(&b));
        assert_eq!(grew, !b.is_subset(&a), "case {case}: {a:?} ∪= {b:?}");
    }
}
