//! Algebraic laws of the [`ColSet`] bitset, checked against
//! `BTreeSet<u32>` as the model.

use fto_common::{ColId, ColSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn model_pair() -> impl Strategy<Value = (BTreeSet<u32>, BTreeSet<u32>)> {
    let set = proptest::collection::btree_set(0u32..300, 0..24);
    (set.clone(), set)
}

fn to_colset(m: &BTreeSet<u32>) -> ColSet {
    m.iter().map(|&i| ColId(i)).collect()
}

proptest! {
    #[test]
    fn union_matches_model((a, b) in model_pair()) {
        let u = to_colset(&a).union(&to_colset(&b));
        let m: BTreeSet<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(u, to_colset(&m));
    }

    #[test]
    fn intersection_matches_model((a, b) in model_pair()) {
        let i = to_colset(&a).intersection(&to_colset(&b));
        let m: BTreeSet<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(i, to_colset(&m));
    }

    #[test]
    fn difference_matches_model((a, b) in model_pair()) {
        let d = to_colset(&a).difference(&to_colset(&b));
        let m: BTreeSet<u32> = a.difference(&b).copied().collect();
        prop_assert_eq!(d, to_colset(&m));
    }

    #[test]
    fn subset_matches_model((a, b) in model_pair()) {
        prop_assert_eq!(to_colset(&a).is_subset(&to_colset(&b)), a.is_subset(&b));
        prop_assert_eq!(to_colset(&a).is_disjoint(&to_colset(&b)), a.is_disjoint(&b));
    }

    #[test]
    fn iteration_is_sorted_and_complete(a in proptest::collection::btree_set(0u32..300, 0..24)) {
        let s = to_colset(&a);
        let got: Vec<u32> = s.iter().map(|c| c.0).collect();
        let want: Vec<u32> = a.iter().copied().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(s.len(), a.len());
        prop_assert_eq!(s.is_empty(), a.is_empty());
    }

    #[test]
    fn insert_remove_roundtrip(
        a in proptest::collection::btree_set(0u32..300, 0..24),
        extra in 0u32..300,
    ) {
        let mut s = to_colset(&a);
        let was_present = a.contains(&extra);
        prop_assert_eq!(s.insert(ColId(extra)), !was_present);
        prop_assert!(s.contains(ColId(extra)));
        prop_assert!(s.remove(ColId(extra)));
        if was_present {
            prop_assert_ne!(s.clone(), to_colset(&a));
        } else {
            prop_assert_eq!(s, to_colset(&a));
        }
    }

    #[test]
    fn union_with_grows_exactly_when_needed((a, b) in model_pair()) {
        let mut s = to_colset(&a);
        let grew = s.union_with(&to_colset(&b));
        prop_assert_eq!(grew, !b.is_subset(&a));
    }
}
