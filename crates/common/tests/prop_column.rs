//! Property tests for the columnar batch layer: `from_rows → to_rows`
//! must be an exact identity over adversarial value mixes, and the
//! column-at-a-time sort-key encoder must be byte-identical to the
//! per-row [`fto_common::sortkey`] encoder on the same fuzz corpus.

use fto_common::column::{encode_batch_keys, encode_batch_keys_arena};
use fto_common::{sortkey, Batch, Direction, Rng, Row, Value};

const CASES: u64 = 120;

/// One fuzzed value, hitting every corner the codec and the column
/// round-trip must preserve exactly: NULLs, NaN, signed zeros, huge
/// integers (f64-inexact), empty strings, strings with embedded 0x00,
/// and multi-byte UTF-8.
fn fuzz_value(rng: &mut Rng, type_hint: usize) -> Value {
    if rng.chance(0.18) {
        return Value::Null;
    }
    match type_hint {
        0 => Value::Int(match rng.range_usize(0, 5) {
            0 => i64::MIN,
            1 => i64::MAX,
            2 => rng.range_i64(-10, 10),
            _ => rng.next_u64() as i64,
        }),
        1 => Value::Double(match rng.range_usize(0, 8) {
            0 => f64::NAN,
            1 => -0.0,
            2 => 0.0,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => f64::from_bits(rng.next_u64()),
            _ => rng.range_f64(-1e6, 1e6),
        }),
        2 => {
            let n = rng.range_usize(0, 9);
            let s: String = (0..n)
                .map(|_| *rng.pick(&['a', 'Z', '0', '\0', 'é', '中', ' ']))
                .collect();
            Value::str(s.as_str())
        }
        3 => Value::Date(rng.range_i32(-100_000, 100_000)),
        _ => Value::Bool(rng.bool()),
    }
}

/// A fuzzed row set: each column gets a type plan — homogeneous (typed
/// column with a bitmap), all-null, or per-cell random (Mixed).
fn fuzz_rows(rng: &mut Rng, arity: usize) -> Vec<Row> {
    let plans: Vec<usize> = (0..arity).map(|_| rng.range_usize(0, 7)).collect();
    let nrows = rng.range_usize(0, 40);
    (0..nrows)
        .map(|_| {
            plans
                .iter()
                .map(|&plan| match plan {
                    // 5: all-null column; 6: per-cell random type (Mixed)
                    5 => Value::Null,
                    6 => {
                        let hint = rng.range_usize(0, 5);
                        fuzz_value(rng, hint)
                    }
                    hint => fuzz_value(rng, hint),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
        .collect()
}

/// `Value` equality that is exact on bit patterns: `to_rows` must give
/// back the NaN payload and zero sign it was handed, which `PartialEq`
/// (NaN != NaN) can't check.
fn bit_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

#[test]
fn row_round_trip_is_identity() {
    let mut rng = Rng::new(0xC01_BA7C);
    for case in 0..CASES {
        let arity = rng.range_usize(0, 6);
        let rows = fuzz_rows(&mut rng, arity);
        let batch = Batch::from_rows_arity(&rows, arity);
        assert_eq!(batch.len(), rows.len(), "case {case}");
        assert_eq!(batch.arity(), arity, "case {case}");
        let back = batch.to_rows();
        assert_eq!(back.len(), rows.len(), "case {case}");
        for (i, (orig, round)) in rows.iter().zip(&back).enumerate() {
            for (j, (a, b)) in orig.iter().zip(round.iter()).enumerate() {
                assert!(
                    bit_identical(a, b),
                    "case {case} row {i} col {j}: {a:?} != {b:?}"
                );
            }
        }
    }
}

#[test]
fn empty_batch_round_trips() {
    for arity in [0usize, 1, 4] {
        let batch = Batch::from_rows_arity(&[], arity);
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.arity(), arity);
        assert!(batch.to_rows().is_empty());
    }
}

#[test]
fn columnar_key_encoder_matches_row_encoder() {
    let mut rng = Rng::new(0xC01_E2C0);
    for case in 0..CASES {
        let arity = rng.range_usize(1, 6);
        let rows = fuzz_rows(&mut rng, arity);
        let batch = Batch::from_rows_arity(&rows, arity);
        // Random key set over the columns, random directions, possibly
        // repeating a column under both directions.
        let nkeys = rng.range_usize(1, arity + 2);
        let keys: Vec<(usize, Direction)> = (0..nkeys)
            .map(|_| {
                let pos = rng.range_usize(0, arity);
                let dir = if rng.bool() {
                    Direction::Asc
                } else {
                    Direction::Desc
                };
                (pos, dir)
            })
            .collect();
        let mut bufs = vec![Vec::new(); batch.len()];
        encode_batch_keys(&batch, &keys, &mut bufs);
        let (mut arena, mut offsets) = (Vec::new(), Vec::new());
        encode_batch_keys_arena(&batch, &keys, &mut arena, &mut offsets);
        assert_eq!(offsets.len(), rows.len() + 1, "case {case}");
        for (i, row) in rows.iter().enumerate() {
            let expected = sortkey::encode_key(row, &keys);
            assert_eq!(
                bufs[i], expected,
                "case {case} row {i}: columnar encoding diverged\nrow: {row:?}\nkeys: {keys:?}"
            );
            assert_eq!(
                &arena[offsets[i]..offsets[i + 1]],
                &expected[..],
                "case {case} row {i}: arena encoding diverged\nrow: {row:?}\nkeys: {keys:?}"
            );
        }
    }
}

#[test]
fn gather_matches_row_selection() {
    let mut rng = Rng::new(0xC01_6A7E);
    for case in 0..CASES {
        let arity = rng.range_usize(1, 5);
        let rows = fuzz_rows(&mut rng, arity);
        let batch = Batch::from_rows_arity(&rows, arity);
        let sel: Vec<u32> = (0..rows.len() as u32).filter(|_| rng.bool()).collect();
        let gathered = batch.gather(&sel);
        assert_eq!(gathered.len(), sel.len(), "case {case}");
        for (k, &i) in sel.iter().enumerate() {
            let got = gathered.row(k);
            let want = &rows[i as usize];
            for (j, (a, b)) in want.iter().zip(got.iter()).enumerate() {
                assert!(
                    bit_identical(a, b),
                    "case {case} slot {k} col {j}: {a:?} != {b:?}"
                );
            }
        }
    }
}
