//! Common substrate for the `fto` workspace: typed values, identifiers,
//! column sets, and the shared error type.
//!
//! Every other crate in the workspace builds on these definitions. The
//! design goal is a small, allocation-light vocabulary:
//!
//! * [`Value`] / [`DataType`] — the dynamically typed cell values flowing
//!   through the engine.
//! * [`ColId`] — a dense, query-scoped column identifier. The order
//!   optimization machinery (equivalence classes, functional dependencies)
//!   operates on opaque `ColId`s; the planner maintains the mapping back to
//!   `(table, column)` names.
//! * [`ColSet`] — a growable bitset over `ColId`s, the workhorse of the
//!   functional-dependency algebra.
//! * [`sortkey`] — the order-preserving binary key codec: rows become
//!   memcmp-comparable byte strings for the sort kernel, exchange
//!   merges, and index probes.

#![deny(missing_docs)]

pub mod bitset;
pub mod column;
pub mod error;
pub mod ids;
pub mod rng;
pub mod sort;
pub mod sortkey;
pub mod value;

pub use bitset::ColSet;
pub use column::{Batch, BatchBuilder, Bitmap, Column, ColumnData};
pub use error::{FtoError, Result};
pub use ids::{ColId, IndexId, QuantifierId, TableId};
pub use rng::Rng;
pub use sort::Direction;
pub use value::{row_bytes, value_width, DataType, Row, Value};
