//! Columnar batches: typed column vectors, validity bitmaps, and
//! selection-vector gathers.
//!
//! The streaming executor moves data between operators as [`Batch`]es —
//! fixed collections of equal-length, reference-counted [`Column`]s —
//! instead of rows of enum-tagged [`Value`]s. Hot operators (filter,
//! projection, sort-key encoding) then run tight per-type loops over the
//! typed vectors; everything else falls back to per-row [`Value`]
//! materialization through [`Batch::row`] / [`Batch::to_rows`], which are
//! exact inverses of [`Batch::from_rows`] so the row-based reference
//! interpreter stays a bit-identical differential oracle.
//!
//! Layout rules:
//!
//! * A typed column ([`ColumnData::Int64`], [`ColumnData::Float64`],
//!   [`ColumnData::Utf8`], [`ColumnData::Date32`], [`ColumnData::Bool`])
//!   stores one primitive per slot plus an optional validity [`Bitmap`]
//!   (`None` means every slot is valid). Invalid slots hold the type's
//!   default in the data vector and read back as [`Value::Null`].
//! * A column whose non-null values disagree on type degrades to
//!   [`ColumnData::Mixed`], a plain `Vec<Value>` with no bitmap — the
//!   lossless fallback that keeps heterogeneous corners (e.g. an untyped
//!   UNION branch) correct without widening the typed kernels.
//! * An all-null column is `Int64` data with an all-zero bitmap: typed, so
//!   downstream kernels still take their fast path, and round-tripping
//!   through rows reproduces `Null` in every slot.
//!
//! Selection vectors are plain `&[u32]` row-index slices; [`Batch::gather`]
//! materializes the selected rows with one per-type loop per column.

use crate::sortkey;
use crate::value::{DataType, Row, Value};
use crate::{Direction, FtoError, Result};
use std::sync::Arc;

/// A word-packed validity bitmap: bit `i` set means slot `i` is valid
/// (non-null). Same u64-word representation as [`crate::ColSet`], but
/// fixed-length and indexed by row position rather than by `ColId`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` slots, all initialized to `valid`.
    pub fn new(len: usize, valid: bool) -> Bitmap {
        let nwords = len.div_ceil(64);
        let fill = if valid { u64::MAX } else { 0 };
        let mut words = vec![fill; nwords];
        if valid && !len.is_multiple_of(64) {
            // Keep trailing bits zero so count_valid stays exact.
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether slot `i` is valid.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Marks slot `i` valid (`true`) or null (`false`).
    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        debug_assert!(i < self.len);
        if valid {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of valid slots.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every slot is valid.
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// Bytes of backing storage (the packed words).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// The typed storage behind one [`Column`].
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// 64-bit signed integers ([`Value::Int`]).
    Int64(Vec<i64>),
    /// 64-bit IEEE-754 floats ([`Value::Double`]); bit patterns (NaN
    /// payloads, `-0.0`) are preserved exactly.
    Float64(Vec<f64>),
    /// UTF-8 strings in one contiguous byte buffer with `len + 1`
    /// monotone offsets: string `i` is `bytes[offsets[i]..offsets[i+1]]`.
    Utf8 {
        /// Slot boundaries into `bytes`; `offsets.len() == len + 1`.
        offsets: Vec<u32>,
        /// Concatenated string payloads.
        bytes: Vec<u8>,
    },
    /// Dates as days since the epoch ([`Value::Date`]).
    Date32(Vec<i32>),
    /// Booleans ([`Value::Bool`]).
    Bool(Vec<bool>),
    /// Heterogeneously typed values, stored as-is. Never carries a
    /// validity bitmap: nulls live in the values themselves.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8 { offsets, .. } => offsets.len() - 1,
            ColumnData::Date32(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True when the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One equal-length column of a [`Batch`]: typed data plus an optional
/// validity bitmap (`None` = every slot valid).
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// The typed vector.
    pub data: ColumnData,
    /// Validity: `None` means all valid; otherwise bit `i` set means slot
    /// `i` is non-null. Always `None` for [`ColumnData::Mixed`].
    pub validity: Option<Bitmap>,
}

impl Column {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The declared element type, or `None` for a [`ColumnData::Mixed`]
    /// column.
    pub fn data_type(&self) -> Option<DataType> {
        match &self.data {
            ColumnData::Int64(_) => Some(DataType::Int),
            ColumnData::Float64(_) => Some(DataType::Double),
            ColumnData::Utf8 { .. } => Some(DataType::Str),
            ColumnData::Date32(_) => Some(DataType::Date),
            ColumnData::Bool(_) => Some(DataType::Bool),
            ColumnData::Mixed(_) => None,
        }
    }

    /// Whether slot `i` is valid (non-null).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.validity {
            Some(bm) => bm.get(i),
            None => match &self.data {
                ColumnData::Mixed(v) => !v[i].is_null(),
                _ => true,
            },
        }
    }

    /// Materializes slot `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        if let Some(bm) = &self.validity {
            if !bm.get(i) {
                return Value::Null;
            }
        }
        match &self.data {
            ColumnData::Int64(v) => Value::Int(v[i]),
            ColumnData::Float64(v) => Value::Double(v[i]),
            ColumnData::Utf8 { offsets, bytes } => {
                let s = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                Value::Str(Arc::from(
                    std::str::from_utf8(s).expect("Utf8 column holds valid UTF-8"),
                ))
            }
            ColumnData::Date32(v) => Value::Date(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Builds a column from an iterator of values, inferring the tightest
    /// typed representation (see module docs for the degradation rules).
    pub fn from_values<'a>(values: impl Iterator<Item = &'a Value> + Clone) -> Column {
        // One type-inference pass, then one packing pass.
        let mut ty: Option<DataType> = None;
        let mut mixed = false;
        let mut any_null = false;
        let mut n = 0usize;
        for v in values.clone() {
            n += 1;
            match v.data_type() {
                None => any_null = true,
                Some(t) => match ty {
                    None => ty = Some(t),
                    Some(prev) if prev == t => {}
                    Some(_) => mixed = true,
                },
            }
        }
        if mixed {
            return Column {
                data: ColumnData::Mixed(values.cloned().collect()),
                validity: None,
            };
        }
        let validity = if any_null {
            let mut bm = Bitmap::new(n, true);
            for (i, v) in values.clone().enumerate() {
                if v.is_null() {
                    bm.set(i, false);
                }
            }
            Some(bm)
        } else {
            None
        };
        let data = match ty {
            // All-null (or empty): typed Int64 with every slot invalid.
            None => ColumnData::Int64(vec![0; n]),
            Some(DataType::Int) => {
                ColumnData::Int64(values.map(|v| v.as_int().unwrap_or_default()).collect())
            }
            Some(DataType::Double) => ColumnData::Float64(
                values
                    .map(|v| match v {
                        Value::Double(d) => *d,
                        _ => 0.0,
                    })
                    .collect(),
            ),
            Some(DataType::Str) => {
                let mut offsets = Vec::with_capacity(n + 1);
                let mut bytes = Vec::new();
                offsets.push(0u32);
                for v in values {
                    if let Value::Str(s) = v {
                        bytes.extend_from_slice(s.as_bytes());
                    }
                    offsets.push(bytes.len() as u32);
                }
                ColumnData::Utf8 { offsets, bytes }
            }
            Some(DataType::Date) => {
                ColumnData::Date32(values.map(|v| v.as_date().unwrap_or_default()).collect())
            }
            Some(DataType::Bool) => {
                ColumnData::Bool(values.map(|v| v.as_bool().unwrap_or_default()).collect())
            }
        };
        Column { data, validity }
    }

    /// Bytes of backing storage held by this column: the typed data
    /// vector (element size × length; `Utf8` counts offsets plus payload,
    /// `Mixed` counts [`crate::value_width`] per value) plus the validity
    /// bitmap. This is the columnar counterpart of the row-shaped
    /// [`crate::row_bytes`] accounting the memory budget charges; rows pay
    /// per-value enum overhead, so the row measure bounds this one from
    /// above for the same data.
    pub fn byte_size(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8 { offsets, bytes } => offsets.len() * 4 + bytes.len(),
            ColumnData::Date32(v) => v.len() * 4,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Mixed(v) => v.iter().map(crate::value_width).sum(),
        };
        data + self.validity.as_ref().map_or(0, Bitmap::byte_size)
    }

    /// Materializes the rows named by `sel` (in order) into a new column.
    /// Indices must be in bounds; they may repeat or reorder freely.
    pub fn gather(&self, sel: &[u32]) -> Column {
        let validity = self.validity.as_ref().map(|bm| {
            let mut out = Bitmap::new(sel.len(), true);
            for (j, &i) in sel.iter().enumerate() {
                if !bm.get(i as usize) {
                    out.set(j, false);
                }
            }
            out
        });
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float64(v) => {
                ColumnData::Float64(sel.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Utf8 { offsets, bytes } => {
                let mut out_off = Vec::with_capacity(sel.len() + 1);
                let mut out_bytes = Vec::new();
                out_off.push(0u32);
                for &i in sel {
                    let (lo, hi) = (
                        offsets[i as usize] as usize,
                        offsets[i as usize + 1] as usize,
                    );
                    out_bytes.extend_from_slice(&bytes[lo..hi]);
                    out_off.push(out_bytes.len() as u32);
                }
                ColumnData::Utf8 {
                    offsets: out_off,
                    bytes: out_bytes,
                }
            }
            ColumnData::Date32(v) => {
                ColumnData::Date32(sel.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { data, validity }
    }
}

/// A columnar batch: equal-length reference-counted columns.
///
/// Columns are `Arc`-shared so projection of a bare column reference and
/// pass-through operators are pointer copies, not data copies. The row
/// count is carried explicitly so a zero-column batch (no projected
/// columns) still knows its cardinality.
#[derive(Clone, Debug)]
pub struct Batch {
    columns: Vec<Arc<Column>>,
    len: usize,
}

impl Batch {
    /// An empty batch with `arity` zero-length columns.
    pub fn empty(arity: usize) -> Batch {
        let col = Arc::new(Column {
            data: ColumnData::Int64(Vec::new()),
            validity: None,
        });
        Batch {
            columns: vec![col; arity],
            len: 0,
        }
    }

    /// Builds a batch from equal-length columns.
    ///
    /// Returns [`FtoError::Internal`] when column lengths disagree.
    pub fn from_columns(columns: Vec<Arc<Column>>) -> Result<Batch> {
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != len {
                return Err(FtoError::internal(format!(
                    "batch column {i} has length {} but column 0 has {len}",
                    c.len()
                )));
            }
        }
        Ok(Batch { columns, len })
    }

    /// As [`Batch::from_columns`], but with an explicit row count for the
    /// zero-column case (e.g. `SELECT` lists that project nothing).
    pub fn from_columns_with_len(columns: Vec<Arc<Column>>, len: usize) -> Result<Batch> {
        if columns.is_empty() {
            return Ok(Batch { columns, len });
        }
        let b = Batch::from_columns(columns)?;
        if b.len != len {
            return Err(FtoError::internal(format!(
                "batch declared {len} rows but columns hold {}",
                b.len
            )));
        }
        Ok(b)
    }

    /// Transposes rows into a columnar batch, inferring per-column types.
    /// An empty slice yields a zero-row, zero-column batch; use
    /// [`Batch::from_rows_arity`] when the arity must survive emptiness.
    pub fn from_rows(rows: &[Row]) -> Batch {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Batch::from_rows_arity(rows, arity)
    }

    /// Transposes rows into a columnar batch with exactly `arity` columns
    /// (rows must all have that arity; an empty slice is fine).
    pub fn from_rows_arity(rows: &[Row], arity: usize) -> Batch {
        let columns = (0..arity)
            .map(|c| Arc::new(Column::from_values(rows.iter().map(move |r| &r[c]))))
            .collect();
        Batch {
            columns,
            len: rows.len(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns, in position order.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns
            .iter()
            .map(|c| c.value(i))
            .collect::<Vec<_>>()
            .into_boxed_slice()
    }

    /// Materializes every row. Exact inverse of [`Batch::from_rows`].
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Appends every row to `out` without an intermediate vector.
    pub fn append_rows_to(&self, out: &mut Vec<Row>) {
        out.reserve(self.len);
        for i in 0..self.len {
            out.push(self.row(i));
        }
    }

    /// Bytes of backing storage across all columns (shared `Arc` columns
    /// are counted once per reference — the conservative choice for
    /// budget accounting).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Materializes the rows named by `sel`, in order, as a new batch.
    pub fn gather(&self, sel: &[u32]) -> Batch {
        Batch {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.gather(sel)))
                .collect(),
            len: sel.len(),
        }
    }
}

/// Misuse-resistant [`Batch`] construction from row pushes.
///
/// The builder fixes the arity up front (optionally with declared
/// [`DataType`]s), rejects rows of the wrong width with a typed error, and
/// — when types are declared — rejects non-null values of the wrong type.
/// Without declared types it infers them, degrading a conflicted column to
/// [`ColumnData::Mixed`] instead of erroring, which is what operators
/// flowing untyped intermediate results want.
#[derive(Debug)]
pub struct BatchBuilder {
    types: Option<Vec<DataType>>,
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl BatchBuilder {
    /// A builder for batches of `arity` columns with inferred types.
    pub fn new(arity: usize) -> BatchBuilder {
        BatchBuilder {
            types: None,
            cols: vec![Vec::new(); arity],
            len: 0,
        }
    }

    /// A builder whose columns must conform to `types` (nulls always
    /// admissible).
    pub fn with_types(types: Vec<DataType>) -> BatchBuilder {
        let arity = types.len();
        BatchBuilder {
            types: Some(types),
            cols: vec![Vec::new(); arity],
            len: 0,
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one row.
    ///
    /// Returns [`FtoError::Internal`] when the row's arity disagrees with
    /// the builder's, or when a value contradicts a declared column type.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.cols.len() {
            return Err(FtoError::internal(format!(
                "pushed row of arity {} into batch of arity {}",
                row.len(),
                self.cols.len()
            )));
        }
        if let Some(types) = &self.types {
            for (c, v) in row.iter().enumerate() {
                if let Some(t) = v.data_type() {
                    if t != types[c] {
                        return Err(FtoError::internal(format!(
                            "column {c} declared {} but row {} holds {t}",
                            types[c], self.len
                        )));
                    }
                }
            }
        }
        debug_assert!(
            self.cols.iter().all(|c| c.len() == self.len),
            "builder columns diverged in length"
        );
        for (c, v) in row.iter().enumerate() {
            self.cols[c].push(v.clone());
        }
        self.len += 1;
        Ok(())
    }

    /// Finishes the batch.
    pub fn finish(self) -> Batch {
        let len = self.len;
        let columns = self
            .cols
            .into_iter()
            .map(|vals| Arc::new(Column::from_values(vals.iter())))
            .collect();
        Batch { columns, len }
    }
}

/// Encodes the sort key of every batch row straight from the column
/// vectors, appending to the per-row buffers in `bufs`
/// (`bufs.len() == batch.len()`). Byte-identical to calling
/// [`sortkey::encode_value`] on the materialized row values: one
/// type-dispatch per column instead of one per value, with a tight loop
/// per fixed-width type.
pub fn encode_batch_keys(batch: &Batch, keys: &[(usize, Direction)], bufs: &mut [Vec<u8>]) {
    debug_assert_eq!(batch.len(), bufs.len());
    for &(pos, dir) in keys {
        let col = batch.column(pos);
        // Remember where each buffer started so Desc can invert in place,
        // exactly as `encode_value` inverts the bytes it just appended.
        let desc = dir == Direction::Desc;
        let marks: Vec<usize> = if desc {
            bufs.iter().map(|b| b.len()).collect()
        } else {
            Vec::new()
        };
        encode_column_asc(col, bufs);
        if desc {
            for (b, &m) in bufs.iter_mut().zip(&marks) {
                for byte in &mut b[m..] {
                    *byte = !*byte;
                }
            }
        }
    }
}

/// Encodes the sort key of every row of `batch` into one contiguous
/// arena: `bytes` holds the concatenated per-row keys, `offsets` (length
/// `batch.len() + 1`) delimits them — row `i`'s key is
/// `bytes[offsets[i]..offsets[i + 1]]`. Byte-identical to
/// [`sortkey::encode_key`] per row, like [`encode_batch_keys`], but with
/// no per-row buffer allocation: the executor's sort and group-by hot
/// paths build keys through this. Both output vectors are cleared first.
pub fn encode_batch_keys_arena(
    batch: &Batch,
    keys: &[(usize, Direction)],
    bytes: &mut Vec<u8>,
    offsets: &mut Vec<usize>,
) {
    let n = batch.len();
    bytes.clear();
    offsets.clear();
    if keys.is_empty() {
        offsets.resize(n + 1, 0);
        return;
    }
    if let [(pos, dir)] = keys {
        // Single key: encode straight into the arena, no gather pass.
        encode_column_flat(batch.column(*pos), bytes, offsets);
        if *dir == Direction::Desc {
            for b in bytes.iter_mut() {
                *b = !*b;
            }
        }
        return;
    }
    // Encode each key column into its own flat buffer, then gather the
    // per-row concatenation.
    let parts: Vec<(Vec<u8>, Vec<usize>)> = keys
        .iter()
        .map(|&(pos, dir)| {
            let mut pb = Vec::new();
            let mut po = Vec::with_capacity(n + 1);
            encode_column_flat(batch.column(pos), &mut pb, &mut po);
            if dir == Direction::Desc {
                for b in pb.iter_mut() {
                    *b = !*b;
                }
            }
            (pb, po)
        })
        .collect();
    bytes.reserve(parts.iter().map(|(pb, _)| pb.len()).sum());
    offsets.reserve(n + 1);
    offsets.push(0);
    for i in 0..n {
        for (pb, po) in &parts {
            bytes.extend_from_slice(&pb[po[i]..po[i + 1]]);
        }
        offsets.push(bytes.len());
    }
}

/// Appends the ascending-order encoding of every slot of `col` to
/// `bytes`, recording slot boundaries in `offsets` (starts by pushing 0,
/// then one offset per slot).
fn encode_column_flat(col: &Column, bytes: &mut Vec<u8>, offsets: &mut Vec<usize>) {
    let validity = col.validity.as_ref();
    // Size the arena up front so the encoding loops never reallocate
    // (an overestimate for null slots and zero-free strings is fine).
    let estimate = match &col.data {
        ColumnData::Int64(_) | ColumnData::Float64(_) | ColumnData::Mixed(_) => {
            col.len() * sortkey::NUMERIC_WIDTH
        }
        ColumnData::Utf8 { bytes: sb, .. } => sb.len() + 3 * col.len(),
        ColumnData::Date32(_) => col.len() * 5,
        ColumnData::Bool(_) => col.len() * 2,
    };
    bytes.reserve(estimate);
    offsets.reserve(col.len() + 1);
    offsets.push(0);
    macro_rules! loop_valid {
        ($vals:ident, $i:ident, $v:ident, $body:block) => {
            for ($i, $v) in $vals.iter().enumerate() {
                if validity.is_some_and(|bm| !bm.get($i)) {
                    bytes.push(sortkey::TAG_NULL);
                } else {
                    $body
                }
                offsets.push(bytes.len());
            }
        };
    }
    match &col.data {
        ColumnData::Int64(vals) => {
            loop_valid!(vals, i, v, {
                bytes.push(sortkey::TAG_NUMERIC);
                let g = *v as f64;
                let r = (*v as i128 - g as i128) as i16;
                sortkey::encode_numeric(g, r, bytes);
            });
        }
        ColumnData::Float64(vals) => {
            loop_valid!(vals, i, v, {
                bytes.push(sortkey::TAG_NUMERIC);
                sortkey::encode_numeric(*v, 0, bytes);
            });
        }
        ColumnData::Utf8 {
            offsets: so,
            bytes: sb,
        } => {
            for i in 0..so.len() - 1 {
                if validity.is_some_and(|bm| !bm.get(i)) {
                    bytes.push(sortkey::TAG_NULL);
                } else {
                    bytes.push(sortkey::TAG_STR);
                    for &b in &sb[so[i] as usize..so[i + 1] as usize] {
                        bytes.push(b);
                        if b == 0x00 {
                            bytes.push(0xFF);
                        }
                    }
                    bytes.extend_from_slice(&[0x00, 0x00]);
                }
                offsets.push(bytes.len());
            }
        }
        ColumnData::Date32(vals) => {
            loop_valid!(vals, i, v, {
                bytes.push(sortkey::TAG_DATE);
                bytes.extend_from_slice(&((*v as u32) ^ 0x8000_0000).to_be_bytes());
            });
        }
        ColumnData::Bool(vals) => {
            loop_valid!(vals, i, v, {
                bytes.push(sortkey::TAG_BOOL);
                bytes.push(u8::from(*v));
            });
        }
        ColumnData::Mixed(vals) => {
            for v in vals {
                sortkey::encode_value_asc(v, bytes);
                offsets.push(bytes.len());
            }
        }
    }
}

/// Appends the ascending-order encoding of every slot of `col` to the
/// matching buffer in `bufs`.
fn encode_column_asc(col: &Column, bufs: &mut [Vec<u8>]) {
    let validity = col.validity.as_ref();
    macro_rules! loop_valid {
        ($vals:ident, $i:ident, $v:ident, $body:block) => {
            for ($i, $v) in $vals.iter().enumerate() {
                if validity.is_some_and(|bm| !bm.get($i)) {
                    bufs[$i].push(sortkey::TAG_NULL);
                } else {
                    $body
                }
            }
        };
    }
    match &col.data {
        ColumnData::Int64(vals) => {
            loop_valid!(vals, i, v, {
                let buf = &mut bufs[i];
                buf.push(sortkey::TAG_NUMERIC);
                let g = *v as f64;
                let r = (*v as i128 - g as i128) as i16;
                sortkey::encode_numeric(g, r, buf);
            });
        }
        ColumnData::Float64(vals) => {
            loop_valid!(vals, i, v, {
                let buf = &mut bufs[i];
                buf.push(sortkey::TAG_NUMERIC);
                sortkey::encode_numeric(*v, 0, buf);
            });
        }
        ColumnData::Utf8 { offsets, bytes } => {
            for i in 0..offsets.len() - 1 {
                if validity.is_some_and(|bm| !bm.get(i)) {
                    bufs[i].push(sortkey::TAG_NULL);
                    continue;
                }
                let buf = &mut bufs[i];
                buf.push(sortkey::TAG_STR);
                for &b in &bytes[offsets[i] as usize..offsets[i + 1] as usize] {
                    buf.push(b);
                    if b == 0x00 {
                        buf.push(0xFF);
                    }
                }
                buf.extend_from_slice(&[0x00, 0x00]);
            }
        }
        ColumnData::Date32(vals) => {
            loop_valid!(vals, i, v, {
                let buf = &mut bufs[i];
                buf.push(sortkey::TAG_DATE);
                buf.extend_from_slice(&((*v as u32) ^ 0x8000_0000).to_be_bytes());
            });
        }
        ColumnData::Bool(vals) => {
            loop_valid!(vals, i, v, {
                let buf = &mut bufs[i];
                buf.push(sortkey::TAG_BOOL);
                buf.push(u8::from(*v));
            });
        }
        ColumnData::Mixed(vals) => {
            for (i, v) in vals.iter().enumerate() {
                sortkey::encode_value_asc(v, &mut bufs[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn rows(vals: Vec<Vec<Value>>) -> Vec<Row> {
        vals.into_iter().map(|r| r.into_boxed_slice()).collect()
    }

    #[test]
    fn bitmap_set_get_count() {
        let mut bm = Bitmap::new(70, true);
        assert!(bm.all_valid());
        assert_eq!(bm.count_valid(), 70);
        bm.set(0, false);
        bm.set(69, false);
        assert!(!bm.get(0));
        assert!(bm.get(1));
        assert!(!bm.get(69));
        assert_eq!(bm.count_valid(), 68);
        let empty = Bitmap::new(0, true);
        assert!(empty.is_empty());
        assert_eq!(empty.count_valid(), 0);
    }

    #[test]
    fn typed_round_trip_is_identity() {
        let rs = rows(vec![
            vec![Value::Int(1), Value::Double(-0.0), Value::str("a\0b")],
            vec![Value::Null, Value::Double(f64::NAN), Value::str("")],
            vec![Value::Int(i64::MIN), Value::Null, Value::Null],
        ]);
        let b = Batch::from_rows(&rs);
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 3);
        let back = b.to_rows();
        for (a, e) in back.iter().zip(&rs) {
            assert_eq!(a.len(), e.len());
            for (x, y) in a.iter().zip(e.iter()) {
                // Bit-exact, not just total_cmp-equal.
                match (x, y) {
                    (Value::Double(p), Value::Double(q)) => {
                        assert_eq!(p.to_bits(), q.to_bits());
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn mixed_column_degrades_and_round_trips() {
        let rs = rows(vec![
            vec![Value::Int(1)],
            vec![Value::str("x")],
            vec![Value::Null],
        ]);
        let b = Batch::from_rows(&rs);
        assert!(b.column(0).data_type().is_none());
        assert_eq!(b.to_rows(), rs);
    }

    #[test]
    fn all_null_column_is_typed_and_round_trips() {
        let rs = rows(vec![vec![Value::Null], vec![Value::Null]]);
        let b = Batch::from_rows(&rs);
        assert_eq!(b.column(0).data_type(), Some(DataType::Int));
        assert_eq!(b.column(0).validity.as_ref().unwrap().count_valid(), 0);
        assert_eq!(b.to_rows(), rs);
    }

    #[test]
    fn empty_batch_round_trips() {
        let b = Batch::from_rows_arity(&[], 4);
        assert!(b.is_empty());
        assert_eq!(b.arity(), 4);
        assert!(b.to_rows().is_empty());
    }

    #[test]
    fn gather_selects_reorders_and_repeats() {
        let rs = rows(vec![
            vec![Value::Int(0), Value::str("a")],
            vec![Value::Null, Value::str("b")],
            vec![Value::Int(2), Value::str("c")],
        ]);
        let b = Batch::from_rows(&rs);
        let g = b.gather(&[2, 0, 2, 1]);
        assert_eq!(
            g.to_rows(),
            rows(vec![
                vec![Value::Int(2), Value::str("c")],
                vec![Value::Int(0), Value::str("a")],
                vec![Value::Int(2), Value::str("c")],
                vec![Value::Null, Value::str("b")],
            ])
        );
    }

    #[test]
    fn builder_rejects_arity_mismatch() {
        let mut b = BatchBuilder::new(2);
        b.push_row(&[Value::Int(1), Value::Int(2)]).unwrap();
        assert!(b.push_row(&[Value::Int(1)]).is_err());
        let batch = b.finish();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn builder_enforces_declared_types() {
        let mut b = BatchBuilder::with_types(vec![DataType::Int, DataType::Str]);
        b.push_row(&[Value::Int(1), Value::str("x")]).unwrap();
        b.push_row(&[Value::Null, Value::Null]).unwrap();
        assert!(b.push_row(&[Value::str("oops"), Value::str("y")]).is_err());
        let batch = b.finish();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.column(0).data_type(), Some(DataType::Int));
    }

    #[test]
    fn from_columns_rejects_ragged_lengths() {
        let a = Arc::new(Column::from_values([Value::Int(1)].iter()));
        let b = Arc::new(Column::from_values([Value::Int(1), Value::Int(2)].iter()));
        assert!(Batch::from_columns(vec![a, b]).is_err());
    }

    #[test]
    fn byte_size_agrees_with_row_bytes_within_bound() {
        use crate::value::row_bytes;
        let mut rng = Rng::new(0xB17E);
        let mut rs = Vec::new();
        for _ in 0..200 {
            let v = vec![
                Value::Int(rng.next_u64() as i64),
                Value::Double(rng.next_u64() as f64),
                Value::str(format!("name-{}", rng.next_u64() % 1000)),
                if rng.next_u64().is_multiple_of(3) {
                    Value::Null
                } else {
                    Value::Date(rng.next_u64() as i32)
                },
                Value::Bool(rng.next_u64().is_multiple_of(2)),
            ];
            rs.push(v.into_boxed_slice());
        }
        let batch = Batch::from_rows(&rs);
        let colb = batch.byte_size();
        let rowb: usize = rs.iter().map(|r| row_bytes(r)).sum();
        // Columns amortize the per-value enum overhead away, so the
        // columnar measure is the tighter one; rows pay at most the
        // inline Value footprint extra per slot plus the Box pointer.
        assert!(colb > 0);
        assert!(colb <= rowb, "columnar {colb} > row {rowb}");
        let slack = rs.len() * (batch.arity() * (std::mem::size_of::<Value>() + 16) + 16);
        assert!(rowb <= colb + slack, "row {rowb} > col {colb} + {slack}");
        // Empty batches are free.
        assert_eq!(Batch::from_rows_arity(&[], 3).byte_size(), 0);
    }

    #[test]
    fn columnar_key_encoding_matches_row_encoder() {
        let mut rng = Rng::new(0x5EED);
        let mut rs = Vec::new();
        for _ in 0..300 {
            let mut row = Vec::new();
            // Columns 0..5 are homogeneously typed (with nulls); column 5
            // mixes types so the Mixed fallback is covered too.
            for c in 0..6usize {
                let v = if rng.next_u64().is_multiple_of(5) {
                    Value::Null
                } else {
                    match c {
                        0 => Value::Int(rng.next_u64() as i64),
                        1 => Value::Double(f64::from_bits(rng.next_u64())),
                        2 => Value::str(format!("s\0{}", rng.next_u64() % 100)),
                        3 => Value::Date(rng.next_u64() as i32),
                        4 => Value::Bool(rng.next_u64().is_multiple_of(2)),
                        _ => {
                            if rng.next_u64().is_multiple_of(2) {
                                Value::Int(rng.next_u64() as i64)
                            } else {
                                Value::str("mixed")
                            }
                        }
                    }
                };
                row.push(v);
            }
            rs.push(row.into_boxed_slice());
        }
        let batch = Batch::from_rows(&rs);
        assert_eq!(batch.column(0).data_type(), Some(DataType::Int));
        assert!(batch.column(5).data_type().is_none());
        let keys = vec![
            (0, Direction::Asc),
            (2, Direction::Desc),
            (4, Direction::Asc),
            (1, Direction::Desc),
            (3, Direction::Asc),
            (5, Direction::Desc),
        ];
        let mut bufs = vec![Vec::new(); rs.len()];
        encode_batch_keys(&batch, &keys, &mut bufs);
        for (row, buf) in rs.iter().zip(&bufs) {
            let expect = sortkey::encode_key(row, &keys);
            assert_eq!(buf, &expect, "row {row:?}");
        }
    }
}
