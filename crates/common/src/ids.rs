//! Newtype identifiers used throughout the workspace.
//!
//! All identifiers are small dense integers so they can be used as vector
//! indexes and bitset positions without hashing.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a `usize`, for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(u32::try_from(v).expect("identifier overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a base table in the catalog.
    TableId,
    "t"
);

id_type!(
    /// Identifies an index in the catalog.
    IndexId,
    "i"
);

id_type!(
    /// Identifies a quantifier (a table reference) inside one query.
    ///
    /// Two references to the same base table get distinct quantifier ids, as
    /// in the paper's QGM, so self-joins keep their column instances apart.
    QuantifierId,
    "q"
);

id_type!(
    /// A dense, query-scoped column identifier.
    ///
    /// The order-optimization algebra (equivalence classes, functional
    /// dependencies, order specifications) treats columns as opaque ids;
    /// each query compilation assigns one `ColId` per (quantifier, column)
    /// instance. Ids are dense so they can index bitsets.
    ColId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let c = ColId::from(7u32);
        assert_eq!(c.index(), 7);
        assert_eq!(c, ColId(7));
    }

    #[test]
    fn roundtrip_usize() {
        let t = TableId::from(3usize);
        assert_eq!(t.index(), 3);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(ColId(1) < ColId(2));
        assert!(QuantifierId(0) < QuantifierId(9));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ColId(4).to_string(), "c4");
        assert_eq!(TableId(4).to_string(), "t4");
        assert_eq!(QuantifierId(2).to_string(), "q2");
        assert_eq!(IndexId(1).to_string(), "i1");
        assert_eq!(format!("{:?}", ColId(4)), "c4");
    }

    #[test]
    #[should_panic(expected = "identifier overflow")]
    fn from_usize_overflow_panics() {
        let _ = ColId::from(u32::MAX as usize + 1);
    }
}
