//! Order-preserving binary sort keys: a codec from rows to byte strings
//! whose plain `memcmp` (lexicographic `&[u8]`) comparison reproduces
//! [`Value::total_cmp`] per key column with per-column
//! [`Direction`]s applied — bit-identical in outcome to the engine's
//! `Value`-walking comparator, but branch-free and type-dispatch-free in
//! the sort inner loop.
//!
//! # Encoding
//!
//! Each key column encodes as a one-byte type-class tag followed by a
//! payload; tags mirror `total_cmp`'s cross-type rank with NULL highest
//! (DB2 "nulls high"):
//!
//! | class           | tag    | payload                                         |
//! |-----------------|--------|-------------------------------------------------|
//! | numeric (Int ∪ Double) | `0x01` | 8-byte flipped IEEE-754 double + 2-byte residual |
//! | string          | `0x02` | `0x00`-escaped bytes + `0x00 0x00` terminator   |
//! | date            | `0x03` | 4-byte big-endian `i32` with sign bit flipped   |
//! | bool            | `0x04` | `0x00` / `0x01`                                 |
//! | NULL            | `0xFF` | (none)                                          |
//!
//! * **Numerics.** Int and Double share one class and must interleave in
//!   exact numeric order. The payload is `(g, r)`: `g` is the value
//!   rounded to the nearest `f64`, byte-flipped so its bits order as an
//!   unsigned integer (sign bit set → flip all bits, else set the sign
//!   bit — the classic IEEE-754 trick), and `r` is the sign-flipped
//!   `i16` residual `value − g` (zero for doubles; round-to-nearest
//!   bounds it to ±512 for the largest `i64` magnitudes). Lexicographic
//!   `(g, r)` equals exact numeric order because rounding is monotone
//!   and values sharing a `g` differ only in their residual. NaN
//!   canonicalizes to the positive quiet NaN (flips above +∞, matching
//!   `total_cmp`'s NaN-high order) and `-0.0` to `0.0`.
//! * **Strings.** A `0x00` byte escapes to `0x00 0xFF` and the column
//!   terminates with `0x00 0x00`. Since an escaped body can never
//!   contain two adjacent zero bytes, the terminator is the *only*
//!   `0x00 0x00` in the column — the encoding is prefix-free, and
//!   memcmp order equals byte-wise string order with no prefix anomaly
//!   ("ab" < "abc", and "a\0" > "a").
//! * **Descending columns** invert every payload byte (tag included).
//!   This is order-reversing exactly because each column's encoding is
//!   prefix-free: two distinct column encodings first differ at a byte
//!   position present in both, and `!a < !b ⇔ a > b` at that byte.
//!
//! Prefix-freeness per column also makes plain concatenation correct for
//! multi-column keys, and makes a fixed-width suffix (the sort kernel
//! appends a big-endian sequence number for stability) safe to compare
//! as part of the same memcmp.

use crate::sort::Direction;
use crate::value::Value;

/// Tag for the numeric class (Int and Double interleave).
pub const TAG_NUMERIC: u8 = 0x01;
/// Tag for strings.
pub const TAG_STR: u8 = 0x02;
/// Tag for dates.
pub const TAG_DATE: u8 = 0x03;
/// Tag for booleans.
pub const TAG_BOOL: u8 = 0x04;
/// Tag for SQL NULL — highest, so NULLs sort after every value ascending.
pub const TAG_NULL: u8 = 0xFF;

/// Encoded width of a numeric column (tag + flipped double + residual).
pub const NUMERIC_WIDTH: usize = 11;

/// Appends the ascending-order encoding of one value to `buf`.
pub fn encode_value_asc(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Int(a) => {
            buf.push(TAG_NUMERIC);
            let g = *a as f64;
            // Exact: |g| <= 2^63 and g is integral, so the cast back is
            // lossless; round-to-nearest bounds the residual to ±512.
            let r = (*a as i128 - g as i128) as i16;
            encode_numeric(g, r, buf);
        }
        Value::Double(d) => {
            buf.push(TAG_NUMERIC);
            encode_numeric(*d, 0, buf);
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            for &b in s.as_bytes() {
                if b == 0 {
                    buf.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    buf.push(b);
                }
            }
            buf.extend_from_slice(&[0x00, 0x00]);
        }
        Value::Date(d) => {
            buf.push(TAG_DATE);
            buf.extend_from_slice(&((*d as u32) ^ 0x8000_0000).to_be_bytes());
        }
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
    }
}

/// Flipped-double + sign-flipped-residual numeric payload. Shared with
/// the columnar encoder ([`crate::column::encode_batch_keys`]) so both
/// paths stay byte-identical by construction.
pub(crate) fn encode_numeric(g: f64, r: i16, buf: &mut Vec<u8>) {
    let bits = if g.is_nan() {
        // Canonical positive quiet NaN: flips above +inf, so NaN sorts
        // last among numerics — the same order as `Value::total_cmp`.
        0x7ff8_0000_0000_0000u64
    } else if g == 0.0 {
        0u64 // fold -0.0 into +0.0
    } else {
        g.to_bits()
    };
    let flipped = if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000_0000_0000
    };
    buf.extend_from_slice(&flipped.to_be_bytes());
    buf.extend_from_slice(&((r as u16) ^ 0x8000).to_be_bytes());
}

/// Appends the encoding of one value under `dir` to `buf`
/// (descending inverts every byte of the column, tag included).
pub fn encode_value(v: &Value, dir: Direction, buf: &mut Vec<u8>) {
    let start = buf.len();
    encode_value_asc(v, buf);
    if dir == Direction::Desc {
        for b in &mut buf[start..] {
            *b = !*b;
        }
    }
}

/// Appends the full normalized key of `row` under `keys`
/// (`(column position, direction)` pairs) to `buf`.
///
/// Lexicographic comparison of two encodings equals chaining
/// `dir.apply(row_a[pos].total_cmp(&row_b[pos]))` across the key columns.
pub fn encode_key_into(row: &[Value], keys: &[(usize, Direction)], buf: &mut Vec<u8>) {
    for &(pos, dir) in keys {
        encode_value(&row[pos], dir, buf);
    }
}

/// Returns the normalized key of `row` under `keys` as a fresh buffer.
pub fn encode_key(row: &[Value], keys: &[(usize, Direction)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(keys.len() * NUMERIC_WIDTH);
    encode_key_into(row, keys, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::cmp::Ordering;

    fn cmp_by_keys(a: &[Value], b: &[Value], keys: &[(usize, Direction)]) -> Ordering {
        for &(pos, dir) in keys {
            let ord = dir.apply(a[pos].total_cmp(&b[pos]));
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    fn assert_agrees(a: &[Value], b: &[Value], keys: &[(usize, Direction)]) {
        let (ea, eb) = (encode_key(a, keys), encode_key(b, keys));
        assert_eq!(
            ea.cmp(&eb),
            cmp_by_keys(a, b, keys),
            "codec disagrees with Value order for {a:?} vs {b:?} under {keys:?}\n  {ea:02x?}\n  {eb:02x?}"
        );
    }

    fn both_dirs(vals: &[Value]) {
        for dir in [Direction::Asc, Direction::Desc] {
            let keys = [(0usize, dir)];
            for a in vals {
                for b in vals {
                    assert_agrees(std::slice::from_ref(a), std::slice::from_ref(b), &keys);
                }
            }
        }
    }

    #[test]
    fn numeric_edge_cases_agree_with_total_cmp() {
        both_dirs(&[
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(i64::MIN + 1),
            Value::Int(-1024),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(1),
            Value::Int(1 << 53),
            Value::Int((1 << 53) + 1),
            Value::Int((1 << 60) + 1),
            Value::Int(i64::MAX - 1),
            Value::Int(i64::MAX),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(-1e300),
            Value::Double(-9.223372036854776e18),
            Value::Double(-2.5),
            Value::Double(-0.0),
            Value::Double(0.0),
            Value::Double(f64::MIN_POSITIVE),
            Value::Double(2.5),
            Value::Double((1u64 << 60) as f64),
            Value::Double(9.223372036854776e18),
            Value::Double(1e300),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NAN),
            Value::Double(-f64::NAN),
        ]);
    }

    #[test]
    fn string_edges_have_no_prefix_anomaly() {
        both_dirs(&[
            Value::Null,
            Value::str(""),
            Value::str("\0"),
            Value::str("\0\0"),
            Value::str("a"),
            Value::str("a\0"),
            Value::str("a\0b"),
            Value::str("ab"),
            Value::str("abc"),
            Value::str("ab\u{0001}"),
            Value::str("b"),
            Value::str("\u{00ff}"),
        ]);
    }

    #[test]
    fn dates_bools_and_cross_type_tags_agree() {
        both_dirs(&[
            Value::Null,
            Value::Int(3),
            Value::Double(3.5),
            Value::str("3"),
            Value::Date(i32::MIN),
            Value::Date(-1),
            Value::Date(0),
            Value::Date(i32::MAX),
            Value::Bool(false),
            Value::Bool(true),
        ]);
    }

    #[test]
    fn multi_column_concatenation_has_no_bleed() {
        // A short string in column 0 must not "borrow" order from
        // column 1's bytes — prefix-freeness makes concatenation safe.
        let keys = [(0usize, Direction::Asc), (1usize, Direction::Desc)];
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::str("ab"), Value::Int(9)],
            vec![Value::str("abc"), Value::Int(0)],
            vec![Value::str("ab"), Value::Int(0)],
            vec![Value::str("a"), Value::Null],
            vec![Value::Null, Value::str("z")],
        ];
        for a in &rows {
            for b in &rows {
                assert_agrees(a, b, &keys);
            }
        }
    }

    fn random_value(rng: &mut Rng) -> Value {
        match rng.range_usize(0, 8) {
            0 => Value::Null,
            1 => Value::Int(rng.range_i64(-5, 5)),
            2 => Value::Int(rng.next_u64() as i64),
            3 => Value::Double(rng.range_f64(-10.0, 10.0)),
            4 => Value::Double(match rng.range_usize(0, 5) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                _ => f64::from_bits(rng.next_u64()),
            }),
            5 => {
                let len = rng.range_usize(0, 6);
                let s: String = (0..len)
                    .map(|_| char::from(*rng.pick(b"ab\0\x01\xffxyz")))
                    .collect();
                Value::str(s)
            }
            6 => Value::Date(rng.range_i32(-1000, 1000)),
            _ => Value::Bool(rng.bool()),
        }
    }

    /// The satellite property test: random typed tuples and directions,
    /// every pair's encoded comparison must equal the `Value` comparison.
    #[test]
    fn property_encoded_order_matches_value_order() {
        let mut rng = Rng::new(0x5eed_c0dec);
        for _ in 0..200 {
            let cols = rng.range_usize(1, 4);
            let keys: Vec<(usize, Direction)> = (0..cols)
                .map(|c| {
                    (
                        c,
                        if rng.bool() {
                            Direction::Asc
                        } else {
                            Direction::Desc
                        },
                    )
                })
                .collect();
            let rows: Vec<Vec<Value>> = (0..12)
                .map(|_| (0..cols).map(|_| random_value(&mut rng)).collect())
                .collect();
            for a in &rows {
                for b in &rows {
                    assert_agrees(a, b, &keys);
                }
            }
        }
    }

    #[test]
    fn empty_key_encodes_empty() {
        assert!(encode_key(&[Value::Int(1)], &[]).is_empty());
    }
}
