//! The shared error type for the workspace.

use std::fmt;

/// Errors produced anywhere in the fto stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtoError {
    /// SQL text failed to tokenize or parse.
    Parse(String),
    /// A name (table, column, index) could not be resolved.
    Resolution(String),
    /// A query is semantically invalid (type mismatch, bad aggregate, ...).
    Semantic(String),
    /// The planner could not produce a plan.
    Plan(String),
    /// A runtime execution failure.
    Exec(String),
    /// Catalog manipulation failure (duplicate table, unknown id, ...).
    Catalog(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl FtoError {
    /// Convenience constructor for [`FtoError::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        FtoError::Internal(msg.into())
    }
}

impl fmt::Display for FtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtoError::Parse(m) => write!(f, "parse error: {m}"),
            FtoError::Resolution(m) => write!(f, "resolution error: {m}"),
            FtoError::Semantic(m) => write!(f, "semantic error: {m}"),
            FtoError::Plan(m) => write!(f, "planning error: {m}"),
            FtoError::Exec(m) => write!(f, "execution error: {m}"),
            FtoError::Catalog(m) => write!(f, "catalog error: {m}"),
            FtoError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for FtoError {}

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, FtoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert_eq!(
            FtoError::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            FtoError::internal("oops").to_string(),
            "internal error: oops"
        );
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(FtoError::Exec("x".into()));
        assert!(e.to_string().contains("execution"));
    }
}
