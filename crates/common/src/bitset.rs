//! [`ColSet`]: a growable bitset over [`ColId`]s.
//!
//! Functional-dependency reasoning (the heart of the paper's *Reduce Order*
//! algorithm) is dominated by subset tests and unions over small column
//! sets. A word-packed bitset makes those O(words) with no hashing.

use crate::ids::ColId;
use std::fmt;

/// A set of [`ColId`]s backed by packed 64-bit words.
///
/// The set grows on demand; trailing zero words are trimmed so that equal
/// sets compare equal regardless of insertion history.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct ColSet {
    words: Vec<u64>,
}

impl ColSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ColSet::default()
    }

    /// Creates a set containing the given columns.
    pub fn from_cols(cols: impl IntoIterator<Item = ColId>) -> Self {
        let mut s = ColSet::new();
        for c in cols {
            s.insert(c);
        }
        s
    }

    /// Creates a singleton set.
    pub fn singleton(col: ColId) -> Self {
        let mut s = ColSet::new();
        s.insert(col);
        s
    }

    /// True when the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of columns in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Inserts a column; returns true if it was newly added.
    pub fn insert(&mut self, col: ColId) -> bool {
        let (word, bit) = (col.index() / 64, col.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Removes a column; returns true if it was present.
    pub fn remove(&mut self, col: ColId) -> bool {
        let (word, bit) = (col.index() / 64, col.index() % 64);
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        if present {
            self.trim();
        }
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, col: ColId) -> bool {
        let (word, bit) = (col.index() / 64, col.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// True when every element of `self` is in `other`.
    pub fn is_subset(&self, other: &ColSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// True when the two sets share no elements.
    pub fn is_disjoint(&self, other: &ColSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Adds every element of `other` to `self`; returns true if `self` grew.
    pub fn union_with(&mut self, other: &ColSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = false;
        for (i, &w) in other.words.iter().enumerate() {
            let before = self.words[i];
            self.words[i] |= w;
            grew |= self.words[i] != before;
        }
        grew
    }

    /// Returns the union of the two sets.
    pub fn union(&self, other: &ColSet) -> ColSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection of the two sets.
    pub fn intersection(&self, other: &ColSet) -> ColSet {
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        let mut s = ColSet { words };
        s.trim();
        s
    }

    /// Returns `self` minus `other`.
    pub fn difference(&self, other: &ColSet) -> ColSet {
        let words = self
            .words
            .iter()
            .enumerate()
            .map(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0))
            .collect();
        let mut s = ColSet { words };
        s.trim();
        s
    }

    /// Iterates over members in ascending [`ColId`] order.
    pub fn iter(&self) -> impl Iterator<Item = ColId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(ColId::from(wi * 64 + b))
                }
            })
        })
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<ColId> for ColSet {
    fn from_iter<T: IntoIterator<Item = ColId>>(iter: T) -> Self {
        ColSet::from_cols(iter)
    }
}

impl Extend<ColId> for ColSet {
    fn extend<T: IntoIterator<Item = ColId>>(&mut self, iter: T) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Debug for ColSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(ids: &[u32]) -> ColSet {
        ids.iter().map(|&i| ColId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = ColSet::new();
        assert!(s.insert(ColId(3)));
        assert!(!s.insert(ColId(3)));
        assert!(s.contains(ColId(3)));
        assert!(!s.contains(ColId(4)));
        assert!(s.remove(ColId(3)));
        assert!(!s.remove(ColId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn len_counts_across_words() {
        let s = cs(&[0, 63, 64, 127, 200]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = cs(&[1, 2]);
        let b = cs(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(ColSet::new().is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(cs(&[5]).is_disjoint(&cs(&[6])));
        assert!(!cs(&[5, 6]).is_disjoint(&cs(&[6])));
    }

    #[test]
    fn subset_with_longer_lhs() {
        // lhs has a high bit that rhs's word vector doesn't even reach.
        let a = cs(&[200]);
        let b = cs(&[1]);
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn union_intersection_difference() {
        let a = cs(&[1, 2, 70]);
        let b = cs(&[2, 3]);
        assert_eq!(a.union(&b), cs(&[1, 2, 3, 70]));
        assert_eq!(a.intersection(&b), cs(&[2]));
        assert_eq!(a.difference(&b), cs(&[1, 70]));
        assert_eq!(b.difference(&a), cs(&[3]));
    }

    #[test]
    fn union_with_reports_growth() {
        let mut a = cs(&[1]);
        assert!(a.union_with(&cs(&[2])));
        assert!(!a.union_with(&cs(&[1, 2])));
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut a = cs(&[1, 300]);
        a.remove(ColId(300));
        let b = cs(&[1]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &ColSet| {
            let mut hs = DefaultHasher::new();
            s.hash(&mut hs);
            hs.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn iter_is_sorted() {
        let s = cs(&[5, 1, 130, 64]);
        let v: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![1, 5, 64, 130]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", cs(&[1, 2])), "{c1, c2}");
        assert_eq!(format!("{:?}", ColSet::new()), "{}");
    }

    #[test]
    fn singleton() {
        let s = ColSet::singleton(ColId(9));
        assert_eq!(s.len(), 1);
        assert!(s.contains(ColId(9)));
    }
}
