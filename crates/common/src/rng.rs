//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace runs in hermetic environments with no access to
//! crates.io, so the data generator and the randomized tests cannot pull
//! in an external `rand`. This module provides the small surface they
//! need: a seedable, reproducible generator with uniform ranges over
//! integers and floats. The core is SplitMix64 (Steele, Lea & Flood,
//! "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014), which
//! passes BigCrush for the statistical quality this crate needs
//! (uniform-ish synthetic data, not cryptography).

/// A seedable, deterministic PRNG (SplitMix64 core).
///
/// The same seed always yields the same stream, on every platform: the
/// TPC-D generator and the randomized differential tests rely on this for
/// reproducible databases and reproducible failure cases.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `i64` in the half-open range `[lo, hi)`. Panics if
    /// `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `i64` in the closed range `[lo, hi]`. Panics if `lo > hi`.
    pub fn range_incl_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add((self.next_u64() % (span + 1)) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..10_000 {
            let v = r.range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let w = r.range_incl_i64(3, 3);
            assert_eq!(w, 3);
            let f = r.range_f64(1.5, 2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn ranges_hit_endpoints() {
        let mut r = Rng::new(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut hit_hi = false;
        for _ in 0..1000 {
            if r.range_incl_i64(0, 2) == 2 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Rng::new(99);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.range_usize(0, 10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "{buckets:?}");
        }
    }
}
