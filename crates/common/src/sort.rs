//! Sort direction vocabulary shared by indexes, order specifications, and
//! the execution engine.

use std::fmt;

/// Ascending or descending order for one sort column.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum Direction {
    /// Ascending (the paper's default assumption).
    #[default]
    Asc,
    /// Descending.
    Desc,
}

impl Direction {
    /// The opposite direction.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }

    /// Applies the direction to an ascending comparison result.
    #[inline]
    pub fn apply(self, ord: std::cmp::Ordering) -> std::cmp::Ordering {
        match self {
            Direction::Asc => ord,
            Direction::Desc => ord.reverse(),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Asc => "asc",
            Direction::Desc => "desc",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn reversed() {
        assert_eq!(Direction::Asc.reversed(), Direction::Desc);
        assert_eq!(Direction::Desc.reversed(), Direction::Asc);
    }

    #[test]
    fn apply() {
        assert_eq!(Direction::Asc.apply(Ordering::Less), Ordering::Less);
        assert_eq!(Direction::Desc.apply(Ordering::Less), Ordering::Greater);
        assert_eq!(Direction::Desc.apply(Ordering::Equal), Ordering::Equal);
    }

    #[test]
    fn default_is_asc() {
        assert_eq!(Direction::default(), Direction::Asc);
        assert_eq!(Direction::Asc.to_string(), "asc");
        assert_eq!(Direction::Desc.to_string(), "desc");
    }
}
