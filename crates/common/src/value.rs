//! Dynamically typed cell values and their totally ordered comparison.
//!
//! The engine is row-oriented: a [`Row`] is a boxed slice of [`Value`]s.
//! Values carry their type; [`DataType`] describes a column's declared type
//! in the catalog. SQL `NULL` is modelled explicitly and, as in DB2's sort
//! order, sorts *after* every non-null value in ascending order ("nulls
//! high").

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The declared type of a column.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Double,
    /// Variable-length UTF-8 string.
    Str,
    /// Date, stored as days since 1970-01-01.
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
            DataType::Bool => "BOOLEAN",
        };
        f.write_str(s)
    }
}

/// A single dynamically typed cell value.
///
/// Strings are reference counted so that rows can be cloned cheaply while
/// flowing through blocking operators such as sorts and hash tables.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL (typed by context).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float. NaNs sort after every other numeric value (and all
    /// NaNs compare equal to each other) under [`Value::total_cmp`].
    Double(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Returns true when the value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type of the value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float, widening integers.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a date (days since epoch), if this is one.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL equality: NULL never equals anything (returns `None`, i.e.
    /// "unknown"); otherwise three-valued logic collapses to a boolean.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// Total comparison used for sorting and index ordering.
    ///
    /// NULL sorts after every non-null value (DB2's "nulls high" default).
    /// Numeric values of different width compare exactly (an `Int` beyond
    /// 2^53 is *not* rounded to the nearest double before comparing, so
    /// the relation stays transitive). NaN sorts after every other numeric
    /// value — including +∞ and every integer — and all NaNs compare
    /// equal, so the ordering is total and a strict weak order even on
    /// pathological float inputs. `-0.0` equals `0.0`. Comparing a number
    /// with a string or similar type mismatch falls back to a stable (but
    /// arbitrary) ordering by type tag so sorts never panic.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => cmp_f64_nan_high(*a, *b),
            (Int(a), Double(b)) => cmp_int_double(*a, *b),
            (Double(a), Int(b)) => cmp_int_double(*b, *a).reverse(),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

/// NaN-high total order on doubles: all NaNs are equal to each other and
/// greater than every non-NaN (including +∞); `-0.0 == 0.0`.
///
/// Exposed so vectorized comparison kernels over `f64` column vectors
/// decide exactly as [`Value::total_cmp`] does on the boxed values.
#[inline]
pub fn cmp_f64_nan_high(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN doubles compare"),
    }
}

/// Exact comparison of an `i64` against an `f64`.
///
/// Rounding `a` to the nearest double first (the obvious approach) makes
/// e.g. `2^60 + 1` compare Equal to `2^60 as f64` while `Int(2^60 + 1) >
/// Int(2^60)` — an intransitive "order" that corrupts sorts. Instead we
/// compare the rounded double, then break exact ties with the integer
/// residual `a - round(a)`, which `i64 as f64` round-to-nearest bounds to
/// at most half an ulp (≤ 512 for the largest magnitudes).
///
/// Exposed for the same reason as [`cmp_f64_nan_high`]: mixed
/// `Int64`/`Float64` column kernels must rank exactly as
/// [`Value::total_cmp`].
#[inline]
pub fn cmp_int_double(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        return Ordering::Less;
    }
    let g = a as f64;
    if g != b {
        return g.partial_cmp(&b).expect("non-NaN doubles compare");
    }
    // g == b, so b is finite and integral with |b| <= 2^63; the residual
    // of the round decides. `g as i128` is exact for such magnitudes.
    ((a as i128) - (g as i128)).cmp(&0)
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 5,
        Value::Int(_) | Value::Double(_) => 0,
        Value::Str(_) => 1,
        Value::Date(_) => 2,
        Value::Bool(_) => 3,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash integers and integral doubles identically so mixed-width
            // join keys hash-join correctly.
            Value::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Double(v) => {
                1u8.hash(state);
                // Canonicalize: all NaN payloads are Equal under
                // `total_cmp`, and -0.0 == 0.0, so they must hash alike.
                let bits = if v.is_nan() {
                    0x7ff8_0000_0000_0000u64
                } else if *v == 0.0 {
                    0u64
                } else {
                    v.to_bits()
                };
                bits.hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "date({d})"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A row of values; the unit of data flow in the execution engine.
pub type Row = Box<[Value]>;

/// Convenience constructor for a [`Row`].
pub fn row(values: impl IntoIterator<Item = Value>) -> Row {
    values.into_iter().collect()
}

/// In-memory size of a value in bytes: the inline enum footprint
/// (`size_of::<Value>()`, identical for every variant — the discriminant
/// plus the widest payload) plus any heap the variant owns. Strings add
/// their `Arc<str>` allocation: two 8-byte reference counts of `Arc`
/// header plus the UTF-8 payload. Used by the cost model and the
/// executor's memory-budget accounting, so undercounting here would let a
/// "bounded" sort admit more than the budget allows.
pub fn value_width(v: &Value) -> usize {
    const ARC_HEADER: usize = 16; // strong + weak counts
    std::mem::size_of::<Value>()
        + match v {
            Value::Str(s) => ARC_HEADER + s.len(),
            _ => 0,
        }
}

/// In-memory size of a row in bytes: the `Box<[Value]>` fat pointer (16
/// bytes) plus [`value_width`] of every value. This is the row-shaped
/// counterpart of the columnar [`crate::Batch::byte_size`] accounting; the
/// two agree within a small constant factor (rows pay the per-value enum
/// overhead, columns amortize it away).
pub fn row_bytes(row: &[Value]) -> usize {
    16 + row.iter().map(value_width).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nulls_sort_high() {
        assert_eq!(
            Value::Null.total_cmp(&Value::Int(i64::MAX)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(0).total_cmp(&Value::Null), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).total_cmp(&Value::Double(2.0)),
            Ordering::Equal
        );
        assert_eq!(Value::Int(2).total_cmp(&Value::Double(2.5)), Ordering::Less);
        assert_eq!(
            Value::Double(3.5).total_cmp(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert!(Value::str("apple") < Value::str("banana"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn sql_eq_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn mixed_numeric_hash_matches_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Double(7.0)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_double(), Some(4.0));
        assert_eq!(Value::Double(1.5).as_double(), Some(1.5));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Date(10).as_date(), Some(10));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Date(0).data_type(), Some(DataType::Date));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Str.to_string(), "VARCHAR");
    }

    #[test]
    fn value_width_estimates() {
        let inline = std::mem::size_of::<Value>();
        // The enum is a discriminant plus an Arc<str> fat pointer — no
        // variant is free, and Null costs the same inline space as Int.
        assert!(inline >= 16, "Value inline size {inline}");
        assert_eq!(value_width(&Value::Int(1)), inline);
        assert_eq!(value_width(&Value::Null), inline);
        assert_eq!(value_width(&Value::Bool(true)), inline);
        // Strings add the Arc header (16) plus the payload.
        assert_eq!(value_width(&Value::str("abcd")), inline + 16 + 4);
        assert_eq!(value_width(&Value::str("")), inline + 16);
        // Rows add the Box<[Value]> fat pointer on top.
        let r = row([Value::Int(1), Value::str("ab")]);
        assert_eq!(row_bytes(&r), 16 + 2 * inline + 16 + 2);
        assert_eq!(row_bytes(&[]), 16);
    }

    #[test]
    fn row_constructor() {
        let r = row([Value::Int(1), Value::str("a")]);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], Value::Int(1));
    }

    #[test]
    fn nan_sorts_last_among_numerics() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(
            nan.total_cmp(&Value::Double(f64::INFINITY)),
            Ordering::Greater
        );
        assert_eq!(nan.total_cmp(&Value::Int(i64::MAX)), Ordering::Greater);
        assert_eq!(Value::Int(0).total_cmp(&nan), Ordering::Less);
        assert_eq!(Value::Double(1e300).total_cmp(&nan), Ordering::Less);
        assert_eq!(nan.total_cmp(&Value::Double(-f64::NAN)), Ordering::Equal);
        // ...but still below NULL.
        assert_eq!(nan.total_cmp(&Value::Null), Ordering::Less);
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(
            Value::Double(-0.0).total_cmp(&Value::Double(0.0)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Double(-0.0).total_cmp(&Value::Int(0)),
            Ordering::Equal
        );
    }

    #[test]
    fn large_int_double_comparison_is_exact() {
        // 2^60 + 1 rounds to 2^60 as f64; the comparison must not.
        let big = (1i64 << 60) + 1;
        let rounded = Value::Double((1i64 << 60) as f64);
        assert_eq!(Value::Int(big).total_cmp(&rounded), Ordering::Greater);
        assert_eq!(rounded.total_cmp(&Value::Int(big)), Ordering::Less);
        assert_eq!(Value::Int(1 << 60).total_cmp(&rounded), Ordering::Equal);
        // i64::MAX rounds *up* to 2^63; the residual keeps it below.
        let two63 = Value::Double(9.223372036854776e18);
        assert_eq!(Value::Int(i64::MAX).total_cmp(&two63), Ordering::Less);
    }

    #[test]
    fn nan_and_negative_zero_hash_consistently() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Double(f64::NAN)), h(&Value::Double(-f64::NAN)));
        assert_eq!(h(&Value::Double(-0.0)), h(&Value::Double(0.0)));
        assert_eq!(h(&Value::Double(-0.0)), h(&Value::Int(0)));
    }

    #[test]
    fn cross_type_ordering_is_stable() {
        // Arbitrary but total: never panics, antisymmetric.
        let a = Value::Int(1);
        let b = Value::str("1");
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        assert_eq!(ab, ba.reverse());
    }
}
