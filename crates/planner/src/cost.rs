//! The cost model.
//!
//! Costs are abstract units calibrated so that one sequentially read page
//! costs 1.0. Random pages cost a multiple of that (seek + rotational
//! penalty on the paper's hardware; cache-miss penalty on ours), and CPU
//! work is charged per row. The absolute values matter less than the
//! ratios: the model must rank an ordered (clustered) probe stream ahead
//! of random probes, and an avoided sort ahead of a redundant one — the
//! decisions the paper's Figure 7 plan embodies.

/// Cost of one sequentially read page.
pub const SEQ_PAGE: f64 = 1.0;
/// Cost of one randomly read page.
pub const RAND_PAGE: f64 = 4.0;
/// CPU cost of processing one row through an operator.
pub const CPU_ROW: f64 = 0.001;
/// CPU cost of one comparison inside a sort.
///
/// Calibrated for the executor's default normalized-key path
/// ([`fto_common::sortkey`]): a comparison is a `memcmp` of two short
/// byte strings, not a per-column `Value` dispatch, so it prices the
/// same as a hash-table op ([`CPU_HASH`]). The legacy comparator
/// (`sort_key_codec` off) is slower per comparison in wall-clock but
/// identical in comparison *count*, and the model deliberately prices
/// the default; see the sort-kernel microbench in `perfbench` for
/// the measured gap.
pub const CPU_SORT_CMP: f64 = 0.002;
/// CPU cost of one hash-table insert/lookup.
pub const CPU_HASH: f64 = 0.002;
/// CPU cost of evaluating one predicate on one row.
pub const CPU_PRED: f64 = 0.0005;
/// B-tree descent cost per probe (root/internal pages are cached).
pub const PROBE_DESCENT: f64 = 0.004;

/// An accumulated plan cost with its cardinality estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cost {
    /// Total abstract cost.
    pub total: f64,
    /// Estimated output rows.
    pub rows: f64,
}

impl Cost {
    /// A zero cost producing `rows` rows.
    pub fn rows(rows: f64) -> Cost {
        Cost { total: 0.0, rows }
    }

    /// Adds `amount` to the total, keeping cardinality.
    pub fn plus(mut self, amount: f64) -> Cost {
        self.total += amount;
        self
    }

    /// Replaces the cardinality estimate.
    pub fn with_rows(mut self, rows: f64) -> Cost {
        self.rows = rows.max(0.0);
        self
    }
}

/// Cost of a full table scan.
pub fn table_scan(pages: u64, rows: f64) -> f64 {
    pages as f64 * SEQ_PAGE + rows * CPU_ROW
}

/// Cost of an index scan fetching `fetch_rows` of a table with
/// `table_pages` data pages. A clustered index reads data pages in order;
/// an unclustered one pays a random page per fetched row, capped at a full
/// random read of the table (every page touched out of order).
pub fn index_scan(
    leaf_pages: u64,
    table_pages: u64,
    fetch_rows: f64,
    fraction: f64,
    clustered: bool,
) -> f64 {
    let frac = fraction.clamp(0.0, 1.0);
    let leaf = leaf_pages as f64 * frac * SEQ_PAGE;
    let data = if clustered {
        table_pages as f64 * frac * SEQ_PAGE
    } else {
        (fetch_rows * RAND_PAGE).min(table_pages as f64 * RAND_PAGE)
    };
    leaf + data + fetch_rows * CPU_ROW
}

/// Merge fan-in of the external sort: how many spilled runs one merge
/// pass combines. Shared with the executor, whose multi-pass merge uses
/// the same constant, so `calibrate` can compare the estimated pass
/// count against the actual one.
pub const MERGE_FAN_IN: usize = 8;

/// Number of spill passes an external sort of `bytes` bytes makes with
/// `memory` bytes of work space: zero when the input fits, else
/// `ceil(log_F(runs))` merge passes over `runs = ceil(bytes / memory)`
/// initial runs with fan-in `F` ([`MERGE_FAN_IN`]). Each pass writes and
/// reads every page once (§6 of the paper prices exactly this shape).
pub fn sort_spill_passes(bytes: f64, memory: usize) -> f64 {
    if bytes <= memory as f64 || memory == 0 {
        return if memory == 0 && bytes > 0.0 { 1.0 } else { 0.0 };
    }
    let runs = (bytes / memory as f64).ceil();
    (runs.log2() / (MERGE_FAN_IN as f64).log2()).ceil().max(1.0)
}

/// Cost of sorting `rows` rows of `row_width` bytes with `memory` bytes of
/// work space: n·log₂(n) comparisons plus, when the input exceeds memory,
/// one spill write + read of every page *per merge pass* —
/// [`sort_spill_passes`] of them. (An earlier version charged exactly one
/// pass regardless of how far the input exceeded memory, which under-costed
/// heavily oversized sorts relative to pre-sorted index paths.)
pub fn sort(rows: f64, row_width: usize, memory: usize) -> f64 {
    if rows <= 1.0 {
        return rows * CPU_SORT_CMP;
    }
    let cmp = rows * rows.log2() * CPU_SORT_CMP;
    let bytes = rows * row_width as f64;
    let pages = bytes / crate::plan::SIM_PAGE_BYTES;
    cmp + sort_spill_passes(bytes, memory) * 2.0 * pages * SEQ_PAGE
}

/// Cost of a *segmented* sort: the input already satisfies a prefix of
/// the requirement, delivering `groups` contiguous prefix groups, and
/// only the residual suffix is sorted within each group — Σ over groups
/// of `sort(group)` plus one boundary check per row ([`CPU_PRED`]: a
/// prefix-key byte comparison). With uniform groups of `rows / groups`
/// rows the comparison term is `rows·log₂(rows/groups)` instead of the
/// full sort's `rows·log₂(rows)`, and the spill term prices one group's
/// working set against memory instead of the whole input — segmented
/// beats full whenever the prefix has more than one distinct value.
pub fn segmented_sort(rows: f64, groups: f64, row_width: usize, memory: usize) -> f64 {
    let groups = groups.clamp(1.0, rows.max(1.0));
    groups * sort(rows / groups, row_width, memory) + rows * CPU_PRED
}

/// Per-probe cost of an index nested-loop join into a table.
///
/// `matches_per_probe` rows are fetched per probe. When the outer stream
/// is ordered on the probe column *and* the inner index is clustered, the
/// probes walk the inner table forward — the model amortizes the whole
/// inner table as one sequential pass split across the probes, the effect
/// the paper's ordered nested-loop join exists to create. Otherwise every
/// distinct fetched row costs a random page.
pub fn index_probe(
    probes: f64,
    matches_per_probe: f64,
    table_pages: u64,
    ordered_and_clustered: bool,
) -> f64 {
    let descent = probes * PROBE_DESCENT;
    let fetched = probes * matches_per_probe;
    let data = if ordered_and_clustered {
        (table_pages as f64 * SEQ_PAGE).min(fetched * SEQ_PAGE) + fetched * CPU_ROW
    } else {
        fetched * RAND_PAGE + fetched * CPU_ROW
    };
    descent + data
}

/// Cost of the merge phase of a merge join (inputs costed separately).
///
/// `avg_inner_ties` is the expected number of inner rows per distinct
/// join-key value (≥ 1). The streaming merge join buffers each inner tie
/// group and rescans it for every outer row sharing the key, so each
/// outer row touches `avg_inner_ties` buffered rows, not one: with heavy
/// duplication the merge phase does `outer_rows × avg_inner_ties` row
/// visits. Ignoring that term (i.e. assuming ties = 1) systematically
/// under-costs duplicate-heavy merge joins against hash joins.
pub fn merge_join(outer_rows: f64, inner_rows: f64, avg_inner_ties: f64) -> f64 {
    let rescans = outer_rows * (avg_inner_ties.max(1.0) - 1.0);
    (outer_rows + inner_rows + rescans) * CPU_ROW
}

/// Cost of a hash join given both input cardinalities.
pub fn hash_join(build_rows: f64, probe_rows: f64) -> f64 {
    build_rows * (CPU_HASH + CPU_ROW) + probe_rows * (CPU_HASH + CPU_ROW)
}

/// Cost of a streaming (order-based) group-by.
pub fn stream_group_by(rows: f64) -> f64 {
    rows * CPU_ROW
}

/// Cost of a hash group-by.
pub fn hash_group_by(rows: f64, groups: f64) -> f64 {
    rows * (CPU_HASH + CPU_ROW) + groups * CPU_ROW
}

/// Cost of applying `n_preds` predicates to `rows` rows.
pub fn filter(rows: f64, n_preds: usize) -> f64 {
    rows * n_preds as f64 * CPU_PRED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_index_beats_unclustered_for_big_fractions() {
        let clustered = index_scan(10, 100, 5000.0, 1.0, true);
        let unclustered = index_scan(10, 100, 5000.0, 1.0, false);
        assert!(clustered < unclustered);
    }

    #[test]
    fn unclustered_cost_caps_at_table_random_read() {
        let huge = index_scan(10, 100, 1e9, 1.0, false);
        let capped = 10.0 * SEQ_PAGE + 100.0 * RAND_PAGE + 1e9 * CPU_ROW;
        assert!((huge - capped).abs() < 1e-6);
    }

    #[test]
    fn ordered_probes_beat_random_probes() {
        let ordered = index_probe(10_000.0, 2.0, 500, true);
        let random = index_probe(10_000.0, 2.0, 500, false);
        assert!(ordered < random / 2.0, "{ordered} vs {random}");
    }

    #[test]
    fn sort_grows_superlinearly() {
        let small = sort(1_000.0, 32, 1 << 30);
        let big = sort(10_000.0, 32, 1 << 30);
        assert!(big > 10.0 * small);
        assert_eq!(sort(0.0, 32, 1024), 0.0);
        assert!(sort(1.0, 32, 1024) > 0.0);
    }

    #[test]
    fn sort_spill_charges_io() {
        let in_mem = sort(10_000.0, 100, 10_000 * 100 + 1);
        let spilled = sort(10_000.0, 100, 1 << 10);
        assert!(spilled > in_mem);
    }

    #[test]
    fn spill_passes_follow_log_fan_in() {
        let m = 1 << 20; // 1 MiB work space
        assert_eq!(sort_spill_passes(0.0, m), 0.0);
        assert_eq!(sort_spill_passes(m as f64, m), 0.0); // exactly fits
                                                         // Up to fan-in runs: a single merge pass, as the old model assumed.
        assert_eq!(sort_spill_passes(2.0 * m as f64, m), 1.0);
        assert_eq!(sort_spill_passes(8.0 * m as f64, m), 1.0);
        // Past the fan-in the old model was wrong: more passes.
        assert_eq!(sort_spill_passes(9.0 * m as f64, m), 2.0);
        assert_eq!(sort_spill_passes(64.0 * m as f64, m), 2.0);
        assert_eq!(sort_spill_passes(65.0 * m as f64, m), 3.0);
    }

    #[test]
    fn multi_pass_spill_flips_plan_choice() {
        // 100k rows × 1 KB against a 1 MiB work space: 96 initial runs,
        // so the fixed model charges ceil(log₈ 96) = 3 write+read passes
        // where the old model charged exactly 1. An unclustered index
        // delivering the order sort-free sits between the two totals, so
        // the fix flips the plan choice from scan+sort to the index path.
        let rows = 100_000.0;
        let width = 1000usize;
        let memory = 1usize << 20;
        let bytes = rows * width as f64;
        let pages = (bytes / crate::plan::SIM_PAGE_BYTES) as u64;
        assert_eq!(sort_spill_passes(bytes, memory), 3.0);

        let cmp = rows * rows.log2() * CPU_SORT_CMP;
        let one_pass_spill = 2.0 * pages as f64 * SEQ_PAGE; // the old bug
        let scan_sort_old = table_scan(pages, rows) + cmp + one_pass_spill;
        let scan_sort_fixed = table_scan(pages, rows) + sort(rows, width, memory);
        let index_path = index_scan(pages / 60, pages, rows, 1.0, false);

        assert!(
            scan_sort_old < index_path,
            "old model kept the sort: {scan_sort_old} vs {index_path}"
        );
        assert!(
            index_path < scan_sort_fixed,
            "fixed model flips to the index: {index_path} vs {scan_sort_fixed}"
        );
    }

    #[test]
    fn segmented_sort_beats_full_sort_past_one_group() {
        let rows = 1_000_000.0;
        let full = sort(rows, 48, 1 << 30);
        // One group degenerates to the full sort plus boundary checks.
        let one = segmented_sort(rows, 1.0, 48, 1 << 30);
        assert!((one - (full + rows * CPU_PRED)).abs() < 1e-6);
        // More groups, cheaper — monotonically.
        let g10 = segmented_sort(rows, 10.0, 48, 1 << 30);
        let g1k = segmented_sort(rows, 1_000.0, 48, 1 << 30);
        let g100k = segmented_sort(rows, 100_000.0, 48, 1 << 30);
        assert!(g10 < full && g1k < g10 && g100k < g1k);
        // Groups are clamped into [1, rows].
        assert_eq!(
            segmented_sort(100.0, 0.0, 48, 1 << 30),
            segmented_sort(100.0, 1.0, 48, 1 << 30)
        );
        assert_eq!(
            segmented_sort(100.0, 1e9, 48, 1 << 30),
            segmented_sort(100.0, 100.0, 48, 1 << 30)
        );
    }

    #[test]
    fn segmented_sort_avoids_spill_when_groups_fit() {
        // The whole input exceeds memory but each group fits: the full
        // sort pays spill passes, the segmented sort none.
        let rows = 100_000.0;
        let width = 100usize;
        let memory = 64 << 10;
        let full = sort(rows, width, memory);
        let seg = segmented_sort(rows, 1_000.0, width, memory);
        assert!(sort_spill_passes(rows * width as f64, memory) > 0.0);
        assert_eq!(
            sort_spill_passes(rows / 1_000.0 * width as f64, memory),
            0.0
        );
        assert!(seg < full / 2.0, "{seg} vs {full}");
    }

    #[test]
    fn merge_join_charges_tie_rescans() {
        // Unique inner keys: the tie term vanishes and the cost is the
        // plain two-stream pass.
        let unique = merge_join(1_000.0, 1_000.0, 1.0);
        assert!((unique - 2_000.0 * CPU_ROW).abs() < 1e-12);
        // 10 inner duplicates per key: each outer row rescans 9 extra
        // buffered rows.
        let dup = merge_join(1_000.0, 1_000.0, 10.0);
        assert!((dup - (2_000.0 + 9_000.0) * CPU_ROW).abs() < 1e-12);
        assert!(dup > unique);
        // Ties below 1 (estimator noise) are clamped, never a discount.
        assert_eq!(merge_join(1_000.0, 1_000.0, 0.5), unique);
    }

    #[test]
    fn cost_builder() {
        let c = Cost::rows(10.0).plus(5.0).with_rows(3.0);
        assert_eq!(c.total, 5.0);
        assert_eq!(c.rows, 3.0);
        assert_eq!(Cost::rows(1.0).with_rows(-4.0).rows, 0.0);
    }

    #[test]
    fn table_scan_charges_pages_and_rows() {
        let c = table_scan(10, 400.0);
        assert!((c - (10.0 + 0.4)).abs() < 1e-9);
    }
}
