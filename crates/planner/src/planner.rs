//! The bottom-up box planner (paper §5.2).

use crate::access;
use crate::cardinality::CardEstimator;
use crate::config::{OptimizerConfig, PlannerStats};
use crate::cost::{self, Cost};
use crate::join;
use crate::plan::{Plan, PlanNode};
use fto_catalog::Catalog;
use fto_common::{ColSet, FtoError, IndexId, Result};
use fto_expr::{Expr, PredId, RowLayout};
use fto_obs::trace::{emit, span};
use fto_obs::TraceEvent;
use fto_order::{FlexOrder, OrderContext, OrderSpec, StreamProps};
use fto_qgm::graph::{BoxId, BoxKind, OutputExpr, QgmBox, QuantifierInput};
use fto_qgm::QueryGraph;
use std::sync::Arc;

/// Estimated bytes per row for sort costing when the exact layout width
/// is unknown; declared widths refine this at access time.
const DEFAULT_ROW_WIDTH: usize = 48;

/// The cost-based planner for one query.
pub struct Planner<'a> {
    /// The query being planned (after rewrites and the order scan).
    pub graph: &'a QueryGraph,
    /// The schema.
    pub catalog: &'a Catalog,
    /// Configuration knobs.
    pub config: OptimizerConfig,
    /// Work counters.
    pub stats: PlannerStats,
}

impl<'a> Planner<'a> {
    /// Creates a planner. The graph should already have been through the
    /// QGM rewrites and the order scan (`OrderScan::run`).
    pub fn new(graph: &'a QueryGraph, catalog: &'a Catalog, config: OptimizerConfig) -> Self {
        Planner {
            graph,
            catalog,
            config,
            stats: PlannerStats::default(),
        }
    }

    /// Plans the whole query, returning the cheapest valid plan.
    pub fn plan_query(&mut self) -> Result<Plan> {
        let candidates = self.plan_box(self.graph.root)?;
        candidates
            .into_iter()
            .min_by(|a, b| a.cost.total.total_cmp(&b.cost.total))
            .ok_or_else(|| FtoError::Plan("no plan produced".into()))
    }

    /// Plans one box, returning a Pareto set of alternatives (pruned by
    /// cost + property dominance).
    pub fn plan_box(&mut self, id: BoxId) -> Result<Vec<Plan>> {
        let qbox = self.graph.boxed(id).clone();
        let _span = span(|| format!("box {id} ({})", kind_name(&qbox.kind)));
        let mut plans = match &qbox.kind {
            BoxKind::Select => self.plan_select(&qbox)?,
            BoxKind::GroupBy { grouping } => self.plan_group_by(&qbox, grouping)?,
            BoxKind::Union => self.plan_union(&qbox)?,
            BoxKind::OuterJoin { on } => self.plan_outer_join(&qbox, on)?,
        };

        // DISTINCT on the box's output.
        if qbox.distinct {
            plans = self.plan_distinct(&qbox, plans);
        }

        // Output order requirement (ORDER BY).
        if let Some(req) = &qbox.output_order {
            plans = plans
                .into_iter()
                .map(|p| self.ensure_order(p, req))
                .collect();
        }

        // Row budget (LIMIT). A top-level sort fuses with the limit into
        // Top-N selection — the classic payoff of ORDER BY + LIMIT.
        if let Some(n) = qbox.limit {
            plans = plans.into_iter().map(|p| self.apply_limit(p, n)).collect();
        }

        let kept = self.prune(plans);
        emit(|| TraceEvent::Note {
            text: format!("box {id}: {} plan(s) kept", kept.len()),
        });
        Ok(kept)
    }

    /// Wraps a plan in a Limit, fusing with a top-level Sort into Top-N.
    fn apply_limit(&mut self, plan: Plan, n: u64) -> Plan {
        let rows = plan.cost.rows.min(n as f64);
        if let PlanNode::Sort { input, spec } = &plan.node {
            // Selection + small sort instead of a full sort:
            // O(N + n log n) rather than O(N log N).
            let input_rows = input.cost.rows;
            let cost = input
                .cost
                .plus(input_rows * cost::CPU_ROW)
                .plus(rows * rows.max(2.0).log2() * cost::CPU_SORT_CMP)
                .with_rows(rows);
            return Plan {
                node: PlanNode::TopN {
                    input: input.clone(),
                    spec: spec.clone(),
                    n,
                },
                layout: plan.layout.clone(),
                props: plan.props.clone(),
                cost,
            };
        }
        if let PlanNode::SegmentedSort {
            input,
            spec,
            prefix_len,
            ..
        } = &plan.node
        {
            // Early exit: a segmented sort streams one prefix group at a
            // time, so a limit stops the enforcer (and its input) after
            // the first ⌈n / group size⌉ groups have been formed.
            let input_rows = input.cost.rows;
            let prefix_cols: Vec<fto_common::ColId> =
                spec.keys()[..*prefix_len].iter().map(|k| k.col).collect();
            let groups = self
                .estimator()
                .group_count(&prefix_cols, input_rows)
                .clamp(1.0, input_rows.max(1.0));
            let per_group = (input_rows / groups).max(1.0);
            let groups_needed = (n as f64 / per_group).ceil().min(groups);
            let consumed = (groups_needed * per_group).min(input_rows);
            let width = plan.layout.arity() * 8 + 16;
            let partial = cost::segmented_sort(
                consumed,
                groups_needed,
                width.max(DEFAULT_ROW_WIDTH / 2),
                self.config.sort_memory,
            );
            let full = plan.cost.total - input.cost.total;
            // The input is only pulled until enough groups have been
            // formed, so its streaming cost is prorated by the consumed
            // fraction (standard limit-pushdown pricing).
            let fraction = (consumed / input_rows.max(1.0)).min(1.0);
            let cost = Cost {
                total: input.cost.total * fraction + partial.min(full),
                rows: 0.0,
            }
            .with_rows(rows);
            return Plan {
                layout: plan.layout.clone(),
                props: plan.props.clone(),
                node: PlanNode::Limit {
                    input: Arc::new(plan),
                    n,
                },
                cost,
            };
        }
        let cost = plan.cost.with_rows(rows);
        Plan {
            layout: plan.layout.clone(),
            props: plan.props.clone(),
            node: PlanNode::Limit {
                input: Arc::new(plan),
                n,
            },
            cost,
        }
    }

    // ----- Select boxes -------------------------------------------------

    fn plan_select(&mut self, qbox: &QgmBox) -> Result<Vec<Plan>> {
        // Candidate plans per quantifier.
        let mut inputs: Vec<Vec<Plan>> = Vec::with_capacity(qbox.quantifiers.len());
        for q in &qbox.quantifiers {
            let local = self.local_preds(qbox, &q.col_set());
            let candidates = match q.input {
                QuantifierInput::Table(_) => access::access_paths(self, q, &local),
                QuantifierInput::Box(child) => {
                    let plans = self.plan_box(child)?;
                    plans
                        .into_iter()
                        .map(|p| self.apply_filter(p, &local))
                        .collect()
                }
            };
            inputs.push(self.prune(candidates));
        }

        let mut plans = if inputs.len() == 1 {
            let mut plans = inputs.pop().expect("one input");
            // Sort-ahead on single-input boxes: offer sorted variants for
            // the box's interesting orders so parents can stream.
            if self.config.sort_ahead {
                let extra = self.sort_ahead_variants(qbox, &plans);
                plans.extend(extra);
            }
            plans
        } else if inputs.is_empty() {
            return Err(FtoError::Plan("select box with no quantifiers".into()));
        } else {
            join::enumerate(self, qbox, inputs)?
        };

        // Apply any predicates not yet applied (correctness backstop; in
        // practice local + join predicates cover everything).
        plans = plans
            .into_iter()
            .map(|p| {
                let missing: Vec<PredId> = qbox
                    .predicates
                    .iter()
                    .copied()
                    .filter(|pid| p.props.preds.binary_search(pid).is_err())
                    .collect();
                self.apply_filter(p, &missing)
            })
            .collect();

        // Project to the box's outputs.
        Ok(plans
            .into_iter()
            .map(|p| self.project_outputs(p, qbox))
            .collect())
    }

    /// Sorted variants of existing plans for each interesting order
    /// (sort-ahead below whatever the parent box will add).
    fn sort_ahead_variants(&mut self, qbox: &QgmBox, plans: &[Plan]) -> Vec<Plan> {
        let mut extra = Vec::new();
        for interest in qbox.interesting.iter().take(self.config.max_sort_ahead) {
            for plan in plans {
                let ctx = self.effective_ctx(&plan.props);
                let (homog, _) = ctx.homogenize_prefix(interest, &plan.props.cols);
                if homog.is_empty() || ctx.test_order(&homog, &plan.props.order) {
                    continue;
                }
                let sorted = self.add_sort(plan.clone(), &homog);
                emit(|| TraceEvent::SortAhead {
                    interest: interest.to_string(),
                    plan: sorted.trace_desc(),
                });
                extra.push(sorted);
            }
        }
        extra
    }

    // ----- Group-by boxes -----------------------------------------------

    fn plan_group_by(
        &mut self,
        qbox: &QgmBox,
        grouping: &[fto_common::ColId],
    ) -> Result<Vec<Plan>> {
        let q = qbox
            .quantifiers
            .first()
            .ok_or_else(|| FtoError::Plan("group-by box with no input".into()))?;
        let local = self.local_preds(qbox, &q.col_set());
        let child_plans: Vec<Plan> = match q.input {
            QuantifierInput::Table(_) => access::access_paths(self, &q.clone(), &local),
            QuantifierInput::Box(child) => self
                .plan_box(child)?
                .into_iter()
                .map(|p| self.apply_filter(p, &local))
                .collect(),
        };

        let aggs: Vec<(fto_common::ColId, fto_expr::AggCall)> = qbox
            .output
            .iter()
            .filter_map(|o| match &o.expr {
                OutputExpr::Agg(call) => Some((o.col, call.clone())),
                OutputExpr::Scalar(_) => None,
            })
            .collect();
        let flex = qbox.group_order.clone().unwrap_or_else(|| {
            FlexOrder::group_by(
                grouping.iter().copied(),
                aggs.iter()
                    .filter(|(_, c)| c.distinct)
                    .filter_map(|(_, c)| c.arg.as_col()),
            )
        });

        let grouping_set: ColSet = grouping.iter().copied().collect();
        let agg_cols: ColSet = aggs.iter().map(|(c, _)| *c).collect();
        let out_layout = RowLayout::new(
            grouping
                .iter()
                .copied()
                .chain(aggs.iter().map(|(c, _)| *c))
                .collect::<Vec<_>>(),
        );

        let mut plans = Vec::new();
        for child in child_plans {
            let groups = self
                .estimator()
                .group_count(grouping, child.cost.rows)
                .max(1.0);

            // Order-based: stream directly when the child's order already
            // groups rows; otherwise sort first.
            let ctx = self.effective_ctx(&child.props);
            let streaming_child = if flex.satisfied_by(&child.props.order, &ctx) {
                self.stats.sorts_avoided += 1;
                emit(|| TraceEvent::SortAvoided {
                    requirement: "group-by".to_string(),
                    order: child.props.order.to_string(),
                });
                child.clone()
            } else {
                let spec = flex.concretize(&child.props.order, &ctx);
                self.add_sort(child.clone(), &spec)
            };
            let props = streaming_child.props.group_by(
                &grouping_set,
                &agg_cols,
                streaming_child.props.order.clone(),
            );
            plans.push(Plan {
                node: PlanNode::StreamGroupBy {
                    input: Arc::new(streaming_child.clone()),
                    grouping: grouping.to_vec(),
                    aggs: aggs.clone(),
                },
                layout: out_layout.clone(),
                props,
                cost: streaming_child
                    .cost
                    .plus(cost::stream_group_by(streaming_child.cost.rows))
                    .with_rows(groups),
            });

            // Hash-based alternative (paper §5.1: recording an input order
            // requirement "does not preclude hash-based GROUP BY").
            if self.config.enable_hash_grouping {
                let props = child
                    .props
                    .group_by(&grouping_set, &agg_cols, OrderSpec::empty());
                plans.push(Plan {
                    node: PlanNode::HashGroupBy {
                        input: Arc::new(child.clone()),
                        grouping: grouping.to_vec(),
                        aggs: aggs.clone(),
                    },
                    layout: out_layout.clone(),
                    props,
                    cost: child
                        .cost
                        .plus(cost::hash_group_by(child.cost.rows, groups))
                        .with_rows(groups),
                });
            }
        }
        self.stats.plans_generated += plans.len() as u64;
        for p in &plans {
            emit(|| TraceEvent::PlanGenerated {
                stage: "group-by",
                plan: p.trace_desc(),
            });
        }

        Ok(plans
            .into_iter()
            .map(|p| self.project_outputs(p, qbox))
            .collect())
    }

    // ----- Union boxes ----------------------------------------------------

    fn plan_union(&mut self, qbox: &QgmBox) -> Result<Vec<Plan>> {
        let mut branch_plans = Vec::new();
        let mut total_cost = 0.0;
        let mut total_rows = 0.0;
        for q in &qbox.quantifiers {
            let QuantifierInput::Box(child) = q.input else {
                return Err(FtoError::Plan(
                    "union quantifiers must range over boxes".into(),
                ));
            };
            let best = self
                .plan_box(child)?
                .into_iter()
                .min_by(|a, b| a.cost.total.total_cmp(&b.cost.total))
                .ok_or_else(|| FtoError::Plan("empty union branch".into()))?;
            total_cost += best.cost.total;
            total_rows += best.cost.rows;
            branch_plans.push(Arc::new(best));
        }
        let out_cols: Vec<fto_common::ColId> = qbox.output_cols();
        let props = StreamProps::base_table(out_cols.iter().copied().collect(), vec![]);
        let plan = Plan {
            node: PlanNode::UnionAll {
                inputs: branch_plans,
            },
            layout: RowLayout::new(out_cols),
            props,
            cost: Cost {
                total: total_cost + total_rows * cost::CPU_ROW,
                rows: total_rows,
            },
        };
        self.stats.plans_generated += 1;
        emit(|| TraceEvent::PlanGenerated {
            stage: "union",
            plan: plan.trace_desc(),
        });
        Ok(vec![plan])
    }

    // ----- Outer joins ------------------------------------------------------

    /// Plans a left outer join box: every (outer, inner) candidate pair
    /// yields one LeftOuterJoin plan. The outer's order survives; ON
    /// equalities feed only one-directional FDs (paper §4.1).
    fn plan_outer_join(&mut self, qbox: &QgmBox, on: &[PredId]) -> Result<Vec<Plan>> {
        let [lq, rq] = qbox.quantifiers.as_slice() else {
            return Err(FtoError::Plan(
                "outer-join box needs exactly two quantifiers".into(),
            ));
        };
        let plan_side = |planner: &mut Self, q: &fto_qgm::graph::Quantifier| -> Result<Vec<Plan>> {
            Ok(match q.input {
                QuantifierInput::Table(_) => access::access_paths(planner, q, &[]),
                QuantifierInput::Box(child) => planner.plan_box(child)?,
            })
        };
        let lefts = plan_side(self, lq)?;
        let rights = plan_side(self, rq)?;
        let preserved = lq.col_set();

        // Equi pairs (outer col, inner col) from the ON conjunction.
        let equates: Vec<(fto_common::ColId, fto_common::ColId)> = on
            .iter()
            .filter_map(|&pid| match self.graph.predicate(pid).classify() {
                fto_expr::PredClass::ColEqCol(a, b) => {
                    if preserved.contains(a) && rq.cols.contains(&b) {
                        Some((a, b))
                    } else if preserved.contains(b) && rq.cols.contains(&a) {
                        Some((b, a))
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .collect();
        let (okeys, ikeys): (Vec<_>, Vec<_>) = equates.iter().copied().unzip();

        let sel = self
            .estimator()
            .conjunction_selectivity(on.iter().map(|&p| self.graph.predicate(p)));

        let mut plans = Vec::new();
        for left in &lefts {
            for right in &rights {
                self.stats.joins_considered += 1;
                // Null padding invalidates every fact local to the inner
                // side (its constants, equivalences, and FDs no longer
                // hold once unmatched rows carry NULLs), so the output
                // keeps only the preserved side's facts plus the key
                // property and the one-directional ON FDs.
                let mut preds = left.props.preds.clone();
                for p in &right.props.preds {
                    if let Err(pos) = preds.binary_search(p) {
                        preds.insert(pos, *p);
                    }
                }
                let mut props = StreamProps {
                    cols: left.props.cols.union(&right.props.cols),
                    order: fto_order::OrderSpec::empty(),
                    preds,
                    keys: fto_order::KeyProperty::join(
                        &left.props.keys,
                        &right.props.keys,
                        &equates,
                    ),
                    fds: left.props.fds.clone(),
                    eq: left.props.eq.clone(),
                };
                props.order = props.ctx().reduce(&left.props.order);
                for &pid in on {
                    props.apply_outer_join_predicate(pid, self.graph.predicate(pid), &preserved);
                }
                // Matched rows plus padded rows: never fewer than the
                // preserved side.
                let rows = (left.cost.rows * right.cost.rows * sel).max(left.cost.rows);
                let total = left.cost.total
                    + right.cost.total
                    + if equates.is_empty() {
                        left.cost.rows.max(1.0) * right.cost.rows * cost::CPU_ROW
                    } else {
                        cost::hash_join(right.cost.rows, left.cost.rows)
                    }
                    + cost::filter(rows, on.len());
                plans.push(Plan {
                    node: PlanNode::LeftOuterJoin {
                        outer: Arc::new(left.clone()),
                        inner: Arc::new(right.clone()),
                        outer_keys: okeys.clone(),
                        inner_keys: ikeys.clone(),
                        predicates: on.to_vec(),
                    },
                    layout: left.layout.concat(&right.layout),
                    props,
                    cost: Cost { total, rows },
                });
            }
        }
        self.stats.plans_generated += plans.len() as u64;
        for p in &plans {
            emit(|| TraceEvent::PlanGenerated {
                stage: "outer-join",
                plan: p.trace_desc(),
            });
        }

        Ok(plans
            .into_iter()
            .map(|p| self.project_outputs(p, qbox))
            .collect())
    }

    // ----- Distinct -------------------------------------------------------

    fn plan_distinct(&mut self, qbox: &QgmBox, plans: Vec<Plan>) -> Vec<Plan> {
        let flex = qbox
            .group_order
            .clone()
            .unwrap_or_else(|| FlexOrder::group_by(qbox.output_cols(), []));
        let mut out = Vec::new();
        for plan in plans {
            let rows = plan.cost.rows;
            let distinct_rows = (rows * 0.5).max(1.0);
            let ctx = self.effective_ctx(&plan.props);

            // Order-based distinct.
            let ordered = if flex.satisfied_by(&plan.props.order, &ctx) {
                self.stats.sorts_avoided += 1;
                emit(|| TraceEvent::SortAvoided {
                    requirement: "distinct".to_string(),
                    order: plan.props.order.to_string(),
                });
                plan.clone()
            } else {
                let spec = flex.concretize(&plan.props.order, &ctx);
                self.add_sort(plan.clone(), &spec)
            };
            let props = ordered.props.distinct();
            out.push(Plan {
                node: PlanNode::StreamDistinct {
                    input: Arc::new(ordered.clone()),
                },
                layout: ordered.layout.clone(),
                props,
                cost: ordered
                    .cost
                    .plus(ordered.cost.rows * cost::CPU_ROW)
                    .with_rows(distinct_rows),
            });

            // Hash-based distinct.
            if self.config.enable_hash_grouping {
                let props = plan.props.distinct();
                out.push(Plan {
                    node: PlanNode::HashDistinct {
                        input: Arc::new(plan.clone()),
                    },
                    layout: plan.layout.clone(),
                    props,
                    cost: plan
                        .cost
                        .plus(cost::hash_group_by(rows, distinct_rows))
                        .with_rows(distinct_rows),
                });
            }
        }
        self.stats.plans_generated += out.len() as u64;
        for p in &out {
            emit(|| TraceEvent::PlanGenerated {
                stage: "distinct",
                plan: p.trace_desc(),
            });
        }
        out
    }

    // ----- Shared helpers -------------------------------------------------

    /// The reasoning context the configuration allows: the stream's full
    /// context when order optimization is on, the trivial context when it
    /// is disabled (orders compare verbatim).
    pub fn effective_ctx(&self, props: &StreamProps) -> OrderContext {
        if self.config.order_optimization {
            props.ctx()
        } else {
            OrderContext::trivial()
        }
    }

    /// Does `plan` already provide `interest`?
    pub fn order_satisfied(&self, plan: &Plan, interest: &OrderSpec) -> bool {
        self.effective_ctx(&plan.props)
            .test_order(interest, &plan.props.order)
    }

    /// Wraps `plan` in a sort producing `spec` (reduced to its minimal
    /// column list under the effective context).
    ///
    /// Reduction rewrites columns to equivalence-class heads, which may
    /// not be physically present in the plan (projected away in favour of
    /// an equivalent column), so the reduced specification is homogenized
    /// back onto the plan's actual layout before the sort is built.
    pub fn add_sort(&mut self, plan: Plan, spec: &OrderSpec) -> Plan {
        let ctx = self.effective_ctx(&plan.props);
        let reduced = ctx.reduce(spec);
        if reduced.is_empty() {
            return plan;
        }
        let layout_cols = plan.layout.col_set();
        let minimal = match ctx.homogenize(&reduced, &layout_cols) {
            Some(physical) => physical,
            None => {
                // Fall back to the caller's columns verbatim (they must be
                // in the layout for the request to make sense at all).
                spec.clone()
            }
        };
        if minimal.is_empty() {
            return plan;
        }
        self.stats.sorts_added += 1;
        emit(|| TraceEvent::SortAdded {
            spec: minimal.to_string(),
            input: plan.trace_desc(),
        });
        let rows = plan.cost.rows;
        let width = (plan.layout.arity() * 8 + 16).max(DEFAULT_ROW_WIDTH / 2);
        let props = plan.props.sorted(&minimal);
        let layout = plan.layout.clone();

        // Segmented (partial) sort: when the input's order property
        // already satisfies a strict non-empty prefix of the minimal
        // specification, rows arrive grouped contiguously by the prefix
        // columns, so only the residual suffix needs sorting — within
        // each group, priced as Σ over groups of sort(group). The split
        // is positional only when reduce(minimal) partitions exactly
        // (the homogenize fallback can leave `minimal` unreduced).
        if self.config.enable_segmented_sort && self.config.order_optimization {
            let (pfx, sfx) = ctx.split_requirement(&minimal, &plan.props.order);
            if !pfx.is_empty() && !sfx.is_empty() && pfx.len() + sfx.len() == minimal.len() {
                let prefix_len = pfx.len();
                let prefix_cols: Vec<fto_common::ColId> =
                    minimal.keys()[..prefix_len].iter().map(|k| k.col).collect();
                let groups = self
                    .estimator()
                    .group_count(&prefix_cols, rows)
                    .clamp(1.0, rows.max(1.0));
                if groups > 1.0 {
                    self.stats.partial_sorts += 1;
                    emit(|| TraceEvent::PartialSortChosen {
                        prefix: pfx.to_string(),
                        suffix: sfx.to_string(),
                        groups: groups.round() as u64,
                    });
                    let cost = plan.cost.plus(cost::segmented_sort(
                        rows,
                        groups,
                        width,
                        self.config.sort_memory,
                    ));
                    return Plan {
                        node: PlanNode::SegmentedSort {
                            input: Arc::new(plan),
                            spec: minimal,
                            prefix_len,
                            est_groups: groups.round() as u64,
                        },
                        layout,
                        props,
                        cost,
                    };
                }
            }
        }

        let cost = plan
            .cost
            .plus(cost::sort(rows, width, self.config.sort_memory));
        Plan {
            node: PlanNode::Sort {
                input: Arc::new(plan),
                spec: minimal,
            },
            layout,
            props,
            cost,
        }
    }

    /// Ensures `plan` satisfies the order requirement `req`, adding a sort
    /// when the property test fails (paper Fig. 3 drives this decision).
    pub fn ensure_order(&mut self, plan: Plan, req: &OrderSpec) -> Plan {
        if self.order_satisfied(&plan, req) {
            self.stats.sorts_avoided += 1;
            emit(|| TraceEvent::SortAvoided {
                requirement: req.to_string(),
                order: plan.props.order.to_string(),
            });
            plan
        } else {
            self.add_sort(plan, req)
        }
    }

    /// Applies predicates via a Filter node (no-op on an empty list).
    pub fn apply_filter(&mut self, plan: Plan, preds: &[PredId]) -> Plan {
        if preds.is_empty() {
            return plan;
        }
        let mut props = plan.props.clone();
        let mut sel = 1.0;
        for &pid in preds {
            let pred = self.graph.predicate(pid);
            props.apply_predicate(pid, pred);
            sel *= self.estimator().selectivity(pred);
        }
        let rows = (plan.cost.rows * sel).max(0.0);
        let cost = plan
            .cost
            .plus(cost::filter(plan.cost.rows, preds.len()))
            .with_rows(rows);
        Plan {
            layout: plan.layout.clone(),
            node: PlanNode::Filter {
                input: Arc::new(plan),
                predicates: preds.to_vec(),
            },
            props,
            cost,
        }
    }

    /// Projects a plan to the box's output list, minting computed columns.
    pub fn project_outputs(&mut self, plan: Plan, qbox: &QgmBox) -> Plan {
        let out_cols: Vec<fto_common::ColId> = qbox.output_cols();
        let passthrough_only = qbox.output.iter().all(|o| o.is_passthrough());
        if passthrough_only && plan.layout.cols() == out_cols.as_slice() {
            return plan;
        }
        let exprs: Vec<(fto_common::ColId, Expr)> = qbox
            .output
            .iter()
            .map(|o| match &o.expr {
                OutputExpr::Scalar(e) => (o.col, e.clone()),
                // Aggregates were computed by the group-by below; forward.
                OutputExpr::Agg(_) => (o.col, Expr::col(o.col)),
            })
            .collect();

        // Properties: keep what survives for pass-through columns, then
        // add computed columns and their defining FDs.
        let keep: ColSet = exprs
            .iter()
            .filter_map(|(c, e)| (e.as_col() == Some(*c)).then_some(*c))
            .collect();
        let mut props = plan.props.project(&keep);
        for (c, e) in &exprs {
            if e.as_col() != Some(*c) {
                props.cols.insert(*c);
                props
                    .fds
                    .add(fto_order::Fd::new(e.cols(), ColSet::singleton(*c)));
            }
        }
        let rows = plan.cost.rows;
        let cost = plan.cost.plus(rows * cost::CPU_ROW * 0.5);
        Plan {
            node: PlanNode::Project {
                input: Arc::new(plan),
                exprs,
            },
            layout: RowLayout::new(out_cols),
            props,
            cost,
        }
    }

    /// Predicates of `qbox` whose columns all come from `cols`.
    pub fn local_preds(&self, qbox: &QgmBox, cols: &ColSet) -> Vec<PredId> {
        qbox.predicates
            .iter()
            .copied()
            .filter(|&pid| self.graph.predicate(pid).cols().is_subset(cols))
            .collect()
    }

    /// Cost/property pruning: a plan survives unless another plan is both
    /// at least as cheap and at least as good on every property dimension
    /// (paper §5.2.1's `<=` comparison).
    pub fn prune(&mut self, plans: Vec<Plan>) -> Vec<Plan> {
        let mut kept: Vec<Plan> = Vec::with_capacity(plans.len());
        for plan in plans {
            if let Some(winner) = kept.iter().find(|k| self.plan_dominates(k, &plan)) {
                self.stats.plans_pruned += 1;
                emit(|| TraceEvent::PlanPruned {
                    loser: plan.trace_desc(),
                    winner: winner.trace_desc(),
                });
                continue;
            }
            let stats = &mut self.stats;
            let config = &self.config;
            kept.retain(|k| {
                let gone = plan_dominates_under(config, &plan, k);
                if gone {
                    stats.plans_pruned += 1;
                    emit(|| TraceEvent::PlanPruned {
                        loser: k.trace_desc(),
                        winner: plan.trace_desc(),
                    });
                }
                !gone
            });
            kept.push(plan);
        }
        kept
    }

    fn plan_dominates(&self, a: &Plan, b: &Plan) -> bool {
        plan_dominates_under(&self.config, a, b)
    }

    /// The cardinality estimator for this query.
    pub fn estimator(&self) -> CardEstimator<'_> {
        CardEstimator::new(self.graph, self.catalog)
    }

    /// Simulated leaf-page count of an index, from table statistics.
    pub fn index_leaf_pages(&self, index: IndexId) -> Option<u64> {
        let ix = self.catalog.index(index).ok()?;
        let stats = self.catalog.stats(ix.table);
        Some(stats.row_count.div_ceil(256).max(1))
    }
}

/// Free-function form of the dominance test so [`Planner::prune`] can
/// call it while its stats counters are mutably borrowed.
fn plan_dominates_under(config: &OptimizerConfig, a: &Plan, b: &Plan) -> bool {
    if a.cost.total > b.cost.total {
        return false;
    }
    let ctx = if config.order_optimization {
        a.props.ctx()
    } else {
        OrderContext::trivial()
    };
    a.props.dominates_under(&b.props, &ctx)
}

/// Short name of a box kind for trace spans.
fn kind_name(kind: &BoxKind) -> &'static str {
    match kind {
        BoxKind::Select => "select",
        BoxKind::GroupBy { .. } => "group-by",
        BoxKind::Union => "union",
        BoxKind::OuterJoin { .. } => "outer-join",
    }
}

/// Shared fixtures for the planner test suites.
#[cfg(any(test, debug_assertions))]
pub mod tests_support {
    use fto_catalog::{Catalog, ColumnDef, KeyDef};
    use fto_common::{DataType, Direction, Row, Value};
    use fto_storage::Database;

    /// A one-table database: t(k int primary key, v int, s varchar) with a
    /// secondary index on v, loaded with `k ∈ 0..200`, `v = k % 20`.
    pub fn simple_db() -> Database {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "t",
                vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                    ColumnDef::new("s", DataType::Str),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        cat.create_index("t_v", t, vec![(1, Direction::Asc)], false, false)
            .unwrap();
        let mut db = Database::new(cat);
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 20),
                    Value::str(format!("s{i}")),
                ]
                .into_boxed_slice()
            })
            .collect();
        db.load_table(t, rows).unwrap();
        db
    }

    /// A three-table schema shaped like the paper's Q3: customer, orders
    /// (clustered pk o_orderkey), lineitem (clustered index on
    /// l_orderkey). `n` scales the order count.
    pub fn q3_like_db(n: i64) -> Database {
        let mut cat = Catalog::new();
        let customer = cat
            .create_table(
                "customer",
                vec![
                    ColumnDef::new("c_custkey", DataType::Int),
                    ColumnDef::new("c_mktsegment", DataType::Str),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        let orders = cat
            .create_table(
                "orders",
                vec![
                    ColumnDef::new("o_orderkey", DataType::Int),
                    ColumnDef::new("o_custkey", DataType::Int),
                    ColumnDef::new("o_orderdate", DataType::Date),
                    ColumnDef::new("o_shippriority", DataType::Int),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        let lineitem = cat
            .create_table(
                "lineitem",
                vec![
                    ColumnDef::new("l_orderkey", DataType::Int),
                    ColumnDef::new("l_extendedprice", DataType::Double),
                    ColumnDef::new("l_discount", DataType::Double),
                    ColumnDef::new("l_shipdate", DataType::Date),
                ],
                vec![],
            )
            .unwrap();
        cat.create_index(
            "l_orderkey_ix",
            lineitem,
            vec![(0, Direction::Asc)],
            false,
            true,
        )
        .unwrap();
        let mut db = Database::new(cat);

        let customers = n / 10 + 1;
        db.load_table(
            customer,
            (0..customers)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::str(if i % 5 == 0 { "building" } else { "auto" }),
                    ]
                    .into_boxed_slice()
                })
                .collect(),
        )
        .unwrap();
        db.load_table(
            orders,
            (0..n)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Int(i % customers),
                        Value::Date((i % 90) as i32),
                        Value::Int(i % 3),
                    ]
                    .into_boxed_slice()
                })
                .collect(),
        )
        .unwrap();
        db.load_table(
            lineitem,
            (0..n * 4)
                .map(|i| {
                    vec![
                        Value::Int(i / 4),
                        Value::Double(100.0 + (i % 900) as f64),
                        Value::Double(0.01 * (i % 10) as f64),
                        Value::Date((i % 120) as i32),
                    ]
                    .into_boxed_slice()
                })
                .collect(),
        )
        .unwrap();
        db
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::simple_db;
    use super::*;
    use fto_common::Value;
    use fto_expr::Predicate;
    use fto_qgm::graph::OutputCol;
    use fto_qgm::{OrderScan, QueryGraph};

    fn single_table_query(
        db: &fto_storage::Database,
        order_by: Option<usize>,
    ) -> (QueryGraph, Vec<fto_common::ColId>) {
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("t").unwrap());
        let cols = g.boxed(b).quantifiers[0].cols.clone();
        g.boxed_mut(b).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();
        if let Some(ord) = order_by {
            g.boxed_mut(b).output_order = Some(OrderSpec::ascending([cols[ord]]));
        }
        g.root = b;
        (g, cols)
    }

    #[test]
    fn plans_simple_scan() {
        let db = simple_db();
        let (mut g, _) = single_table_query(&db, None);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert!(plan.cost.rows > 0.0);
        // Cheapest access with no requirement: plain table scan.
        assert_eq!(
            plan.count_ops(&|n| matches!(n, PlanNode::TableScan { .. })),
            1
        );
    }

    #[test]
    fn order_by_key_uses_index_not_sort() {
        let db = simple_db();
        let (mut g, _) = single_table_query(&db, Some(0));
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert_eq!(plan.count_ops(&|n| matches!(n, PlanNode::Sort { .. })), 0);
        assert_eq!(
            plan.count_ops(&|n| matches!(n, PlanNode::IndexScan { .. })),
            1
        );
        assert!(p.stats.sorts_avoided > 0);
    }

    #[test]
    fn order_by_desc_uses_reverse_index_scan() {
        let db = simple_db();
        let (mut g, cols) = single_table_query(&db, None);
        let root = g.root;
        g.boxed_mut(root).output_order =
            Some(OrderSpec::new(vec![fto_order::SortKey::desc(cols[0])]));
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert_eq!(plan.count_ops(&|n| matches!(n, PlanNode::Sort { .. })), 0);
        assert_eq!(
            plan.count_ops(&|n| matches!(n, PlanNode::IndexScan { reverse: true, .. })),
            1,
            "{}",
            plan.explain(&|c| c.to_string())
        );
    }

    #[test]
    fn order_by_unindexed_column_sorts_minimally() {
        let db = simple_db();
        let (mut g, cols) = single_table_query(&db, None);
        // ORDER BY s, k with s = 'x' applied: the requirement reduces to
        // (k), so whichever plan wins, any sort it contains uses the
        // minimal single column (paper §4.2) — never both.
        let root = g.root;
        g.boxed_mut(root).output_order = Some(OrderSpec::ascending([cols[2], cols[0]]));
        let p0 = g.add_predicate(Predicate::col_eq_const(cols[2], Value::str("x")));
        g.boxed_mut(root).predicates.push(p0);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert!(plan.count_ops(&|n| matches!(n, PlanNode::Sort { .. })) <= 1);
        if let Some(len) = find_sort_len(&plan) {
            assert_eq!(len, 1, "{}", plan.explain(&|c| c.to_string()));
        }
    }

    #[test]
    fn disabled_mode_sorts_verbatim() {
        let db = simple_db();
        let (mut g, cols) = single_table_query(&db, None);
        let root = g.root;
        g.boxed_mut(root).output_order = Some(OrderSpec::ascending([cols[2], cols[0]]));
        let p0 = g.add_predicate(Predicate::col_eq_const(cols[2], Value::str("x")));
        g.boxed_mut(root).predicates.push(p0);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::disabled());
        let plan = p.plan_query().unwrap();
        // Without reduction the optimizer cannot see that (s, k) collapses
        // to (k): it must sort on both columns.
        assert_eq!(plan.count_ops(&|n| matches!(n, PlanNode::Sort { .. })), 1);
        let sort_len = find_sort_len(&plan);
        assert_eq!(sort_len, Some(2));
    }

    fn find_sort_len(plan: &Plan) -> Option<usize> {
        if let PlanNode::Sort { spec, .. } = &plan.node {
            return Some(spec.len());
        }
        plan.children().iter().find_map(|c| find_sort_len(c))
    }

    #[test]
    fn filter_applies_predicates_to_props() {
        let db = simple_db();
        let (mut g, cols) = single_table_query(&db, None);
        let root = g.root;
        let p0 = g.add_predicate(Predicate::col_eq_const(cols[1], Value::Int(3)));
        g.boxed_mut(root).predicates.push(p0);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert!(plan.props.preds.contains(&p0));
        assert!(plan.cost.rows < 200.0);
    }

    #[test]
    fn prune_keeps_pareto_set() {
        let db = simple_db();
        let (mut g, _) = single_table_query(&db, None);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plans = p.plan_box(g.root).unwrap();
        // The cheap unordered scan and the ordered index scans coexist.
        assert!(!plans.is_empty());
        for a in &plans {
            for b in &plans {
                if !std::ptr::eq(a, b) {
                    assert!(
                        !(a.cost.total <= b.cost.total
                            && a.props.dominates_under(&b.props, &a.props.ctx())),
                        "pruning left a dominated plan"
                    );
                }
            }
        }
    }

    /// Single-table query over q3_like_db's lineitem (clustered index on
    /// l_orderkey) ordered by the given column indexes.
    fn lineitem_query(
        db: &fto_storage::Database,
        order_by: &[usize],
    ) -> (QueryGraph, Vec<fto_common::ColId>) {
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("lineitem").unwrap());
        let cols = g.boxed(b).quantifiers[0].cols.clone();
        g.boxed_mut(b).output = cols.iter().map(|&c| OutputCol::passthrough(c)).collect();
        g.boxed_mut(b).output_order = Some(OrderSpec::ascending(order_by.iter().map(|&i| cols[i])));
        g.root = b;
        (g, cols)
    }

    fn find_segmented(plan: &Plan) -> Option<(usize, usize)> {
        if let PlanNode::SegmentedSort {
            spec, prefix_len, ..
        } = &plan.node
        {
            return Some((*prefix_len, spec.len()));
        }
        plan.children().iter().find_map(|c| find_segmented(c))
    }

    #[test]
    fn prefix_satisfied_order_uses_segmented_sort() {
        let db = super::tests_support::q3_like_db(200);
        // ORDER BY l_orderkey, l_shipdate: the clustered index supplies
        // (l_orderkey), so only l_shipdate needs sorting, within each
        // orderkey group.
        let (mut g, _) = lineitem_query(&db, &[0, 3]);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert_eq!(
            plan.count_ops(&|n| matches!(n, PlanNode::SegmentedSort { .. })),
            1,
            "{}",
            plan.explain(&|c| c.to_string())
        );
        assert_eq!(plan.count_ops(&|n| matches!(n, PlanNode::Sort { .. })), 0);
        assert_eq!(find_segmented(&plan), Some((1, 2)));
        assert!(p.stats.partial_sorts > 0);
        // A segmented sort still counts as an added sort enforcer.
        assert!(p.stats.sorts_added >= p.stats.partial_sorts);
    }

    #[test]
    fn segmented_sort_beats_full_sort_on_cost() {
        let db = super::tests_support::q3_like_db(200);
        let plan_with = |cfg: OptimizerConfig| {
            let (mut g, _) = lineitem_query(&db, &[0, 3]);
            OrderScan::run(&mut g, db.catalog());
            Planner::new(&g, db.catalog(), cfg).plan_query().unwrap()
        };
        let seg = plan_with(OptimizerConfig::default());
        let full = plan_with(OptimizerConfig::default().with_segmented_sort(false));
        assert!(find_segmented(&seg).is_some());
        assert_eq!(find_segmented(&full), None);
        assert_eq!(full.count_ops(&|n| matches!(n, PlanNode::Sort { .. })), 1);
        assert!(
            seg.cost.total < full.cost.total,
            "segmented {} !< full {}",
            seg.cost.total,
            full.cost.total
        );
    }

    #[test]
    fn segmented_sort_not_used_when_order_fully_satisfied() {
        let db = super::tests_support::q3_like_db(50);
        let (mut g, _) = lineitem_query(&db, &[0]);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert_eq!(
            plan.count_ops(&|n| matches!(
                n,
                PlanNode::Sort { .. } | PlanNode::SegmentedSort { .. }
            )),
            0
        );
        assert!(p.stats.sorts_avoided > 0);
        assert_eq!(p.stats.partial_sorts, 0);
    }

    #[test]
    fn segmented_sort_respects_disabled_modes() {
        let db = super::tests_support::q3_like_db(50);
        for cfg in [
            OptimizerConfig::default().with_segmented_sort(false),
            OptimizerConfig::disabled(),
        ] {
            let (mut g, _) = lineitem_query(&db, &[0, 3]);
            OrderScan::run(&mut g, db.catalog());
            let mut p = Planner::new(&g, db.catalog(), cfg);
            let plan = p.plan_query().unwrap();
            assert_eq!(
                plan.count_ops(&|n| matches!(n, PlanNode::SegmentedSort { .. })),
                0
            );
            assert_eq!(p.stats.partial_sorts, 0);
        }
    }

    #[test]
    fn limit_over_segmented_sort_prices_early_exit() {
        let db = super::tests_support::q3_like_db(200);
        let (mut g, _) = lineitem_query(&db, &[0, 3]);
        let root = g.root;
        g.boxed_mut(root).limit = Some(10);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let limited = p.plan_query().unwrap();

        let (mut g2, _) = lineitem_query(&db, &[0, 3]);
        OrderScan::run(&mut g2, db.catalog());
        let mut p2 = Planner::new(&g2, db.catalog(), OptimizerConfig::default());
        let unlimited = p2.plan_query().unwrap();

        // The limited plan keeps the segmented sort (under a Limit) and is
        // priced cheaper than running the segmentation to completion.
        assert_eq!(
            limited.count_ops(&|n| matches!(n, PlanNode::SegmentedSort { .. })),
            1,
            "{}",
            limited.explain(&|c| c.to_string())
        );
        assert!(limited.cost.total < unlimited.cost.total);
    }

    #[test]
    fn distinct_prefers_order_when_available() {
        let db = simple_db();
        // select distinct k from t order by nothing: k is the key, so the
        // stream is already duplicate-free; both distinct variants exist
        // but stream-distinct over the index needs no sort.
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("t").unwrap());
        let cols = g.boxed(b).quantifiers[0].cols.clone();
        g.boxed_mut(b).output = vec![OutputCol::passthrough(cols[1])];
        g.boxed_mut(b).distinct = true;
        g.root = b;
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        // Either a hash distinct on the cheap scan or a stream distinct on
        // the v-index; both avoid an explicit sort.
        assert_eq!(plan.count_ops(&|n| matches!(n, PlanNode::Sort { .. })), 0);
    }
}
