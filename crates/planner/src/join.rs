//! Left-deep join enumeration with interesting orders and sort-ahead
//! (paper §5.2).
//!
//! Dynamic programming over quantifier subsets. Each subset keeps a
//! *Pareto set* of plans: two join subtrees over the same tables but with
//! different order properties are **not** compared against each other
//! (paper §5.2 — the very source of the O(n²) enumeration growth measured
//! by the complexity bench). For every subset the planner additionally
//! offers sorted variants of its plans, one per interesting order hung off
//! the box by the order scan — this is *sort-ahead*, letting the sort for
//! an ORDER BY or GROUP BY sink an arbitrary number of join levels.
//!
//! Join methods per step: nested-loop, index nested-loop (the paper's
//! *ordered* nested-loop join when the outer's order property covers the
//! probe columns and the inner index is clustered), sort-merge, and hash.

use crate::cost::{self, Cost};
use crate::plan::{Plan, PlanNode};
use crate::planner::Planner;
use fto_common::{ColId, ColSet, FtoError, Result};
use fto_expr::{PredClass, PredId};
use fto_obs::trace::emit;
use fto_obs::TraceEvent;
use fto_order::{OrderSpec, StreamProps};
use fto_qgm::graph::{QgmBox, QuantifierInput};
use std::collections::HashMap;
use std::sync::Arc;

/// Enumerates join orders for a multi-quantifier select box.
///
/// `inputs[i]` holds the access-path alternatives for quantifier `i`
/// (already filtered by their single-table predicates).
pub fn enumerate(
    planner: &mut Planner<'_>,
    qbox: &QgmBox,
    inputs: Vec<Vec<Plan>>,
) -> Result<Vec<Plan>> {
    let n = inputs.len();
    if n > 20 {
        return Err(FtoError::Plan(format!("{n}-way joins not supported")));
    }

    let interesting: Vec<OrderSpec> = if planner.config.sort_ahead {
        qbox.interesting
            .iter()
            .take(planner.config.max_sort_ahead)
            .cloned()
            .collect()
    } else {
        Vec::new()
    };

    let mut best: HashMap<u32, Vec<Plan>> = HashMap::new();
    for (i, plans) in inputs.iter().enumerate() {
        let mut set = plans.clone();
        set.extend(sorted_variants(planner, &interesting, plans));
        best.insert(1 << i, planner.prune(set));
    }

    // Grow subsets by one quantifier at a time (left-deep).
    for size in 1..n {
        // Sorted masks keep enumeration (and hence trace output and
        // cost-tie winners) deterministic across runs.
        let mut masks: Vec<u32> = best
            .keys()
            .copied()
            .filter(|m| m.count_ones() as usize == size)
            .collect();
        masks.sort_unstable();
        for mask in masks {
            for (i, inner_paths) in inputs.iter().enumerate() {
                let bit = 1u32 << i;
                if mask & bit != 0 {
                    continue;
                }
                let outers = best.get(&mask).cloned().unwrap_or_default();
                let mut new_plans = Vec::new();
                for outer in &outers {
                    for inner in inner_paths {
                        new_plans.extend(join_pair(planner, qbox, outer, inner));
                    }
                }
                if new_plans.is_empty() {
                    continue;
                }
                new_plans.extend(sorted_variants(planner, &interesting, &new_plans));
                let entry = best.entry(mask | bit).or_default();
                entry.extend(new_plans);
                let merged = std::mem::take(entry);
                *entry = planner.prune(merged);
            }
        }
    }

    let full = (1u32 << n) - 1;
    best.remove(&full)
        .filter(|p| !p.is_empty())
        .ok_or_else(|| FtoError::Plan("join enumeration produced no plan".into()))
}

/// Sorted variants of `plans` for each interesting order (sort-ahead).
fn sorted_variants(
    planner: &mut Planner<'_>,
    interesting: &[OrderSpec],
    plans: &[Plan],
) -> Vec<Plan> {
    let mut out = Vec::new();
    for interest in interesting {
        for plan in plans {
            let ctx = planner.effective_ctx(&plan.props);
            let (homog, _) = ctx.homogenize_prefix(interest, &plan.props.cols);
            if homog.is_empty() || ctx.test_order(&homog, &plan.props.order) {
                continue;
            }
            let sorted = planner.add_sort(plan.clone(), &homog);
            emit(|| TraceEvent::SortAhead {
                interest: interest.to_string(),
                plan: sorted.trace_desc(),
            });
            // A sort-ahead variant counts as a generated plan, so the
            // trace must carry both events to reconcile with the stats.
            emit(|| TraceEvent::PlanGenerated {
                stage: "sort-ahead",
                plan: sorted.trace_desc(),
            });
            out.push(sorted);
            planner.stats.plans_generated += 1;
        }
    }
    out
}

/// All join methods for one (outer plan, inner access path) pair.
fn join_pair(planner: &mut Planner<'_>, qbox: &QgmBox, outer: &Plan, inner: &Plan) -> Vec<Plan> {
    planner.stats.joins_considered += 1;

    // Predicates that become applicable at this join.
    let combined: ColSet = outer.props.cols.union(&inner.props.cols);
    let applicable: Vec<PredId> = qbox
        .predicates
        .iter()
        .copied()
        .filter(|&pid| {
            outer.props.preds.binary_search(&pid).is_err()
                && inner.props.preds.binary_search(&pid).is_err()
                && planner.graph.predicate(pid).cols().is_subset(&combined)
                && !planner
                    .graph
                    .predicate(pid)
                    .cols()
                    .is_subset(&outer.props.cols)
                && !planner
                    .graph
                    .predicate(pid)
                    .cols()
                    .is_subset(&inner.props.cols)
        })
        .collect();

    // Equi-join column pairs (outer col, inner col).
    let equates: Vec<(ColId, ColId)> = applicable
        .iter()
        .filter_map(|&pid| match planner.graph.predicate(pid).classify() {
            PredClass::ColEqCol(a, b) => {
                if outer.props.cols.contains(a) && inner.props.cols.contains(b) {
                    Some((a, b))
                } else if outer.props.cols.contains(b) && inner.props.cols.contains(a) {
                    Some((b, a))
                } else {
                    None
                }
            }
            _ => None,
        })
        .collect();

    let sel = planner
        .estimator()
        .conjunction_selectivity(applicable.iter().map(|&p| planner.graph.predicate(p)));
    let out_rows = (outer.cost.rows * inner.cost.rows * sel).max(0.0);
    let layout = outer.layout.concat(&inner.layout);

    let mut plans = Vec::new();

    // --- Nested-loop join (inner rescanned per outer row) ---------------
    if planner.config.enable_nested_loop {
        let props = join_props(planner, qbox, outer, inner, &equates, &applicable, true);
        let total = outer.cost.total
            + outer.cost.rows.max(1.0) * inner.cost.total
            + cost::filter(outer.cost.rows * inner.cost.rows, applicable.len().max(1));
        plans.push(Plan {
            node: PlanNode::NestedLoopJoin {
                outer: Arc::new(outer.clone()),
                inner: Arc::new(inner.clone()),
                predicates: applicable.clone(),
            },
            layout: layout.clone(),
            props,
            cost: Cost {
                total,
                rows: out_rows,
            },
        });
    }

    // --- Index nested-loop join ------------------------------------------
    if planner.config.enable_nested_loop {
        plans.extend(index_nlj(
            planner,
            qbox,
            outer,
            inner,
            &equates,
            &applicable,
            out_rows,
            &layout,
        ));
    }

    // --- Merge join -------------------------------------------------------
    if planner.config.enable_merge_join && !equates.is_empty() {
        let (ocols, icols): (Vec<ColId>, Vec<ColId>) = equates.iter().copied().unzip();
        let o_order = OrderSpec::ascending(ocols.iter().copied());
        let i_order = OrderSpec::ascending(icols.iter().copied());
        let outer_sorted = if planner.order_satisfied(outer, &o_order) {
            planner.stats.sorts_avoided += 1;
            emit(|| TraceEvent::SortAvoided {
                requirement: o_order.to_string(),
                order: outer.props.order.to_string(),
            });
            outer.clone()
        } else {
            planner.add_sort(outer.clone(), &o_order)
        };
        let inner_sorted = if planner.order_satisfied(inner, &i_order) {
            planner.stats.sorts_avoided += 1;
            emit(|| TraceEvent::SortAvoided {
                requirement: i_order.to_string(),
                order: inner.props.order.to_string(),
            });
            inner.clone()
        } else {
            planner.add_sort(inner.clone(), &i_order)
        };
        let props = join_props(
            planner,
            qbox,
            &outer_sorted,
            &inner_sorted,
            &equates,
            &applicable,
            true,
        );
        // Expected inner rows per distinct join-key value: the tie groups
        // the streaming merge join buffers and rescans per outer row.
        let inner_rows = inner_sorted.cost.rows;
        let inner_groups = planner.estimator().group_count(&icols, inner_rows);
        let avg_inner_ties = if inner_groups > 0.0 {
            (inner_rows / inner_groups).max(1.0)
        } else {
            1.0
        };
        let total = outer_sorted.cost.total
            + inner_sorted.cost.total
            + cost::merge_join(outer_sorted.cost.rows, inner_rows, avg_inner_ties)
            + cost::filter(out_rows, applicable.len());
        plans.push(Plan {
            node: PlanNode::MergeJoin {
                outer: Arc::new(outer_sorted),
                inner: Arc::new(inner_sorted),
                outer_keys: ocols,
                inner_keys: icols,
                predicates: applicable.clone(),
            },
            layout: layout.clone(),
            props,
            cost: Cost {
                total,
                rows: out_rows,
            },
        });
    }

    // --- Hash join ---------------------------------------------------------
    if planner.config.enable_hash_join && !equates.is_empty() {
        let (ocols, icols): (Vec<ColId>, Vec<ColId>) = equates.iter().copied().unzip();
        // Streaming probe preserves the outer's order.
        let props = join_props(planner, qbox, outer, inner, &equates, &applicable, true);
        let total = outer.cost.total
            + inner.cost.total
            + cost::hash_join(inner.cost.rows, outer.cost.rows)
            + cost::filter(out_rows, applicable.len());
        plans.push(Plan {
            node: PlanNode::HashJoin {
                outer: Arc::new(outer.clone()),
                inner: Arc::new(inner.clone()),
                outer_keys: ocols,
                inner_keys: icols,
                predicates: applicable.clone(),
            },
            layout,
            props,
            cost: Cost {
                total,
                rows: out_rows,
            },
        });
    }

    planner.stats.plans_generated += plans.len() as u64;
    for p in &plans {
        emit(|| TraceEvent::PlanGenerated {
            stage: "join",
            plan: p.trace_desc(),
        });
    }
    plans
}

/// Index nested-loop joins: one per inner-table index whose leading key
/// columns are all equated to outer columns.
#[allow(clippy::too_many_arguments)]
fn index_nlj(
    planner: &mut Planner<'_>,
    qbox: &QgmBox,
    outer: &Plan,
    inner: &Plan,
    equates: &[(ColId, ColId)],
    applicable: &[PredId],
    out_rows: f64,
    layout: &fto_expr::RowLayout,
) -> Vec<Plan> {
    // The inner must be a bare access path over a base table (the probe
    // replaces the scan); reuse its quantifier/table identity.
    let (table, quantifier) = match base_scan_identity(inner) {
        Some(t) => t,
        None => return Vec::new(),
    };
    let inner_local_preds: Vec<PredId> = collect_filter_preds(inner);

    let mut plans = Vec::new();
    if planner.catalog.table(table).is_err() {
        return plans;
    }
    let inner_q = qbox
        .quantifiers
        .iter()
        .find(|q| q.id == quantifier)
        .cloned();
    let Some(inner_q) = inner_q else { return plans };

    let stats = planner.catalog.stats(table);
    let inner_rows = stats.row_count as f64;
    let inner_pages = stats.pages;

    let indexes: Vec<_> = planner.catalog.indexes_for(table).cloned().collect();
    for ix in indexes {
        // Map each leading key part to an equated outer column.
        let mut probe_cols = Vec::new();
        for ord in ix.key_ordinals() {
            let inner_col = inner_q.cols[ord];
            match equates.iter().find(|&&(_, ic)| ic == inner_col) {
                Some(&(oc, _)) => probe_cols.push(oc),
                None => break,
            }
        }
        if probe_cols.is_empty() {
            continue;
        }

        // Is this the paper's *ordered* nested-loop join? The outer's
        // order property must cover the probe columns (reduction makes a
        // one-column prefix sufficient when FDs imply the rest).
        let probe_order = OrderSpec::ascending(probe_cols.iter().copied());
        let ordered = planner.order_satisfied(outer, &probe_order)
            || planner.order_satisfied(outer, &OrderSpec::ascending([probe_cols[0]]));

        let matches_per_probe =
            (inner_rows / planner.estimator().ndv(inner_q.cols[ix.key[0].0], 10.0)).max(0.05);
        let probe_cost = cost::index_probe(
            outer.cost.rows,
            matches_per_probe,
            inner_pages,
            ordered && ix.clustered,
        );

        // Properties: outer order survives; inner contributes its base
        // props (keys, columns); the join predicates apply; the inner's
        // local predicates are evaluated as residuals too.
        let mut all_preds: Vec<PredId> = applicable.to_vec();
        all_preds.extend(inner_local_preds.iter().copied());
        let inner_base = StreamProps::base_table(inner_q.col_set(), base_keys(planner, &inner_q));
        let mut props = StreamProps::join(
            &outer.props,
            &inner_base,
            equates,
            outer.props.order.clone(),
        );
        for &pid in &all_preds {
            props.apply_predicate(pid, planner.graph.predicate(pid));
        }

        let local_sel = planner.estimator().conjunction_selectivity(
            inner_local_preds
                .iter()
                .map(|&p| planner.graph.predicate(p)),
        );
        let rows = (out_rows * local_sel).max(0.0);
        let total = outer.cost.total
            + probe_cost
            + cost::filter(outer.cost.rows * matches_per_probe, all_preds.len().max(1));
        plans.push(Plan {
            node: PlanNode::IndexNestedLoopJoin {
                outer: Arc::new(outer.clone()),
                table,
                quantifier,
                index: ix.id,
                probe_cols: probe_cols.clone(),
                predicates: all_preds,
            },
            layout: layout.clone(),
            props,
            cost: Cost { total, rows },
        });
        planner.stats.plans_generated += 1;
        emit(|| TraceEvent::PlanGenerated {
            stage: "join",
            plan: plans.last().expect("just pushed").trace_desc(),
        });
    }
    plans
}

/// Combined stream properties for a join output.
fn join_props(
    planner: &Planner<'_>,
    _qbox: &QgmBox,
    outer: &Plan,
    inner: &Plan,
    equates: &[(ColId, ColId)],
    applicable: &[PredId],
    preserve_outer_order: bool,
) -> StreamProps {
    let order = if preserve_outer_order {
        outer.props.order.clone()
    } else {
        OrderSpec::empty()
    };
    let mut props = StreamProps::join(&outer.props, &inner.props, equates, order);
    for &pid in applicable {
        props.apply_predicate(pid, planner.graph.predicate(pid));
    }
    props
}

/// If `plan` is a (possibly filtered) bare scan of a base table, returns
/// its (table, quantifier) identity.
fn base_scan_identity(plan: &Plan) -> Option<(fto_common::TableId, fto_common::QuantifierId)> {
    match &plan.node {
        PlanNode::TableScan { table, quantifier }
        | PlanNode::IndexScan {
            table, quantifier, ..
        } => Some((*table, *quantifier)),
        PlanNode::Filter { input, .. } => base_scan_identity(input),
        _ => None,
    }
}

/// Filter predicates wrapped around a scan (to re-apply as probe
/// residuals).
fn collect_filter_preds(plan: &Plan) -> Vec<PredId> {
    match &plan.node {
        PlanNode::Filter { input, predicates } => {
            let mut out = collect_filter_preds(input);
            out.extend(predicates.iter().copied());
            out
        }
        _ => Vec::new(),
    }
}

/// Keys of a base-table quantifier mapped to query columns.
fn base_keys(planner: &Planner<'_>, q: &fto_qgm::graph::Quantifier) -> Vec<ColSet> {
    let QuantifierInput::Table(tid) = q.input else {
        return Vec::new();
    };
    let Ok(table) = planner.catalog.table(tid) else {
        return Vec::new();
    };
    let mut keys: Vec<ColSet> = table
        .keys
        .iter()
        .map(|k| k.columns.iter().map(|&o| q.cols[o]).collect())
        .collect();
    for ix in planner.catalog.indexes_for(tid).filter(|ix| ix.unique) {
        keys.push(ix.key_ordinals().map(|o| q.cols[o]).collect());
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerConfig;
    use crate::planner::tests_support::q3_like_db;
    use fto_common::Value;
    use fto_expr::{CompareOp, Expr, Predicate};
    use fto_qgm::graph::{BoxKind, OutputCol};
    use fto_qgm::{OrderScan, QueryGraph};

    /// customer ⋈ orders ⋈ lineitem with the Q3 predicates.
    fn q3_join_graph(db: &fto_storage::Database) -> (QueryGraph, Vec<ColId>) {
        let cat = db.catalog();
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, cat.table_by_name("customer").unwrap());
        g.add_table_quantifier(b, cat.table_by_name("orders").unwrap());
        g.add_table_quantifier(b, cat.table_by_name("lineitem").unwrap());
        let c = g.boxed(b).quantifiers[0].cols.clone();
        let o = g.boxed(b).quantifiers[1].cols.clone();
        let l = g.boxed(b).quantifiers[2].cols.clone();
        for pred in [
            Predicate::col_eq_col(c[0], o[1]), // c_custkey = o_custkey
            Predicate::col_eq_col(o[0], l[0]), // o_orderkey = l_orderkey
            Predicate::col_eq_const(c[1], Value::str("building")),
            Predicate::new(CompareOp::Lt, Expr::col(o[2]), Expr::Lit(Value::Date(45))),
            Predicate::new(CompareOp::Gt, Expr::col(l[3]), Expr::Lit(Value::Date(45))),
        ] {
            let pid = g.add_predicate(pred);
            g.boxed_mut(b).predicates.push(pid);
        }
        let mut all = Vec::new();
        all.extend(c.iter().copied());
        all.extend(o.iter().copied());
        all.extend(l.iter().copied());
        g.boxed_mut(b).output = all.iter().map(|&cc| OutputCol::passthrough(cc)).collect();
        g.root = b;
        (g, all)
    }

    #[test]
    fn three_way_join_plans() {
        let db = q3_like_db(500);
        let (mut g, _) = q3_join_graph(&db);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        // All three tables appear.
        let scans = plan.count_ops(&|n| {
            matches!(
                n,
                PlanNode::TableScan { .. }
                    | PlanNode::IndexScan { .. }
                    | PlanNode::IndexNestedLoopJoin { .. }
            )
        });
        assert!(scans >= 3, "{}", plan.explain(&|c| c.to_string()));
        // Every predicate is applied somewhere.
        assert_eq!(plan.props.preds.len(), 5);
        assert!(p.stats.joins_considered > 0);
    }

    #[test]
    fn sort_ahead_produces_ordered_join_output() {
        let db = q3_like_db(500);
        let (mut g, all) = q3_join_graph(&db);
        // Ask for the join result ordered by o_orderkey (col index 2+0=2).
        let o_orderkey = all[2];
        let root = g.root;
        g.boxed_mut(root).output_order = Some(OrderSpec::ascending([o_orderkey]));
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        // The output is ordered on o_orderkey...
        assert!(p.order_satisfied(&plan, &OrderSpec::ascending([o_orderkey])));
        // ...and any sort, if present, is NOT the top operator: it was
        // pushed below at least one join (or an ordered index made it
        // unnecessary).
        if let PlanNode::Sort { .. } = plan.node {
            panic!(
                "sort should have been pushed down:\n{}",
                plan.explain(&|c| c.to_string())
            );
        }
    }

    #[test]
    fn disabled_mode_still_plans() {
        let db = q3_like_db(300);
        let (mut g, _) = q3_join_graph(&db);
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::disabled());
        let plan = p.plan_query().unwrap();
        assert_eq!(plan.props.preds.len(), 5);
    }

    #[test]
    fn more_sort_ahead_orders_grow_enumeration() {
        // The §5.2 complexity claim, in miniature: more interesting
        // orders → more subplans generated.
        let db = q3_like_db(300);
        let counts: Vec<u64> = [0usize, 4]
            .iter()
            .map(|&max| {
                let (mut g, all) = q3_join_graph(&db);
                let root = g.root;
                g.boxed_mut(root).output_order = Some(OrderSpec::ascending([all[2]]));
                OrderScan::run(&mut g, db.catalog());
                let cfg = OptimizerConfig {
                    max_sort_ahead: max,
                    sort_ahead: max > 0,
                    ..OptimizerConfig::default()
                };
                let mut p = Planner::new(&g, db.catalog(), cfg);
                p.plan_query().unwrap();
                p.stats.plans_generated
            })
            .collect();
        assert!(counts[1] > counts[0], "{counts:?}");
    }

    #[test]
    fn equates_direction_is_normalized() {
        // Join predicate written "l_orderkey = o_orderkey" (reversed
        // sides) still joins.
        let db = q3_like_db(200);
        let cat = db.catalog();
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, cat.table_by_name("orders").unwrap());
        g.add_table_quantifier(b, cat.table_by_name("lineitem").unwrap());
        let o = g.boxed(b).quantifiers[0].cols.clone();
        let l = g.boxed(b).quantifiers[1].cols.clone();
        let pid = g.add_predicate(Predicate::col_eq_col(l[0], o[0]));
        g.boxed_mut(b).predicates.push(pid);
        g.boxed_mut(b).output = o
            .iter()
            .chain(&l)
            .map(|&c| OutputCol::passthrough(c))
            .collect();
        g.root = b;
        OrderScan::run(&mut g, db.catalog());
        let mut p = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let plan = p.plan_query().unwrap();
        assert!(plan.props.preds.contains(&pid));
    }
}
