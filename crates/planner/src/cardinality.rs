//! Cardinality estimation: classic System-R style selectivities driven by
//! catalog statistics.

use fto_catalog::{Catalog, ColStats};
use fto_common::ColId;
use fto_expr::{CompareOp, Expr, PredClass, Predicate};
use fto_qgm::graph::ColumnOrigin;
use fto_qgm::QueryGraph;

/// Estimates predicate selectivities against base-table statistics.
pub struct CardEstimator<'a> {
    graph: &'a QueryGraph,
    catalog: &'a Catalog,
}

impl<'a> CardEstimator<'a> {
    /// Creates an estimator over a query and its catalog.
    pub fn new(graph: &'a QueryGraph, catalog: &'a Catalog) -> Self {
        CardEstimator { graph, catalog }
    }

    /// Statistics for a column, when it maps to a base-table column with
    /// gathered stats.
    pub fn col_stats(&self, col: ColId) -> Option<&ColStats> {
        match self.graph.registry.info(col).origin {
            ColumnOrigin::Base(_, table, ordinal) => self.catalog.stats(table).columns.get(ordinal),
            ColumnOrigin::Derived(_) => None,
        }
    }

    /// Number of distinct values of a column (1 minimum), defaulting when
    /// unknown.
    pub fn ndv(&self, col: ColId, default: f64) -> f64 {
        match self.col_stats(col) {
            Some(s) if s.ndv > 0 => s.ndv as f64,
            _ => default,
        }
    }

    /// Selectivity of one predicate.
    pub fn selectivity(&self, pred: &Predicate) -> f64 {
        match pred.classify() {
            PredClass::ColEqConst(col, _) => self
                .col_stats(col)
                .map(|s| s.eq_selectivity())
                .unwrap_or(0.1),
            PredClass::ColEqCol(a, b) => {
                let na = self.ndv(a, 10.0);
                let nb = self.ndv(b, 10.0);
                1.0 / na.max(nb)
            }
            PredClass::Opaque => self.opaque_selectivity(pred),
        }
    }

    fn opaque_selectivity(&self, pred: &Predicate) -> f64 {
        // Range predicates between a column and a constant interpolate
        // against min/max; anything else uses textbook defaults.
        match pred.op {
            CompareOp::IsNull => return 0.05,
            CompareOp::IsNotNull => return 0.95,
            _ => {}
        }
        let (col, val, op) = match (&pred.left, &pred.right) {
            (Expr::Col(c), Expr::Lit(v)) => (*c, v, pred.op),
            (Expr::Lit(v), Expr::Col(c)) => (*c, v, pred.op.flipped()),
            _ => {
                return match pred.op {
                    CompareOp::Eq => 0.1,
                    CompareOp::Ne => 0.9,
                    _ => 0.33,
                }
            }
        };
        match op {
            CompareOp::Lt | CompareOp::Le => self
                .col_stats(col)
                .map(|s| s.range_selectivity(val, true))
                .unwrap_or(0.33),
            CompareOp::Gt | CompareOp::Ge => self
                .col_stats(col)
                .map(|s| s.range_selectivity(val, false))
                .unwrap_or(0.33),
            CompareOp::Ne => 0.9,
            CompareOp::Eq => 0.1, // unreachable via classify, kept sound
            // Handled by the early return above; kept sound.
            CompareOp::IsNull => 0.05,
            CompareOp::IsNotNull => 0.95,
        }
    }

    /// Combined selectivity of a conjunction (independence assumption).
    pub fn conjunction_selectivity<'p>(
        &self,
        preds: impl IntoIterator<Item = &'p Predicate>,
    ) -> f64 {
        preds
            .into_iter()
            .map(|p| self.selectivity(p))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Estimated group count for a GROUP BY over `rows` input rows:
    /// product of grouping-column NDVs, capped by the row count.
    pub fn group_count(&self, grouping: &[ColId], rows: f64) -> f64 {
        let ndv: f64 = grouping.iter().map(|&c| self.ndv(c, 10.0)).product();
        ndv.min(rows).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_catalog::{ColumnDef, KeyDef};
    use fto_common::{DataType, Value};
    use fto_qgm::graph::BoxKind;
    use fto_storage::Database;

    fn setup() -> (Database, QueryGraph, Vec<ColId>) {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(
                "t",
                vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("g", DataType::Int),
                ],
                vec![KeyDef::primary([0])],
            )
            .unwrap();
        let mut db = Database::new(cat);
        let rows: Vec<fto_common::Row> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)].into_boxed_slice())
            .collect();
        db.load_table(t, rows).unwrap();

        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("t").unwrap());
        let cols = g.boxed(b).quantifiers[0].cols.clone();
        g.root = b;
        (db, g, cols)
    }

    #[test]
    fn eq_const_uses_ndv() {
        let (db, g, cols) = setup();
        let est = CardEstimator::new(&g, db.catalog());
        let p = Predicate::col_eq_const(cols[0], Value::Int(5));
        assert!((est.selectivity(&p) - 0.01).abs() < 1e-9); // ndv(k)=100
        let p = Predicate::col_eq_const(cols[1], Value::Int(5));
        assert!((est.selectivity(&p) - 0.1).abs() < 1e-9); // ndv(g)=10
    }

    #[test]
    fn join_selectivity_uses_max_ndv() {
        let (db, g, cols) = setup();
        let est = CardEstimator::new(&g, db.catalog());
        let p = Predicate::col_eq_col(cols[0], cols[1]);
        assert!((est.selectivity(&p) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let (db, g, cols) = setup();
        let est = CardEstimator::new(&g, db.catalog());
        // k in 0..99; k < 25 → ~25%.
        let p = Predicate::new(CompareOp::Lt, Expr::col(cols[0]), Expr::int(25));
        let s = est.selectivity(&p);
        assert!((s - 25.0 / 99.0).abs() < 0.01, "{s}");
        // Literal on the left flips the operator.
        let p = Predicate::new(CompareOp::Gt, Expr::int(25), Expr::col(cols[0]));
        assert!((est.selectivity(&p) - s).abs() < 1e-9);
    }

    #[test]
    fn conjunction_multiplies() {
        let (db, g, cols) = setup();
        let est = CardEstimator::new(&g, db.catalog());
        let p1 = Predicate::col_eq_const(cols[1], Value::Int(5));
        let p2 = Predicate::new(CompareOp::Ne, Expr::col(cols[0]), Expr::int(3));
        let s = est.conjunction_selectivity([&p1, &p2]);
        assert!((s - 0.1 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn group_count_caps_at_rows() {
        let (db, g, cols) = setup();
        let est = CardEstimator::new(&g, db.catalog());
        assert_eq!(est.group_count(&[cols[1]], 100.0), 10.0);
        assert_eq!(est.group_count(&[cols[0]], 50.0), 50.0);
        assert_eq!(est.group_count(&[], 50.0), 1.0);
    }

    #[test]
    fn derived_columns_have_no_stats() {
        let (db, mut g, _) = setup();
        let b = g.root;
        let d = g.fresh_derived(b, "d", DataType::Int);
        let est = CardEstimator::new(&g, db.catalog());
        assert!(est.col_stats(d).is_none());
        assert_eq!(est.ndv(d, 7.0), 7.0);
    }
}
