//! Optimizer configuration and planning statistics.

/// Tunable knobs of the optimizer and the execution engine.
///
/// The defaults model the paper's "production DB2". Setting
/// [`order_optimization`](OptimizerConfig::order_optimization) to `false`
/// reproduces the disabled build used for Table 1: reduction, covering,
/// homogenization, and sort-ahead all stop; order properties only satisfy
/// requirements by verbatim column-prefix match.
///
/// The struct is `#[non_exhaustive]`: construct it through
/// [`Default`], the named presets ([`disabled`](OptimizerConfig::disabled),
/// [`db2_1996`](OptimizerConfig::db2_1996), ...), and the fluent
/// `with_*` builder methods, so future knobs are not breaking changes:
///
/// ```
/// use fto_planner::OptimizerConfig;
/// let cfg = OptimizerConfig::default()
///     .with_hash_join(false)
///     .with_batch_size(512);
/// assert!(!cfg.enable_hash_join);
/// assert_eq!(cfg.batch_size, 512);
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct OptimizerConfig {
    /// Master switch for the paper's techniques.
    pub order_optimization: bool,
    /// Allow sort-ahead (pushing sorts below joins). Meaningful only when
    /// `order_optimization` is on; exposed separately for the ablation
    /// benches.
    pub sort_ahead: bool,
    /// Consider merge joins.
    pub enable_merge_join: bool,
    /// Consider hash joins.
    pub enable_hash_join: bool,
    /// Consider hash-based GROUP BY / DISTINCT.
    pub enable_hash_grouping: bool,
    /// Consider (index) nested-loop joins.
    pub enable_nested_loop: bool,
    /// Memory available to a sort before it "spills" (bytes, simulated).
    pub sort_memory: usize,
    /// Maximum number of sort-ahead orders tried per join step (the paper
    /// notes n < 3 in practice; the complexity bench raises this).
    pub max_sort_ahead: usize,
    /// Rows per batch in the streaming executor. Operators pull and
    /// produce batches of (at most) this many rows.
    pub batch_size: usize,
    /// Degree of intra-query parallelism in the streaming executor.
    /// `1` (the default) runs every operator on the calling thread;
    /// `p > 1` lets lowering insert exchange operators that fan pipeline
    /// segments out over `p` workers.
    pub threads: usize,
    /// Use normalized binary sort keys (the `fto_common::sortkey` codec)
    /// in the execution engine: sorts, exchange merges, merge-join tie
    /// detection, and index probes compare memcmp-able byte strings
    /// instead of walking `Value`s. Output is bit-identical either way
    /// (the differential suite runs both); off keeps the legacy
    /// `Value`-comparator paths.
    pub sort_key_codec: bool,
    /// Consider segmented (partial) sorts: when the input's order
    /// property already satisfies a prefix of a sort requirement, the
    /// planner may emit a `SegmentedSort` enforcer that sorts only the
    /// residual suffix within each prefix group — streaming, one group
    /// buffered at a time, priced as Σ over groups of sort(group).
    /// Meaningful only when `order_optimization` is on (the split comes
    /// out of the same reduce/test machinery). Default on.
    pub enable_segmented_sort: bool,
    /// Per-query memory budget in bytes for the streaming executor, or
    /// `None` (the default) for unbounded in-memory execution. When set,
    /// pipeline breakers (sort, Top-N, hash group-by, hash-join build)
    /// bound their working set to this many bytes and spill overflow to
    /// page-charged spill files, and heap-page touches route through a
    /// bounded buffer pool of `budget / PAGE_SIZE` frames. Results are
    /// bit-identical to unbounded execution at any budget.
    pub memory_budget: Option<usize>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            order_optimization: true,
            sort_ahead: true,
            enable_merge_join: true,
            enable_hash_join: true,
            enable_hash_grouping: true,
            enable_nested_loop: true,
            sort_memory: 16 << 20,
            max_sort_ahead: 4,
            batch_size: 1024,
            threads: 1,
            sort_key_codec: true,
            enable_segmented_sort: true,
            memory_budget: None,
        }
    }
}

impl OptimizerConfig {
    /// The default configuration (alias of [`Default::default`], handy as
    /// the head of a builder chain).
    pub fn new() -> Self {
        OptimizerConfig::default()
    }

    /// The paper's "order optimization disabled" baseline.
    pub fn disabled() -> Self {
        OptimizerConfig::default()
            .with_order_optimization(false)
            .with_sort_ahead(false)
    }

    /// The 1996 DB2/CS operator inventory: order-based joins and grouping
    /// only (DB2 Common Server shipped neither hash join nor hash
    /// group-by at the time — the paper's Figures 7 and 8 use sorts,
    /// merge joins, and nested loops exclusively). Used by the Table 1
    /// reproduction so the enabled/disabled comparison isolates order
    /// *reasoning*, as the paper's experiment did.
    pub fn db2_1996() -> Self {
        OptimizerConfig::default()
            .with_hash_join(false)
            .with_hash_grouping(false)
    }

    /// [`OptimizerConfig::db2_1996`] with order optimization disabled —
    /// the exact build the paper benchmarked against in Table 1.
    pub fn db2_1996_disabled() -> Self {
        OptimizerConfig::db2_1996()
            .with_order_optimization(false)
            .with_sort_ahead(false)
    }

    /// Sets the master order-optimization switch.
    pub fn with_order_optimization(mut self, on: bool) -> Self {
        self.order_optimization = on;
        self
    }

    /// Enables or disables sort-ahead.
    pub fn with_sort_ahead(mut self, on: bool) -> Self {
        self.sort_ahead = on;
        self
    }

    /// Enables or disables merge joins.
    pub fn with_merge_join(mut self, on: bool) -> Self {
        self.enable_merge_join = on;
        self
    }

    /// Enables or disables hash joins.
    pub fn with_hash_join(mut self, on: bool) -> Self {
        self.enable_hash_join = on;
        self
    }

    /// Enables or disables hash-based GROUP BY / DISTINCT.
    pub fn with_hash_grouping(mut self, on: bool) -> Self {
        self.enable_hash_grouping = on;
        self
    }

    /// Enables or disables (index) nested-loop joins.
    pub fn with_nested_loop(mut self, on: bool) -> Self {
        self.enable_nested_loop = on;
        self
    }

    /// Sets the simulated sort memory in bytes.
    pub fn with_sort_memory(mut self, bytes: usize) -> Self {
        self.sort_memory = bytes;
        self
    }

    /// Sets the maximum number of sort-ahead orders per join step.
    pub fn with_max_sort_ahead(mut self, n: usize) -> Self {
        self.max_sort_ahead = n;
        self
    }

    /// Sets the streaming executor's batch size (rows per batch, ≥ 1).
    pub fn with_batch_size(mut self, rows: usize) -> Self {
        self.batch_size = rows.max(1);
        self
    }

    /// Sets the streaming executor's degree of parallelism (≥ 1).
    /// `1` disables exchange insertion entirely.
    pub fn with_threads(mut self, p: usize) -> Self {
        self.threads = p.max(1);
        self
    }

    /// Enables or disables the normalized binary sort-key codec in the
    /// execution engine (default on).
    pub fn with_sort_key_codec(mut self, on: bool) -> Self {
        self.sort_key_codec = on;
        self
    }

    /// Enables or disables segmented (partial) sort enforcers (default
    /// on). See [`OptimizerConfig::enable_segmented_sort`].
    pub fn with_segmented_sort(mut self, on: bool) -> Self {
        self.enable_segmented_sort = on;
        self
    }

    /// Sets the per-query executor memory budget in bytes (clamped to at
    /// least 1 — a zero budget means "spill everything", not
    /// "unbounded"). See [`OptimizerConfig::memory_budget`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes.max(1));
        self
    }
}

/// Counters describing how much work the planner did; used by the
/// §5.2 join-enumeration complexity experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Join pairs (outer subset × inner quantifier × method) considered.
    pub joins_considered: u64,
    /// Subplans generated (before pruning).
    pub plans_generated: u64,
    /// Subplans discarded by dominance + cost pruning.
    pub plans_pruned: u64,
    /// Sorts added to plans.
    pub sorts_added: u64,
    /// Sorts avoided because an order property satisfied the requirement.
    pub sorts_avoided: u64,
    /// Sorts downgraded to segmented (partial) sorts because an order
    /// property satisfied a strict prefix of the requirement. Counted in
    /// addition to `sorts_added` (a segmented sort is still a sort
    /// enforcer).
    pub partial_sorts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = OptimizerConfig::default();
        assert!(c.order_optimization);
        assert!(c.sort_ahead);
        assert!(c.enable_merge_join && c.enable_hash_join && c.enable_nested_loop);
        assert_eq!(c.batch_size, 1024);
        assert_eq!(c.threads, 1);
        assert!(c.sort_key_codec);
        assert!(c.enable_segmented_sort);
        assert_eq!(c.memory_budget, None);
    }

    #[test]
    fn segmented_sort_builder_toggles() {
        let c = OptimizerConfig::new().with_segmented_sort(false);
        assert!(!c.enable_segmented_sort);
    }

    #[test]
    fn memory_budget_builder_clamps_to_one() {
        let c = OptimizerConfig::new().with_memory_budget(0);
        assert_eq!(c.memory_budget, Some(1));
        let c = OptimizerConfig::new().with_memory_budget(64 << 10);
        assert_eq!(c.memory_budget, Some(64 << 10));
    }

    #[test]
    fn disabled_turns_off_order_machinery_only() {
        let c = OptimizerConfig::disabled();
        assert!(!c.order_optimization);
        assert!(!c.sort_ahead);
        assert!(c.enable_merge_join);
    }

    #[test]
    fn builder_chains() {
        let c = OptimizerConfig::new()
            .with_merge_join(false)
            .with_nested_loop(false)
            .with_max_sort_ahead(9)
            .with_batch_size(0)
            .with_threads(0)
            .with_sort_key_codec(false);
        assert!(!c.sort_key_codec);
        assert!(!c.enable_merge_join);
        assert!(!c.enable_nested_loop);
        assert_eq!(c.max_sort_ahead, 9);
        // Batch size and parallel degree are clamped to at least one.
        assert_eq!(c.batch_size, 1);
        assert_eq!(c.threads, 1);
    }
}
