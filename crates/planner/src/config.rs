//! Optimizer configuration and planning statistics.

/// Tunable knobs of the optimizer.
///
/// The defaults model the paper's "production DB2". Setting
/// [`order_optimization`](OptimizerConfig::order_optimization) to `false`
/// reproduces the disabled build used for Table 1: reduction, covering,
/// homogenization, and sort-ahead all stop; order properties only satisfy
/// requirements by verbatim column-prefix match.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Master switch for the paper's techniques.
    pub order_optimization: bool,
    /// Allow sort-ahead (pushing sorts below joins). Meaningful only when
    /// `order_optimization` is on; exposed separately for the ablation
    /// benches.
    pub sort_ahead: bool,
    /// Consider merge joins.
    pub enable_merge_join: bool,
    /// Consider hash joins.
    pub enable_hash_join: bool,
    /// Consider hash-based GROUP BY / DISTINCT.
    pub enable_hash_grouping: bool,
    /// Consider (index) nested-loop joins.
    pub enable_nested_loop: bool,
    /// Memory available to a sort before it "spills" (bytes, simulated).
    pub sort_memory: usize,
    /// Maximum number of sort-ahead orders tried per join step (the paper
    /// notes n < 3 in practice; the complexity bench raises this).
    pub max_sort_ahead: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            order_optimization: true,
            sort_ahead: true,
            enable_merge_join: true,
            enable_hash_join: true,
            enable_hash_grouping: true,
            enable_nested_loop: true,
            sort_memory: 16 << 20,
            max_sort_ahead: 4,
        }
    }
}

impl OptimizerConfig {
    /// The paper's "order optimization disabled" baseline.
    pub fn disabled() -> Self {
        OptimizerConfig {
            order_optimization: false,
            sort_ahead: false,
            ..OptimizerConfig::default()
        }
    }

    /// The 1996 DB2/CS operator inventory: order-based joins and grouping
    /// only (DB2 Common Server shipped neither hash join nor hash
    /// group-by at the time — the paper's Figures 7 and 8 use sorts,
    /// merge joins, and nested loops exclusively). Used by the Table 1
    /// reproduction so the enabled/disabled comparison isolates order
    /// *reasoning*, as the paper's experiment did.
    pub fn db2_1996() -> Self {
        OptimizerConfig {
            enable_hash_join: false,
            enable_hash_grouping: false,
            ..OptimizerConfig::default()
        }
    }

    /// [`OptimizerConfig::db2_1996`] with order optimization disabled —
    /// the exact build the paper benchmarked against in Table 1.
    pub fn db2_1996_disabled() -> Self {
        OptimizerConfig {
            order_optimization: false,
            sort_ahead: false,
            ..OptimizerConfig::db2_1996()
        }
    }
}

/// Counters describing how much work the planner did; used by the
/// §5.2 join-enumeration complexity experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Join pairs (outer subset × inner quantifier × method) considered.
    pub joins_considered: u64,
    /// Subplans generated (before pruning).
    pub plans_generated: u64,
    /// Subplans discarded by dominance + cost pruning.
    pub plans_pruned: u64,
    /// Sorts added to plans.
    pub sorts_added: u64,
    /// Sorts avoided because an order property satisfied the requirement.
    pub sorts_avoided: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = OptimizerConfig::default();
        assert!(c.order_optimization);
        assert!(c.sort_ahead);
        assert!(c.enable_merge_join && c.enable_hash_join && c.enable_nested_loop);
    }

    #[test]
    fn disabled_turns_off_order_machinery_only() {
        let c = OptimizerConfig::disabled();
        assert!(!c.order_optimization);
        assert!(!c.sort_ahead);
        assert!(c.enable_merge_join);
    }
}
