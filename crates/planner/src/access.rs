//! Access-path generation for base-table quantifiers.
//!
//! Every table reference yields one sequential-scan plan plus one plan per
//! ordered index. Index scans install the index order as the stream's
//! order property (paper §3: order originates from an ordered index scan
//! or a sort) and may carry a key-range restriction derived from the
//! applied predicates. All single-table predicates are applied on top, so
//! every access path for a quantifier has the same predicate property and
//! plans differ only in cost, order, and fetch pattern.

use crate::cost::{self, Cost};
use crate::plan::{Plan, PlanNode, ScanRange};
use crate::planner::Planner;
use fto_catalog::IndexDef;
use fto_common::{ColSet, Value};
use fto_expr::{CompareOp, Expr, PredId, RowLayout};
use fto_obs::trace::emit;
use fto_obs::TraceEvent;
use fto_order::{OrderSpec, SortKey, StreamProps};
use fto_qgm::graph::Quantifier;

/// Generates the access paths for a base-table quantifier, with
/// `local_preds` (the box predicates referencing only this quantifier)
/// applied on top of each.
pub fn access_paths(
    planner: &mut Planner<'_>,
    q: &Quantifier,
    local_preds: &[PredId],
) -> Vec<Plan> {
    let fto_qgm::graph::QuantifierInput::Table(tid) = q.input else {
        panic!("access_paths requires a base-table quantifier");
    };
    let table = planner
        .catalog
        .table(tid)
        .expect("resolved table must exist");
    let stats = planner.catalog.stats(tid);
    let rows = stats.row_count as f64;
    let pages = stats.pages;

    let cols: ColSet = q.cols.iter().copied().collect();
    let mut keys: Vec<ColSet> = table
        .keys
        .iter()
        .map(|k| k.columns.iter().map(|&o| q.cols[o]).collect())
        .collect();
    for ix in planner.catalog.indexes_for(tid).filter(|ix| ix.unique) {
        keys.push(ix.key_ordinals().map(|o| q.cols[o]).collect());
    }
    let base_props = StreamProps::base_table(cols, keys);
    let layout = RowLayout::new(q.cols.clone());

    let mut paths = Vec::new();

    // Sequential scan.
    let scan = Plan {
        node: PlanNode::TableScan {
            table: tid,
            quantifier: q.id,
        },
        layout: layout.clone(),
        props: base_props.clone(),
        cost: Cost::rows(rows).plus(cost::table_scan(pages, rows)),
    };
    paths.push(planner.apply_filter(scan, local_preds));

    // One path per index.
    let indexes: Vec<IndexDef> = planner.catalog.indexes_for(tid).cloned().collect();
    for ix in indexes {
        let order = OrderSpec::new(
            ix.key
                .iter()
                .map(|&(ord, dir)| SortKey {
                    col: q.cols[ord],
                    dir,
                })
                .collect::<Vec<_>>(),
        );
        let (range, fraction) = derive_range(planner, q, &ix, local_preds);
        let fetch_rows = rows * fraction;
        let scan_cost = cost::index_scan(
            planner
                .index_leaf_pages(ix.id)
                .unwrap_or_else(|| (stats.row_count.div_ceil(256)).max(1)),
            pages,
            fetch_rows,
            fraction,
            ix.clustered,
        );
        let plan = Plan {
            node: PlanNode::IndexScan {
                index: ix.id,
                table: tid,
                quantifier: q.id,
                range: range.clone(),
                reverse: false,
            },
            layout: layout.clone(),
            props: base_props.clone().with_order(order.clone()),
            cost: Cost::rows(fetch_rows).plus(scan_cost),
        };
        paths.push(planner.apply_filter(plan, local_preds));

        // The same index read backwards provides the reversed order at
        // the same cost (backward page walks prefetch as well as forward
        // ones on the simulated model).
        let reverse_plan = Plan {
            node: PlanNode::IndexScan {
                index: ix.id,
                table: tid,
                quantifier: q.id,
                range,
                reverse: true,
            },
            layout: layout.clone(),
            props: base_props.clone().with_order(order.reversed()),
            cost: Cost::rows(fetch_rows).plus(scan_cost),
        };
        paths.push(planner.apply_filter(reverse_plan, local_preds));
    }

    planner.stats.plans_generated += paths.len() as u64;
    for p in &paths {
        emit(|| TraceEvent::PlanGenerated {
            stage: "access",
            plan: p.trace_desc(),
        });
    }
    paths
}

/// Derives a leading-column key range from the local predicates, returning
/// the range and the estimated fraction of the table it covers.
fn derive_range(
    planner: &Planner<'_>,
    q: &Quantifier,
    ix: &IndexDef,
    local_preds: &[PredId],
) -> (Option<ScanRange>, f64) {
    let Some(&(lead_ord, lead_dir)) = ix.key.first() else {
        return (None, 1.0);
    };
    // Ranges on a descending leading column would need reversed bounds;
    // the residual filter keeps correctness, so we simply skip them.
    if lead_dir != fto_common::Direction::Asc {
        return (None, 1.0);
    }
    let lead_col = q.cols[lead_ord];
    let mut lo: Option<Value> = None;
    let mut hi: Option<Value> = None;
    let mut fraction = 1.0f64;

    for &pid in local_preds {
        let pred = planner.graph.predicate(pid);
        let (col, val, op) = match (&pred.left, &pred.right) {
            (Expr::Col(c), Expr::Lit(v)) => (*c, v.clone(), pred.op),
            (Expr::Lit(v), Expr::Col(c)) => (*c, v.clone(), pred.op.flipped()),
            _ => continue,
        };
        if col != lead_col {
            continue;
        }
        let sel = planner.estimator().selectivity(pred);
        match op {
            CompareOp::Eq => {
                lo = Some(val.clone());
                hi = Some(val);
                fraction = fraction.min(sel);
            }
            CompareOp::Lt | CompareOp::Le => {
                if hi.as_ref().is_none_or(|h| val < *h) {
                    hi = Some(val);
                }
                fraction = fraction.min(sel);
            }
            CompareOp::Gt | CompareOp::Ge => {
                if lo.as_ref().is_none_or(|l| val > *l) {
                    lo = Some(val);
                }
                fraction = fraction.min(sel);
            }
            CompareOp::Ne | CompareOp::IsNull | CompareOp::IsNotNull => {}
        }
    }

    if lo.is_none() && hi.is_none() {
        (None, 1.0)
    } else {
        (Some(ScanRange { lo, hi }), fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerConfig;
    use crate::planner::tests_support::{q3_like_db, simple_db};
    use fto_expr::Predicate;
    use fto_qgm::graph::BoxKind;
    use fto_qgm::QueryGraph;

    #[test]
    fn generates_scan_plus_index_paths() {
        let db = simple_db();
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("t").unwrap());
        g.root = b;
        let mut planner = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let q = planner.graph.boxed(b).quantifiers[0].clone();
        let paths = access_paths(&mut planner, &q, &[]);
        // table scan + (forward, reverse) × (pk index, secondary index).
        assert_eq!(paths.len(), 5);
        assert!(paths.iter().any(|p| p.props.order.is_empty()));
        assert!(paths.iter().any(|p| !p.props.order.is_empty()));
        // Forward and reverse variants provide opposite orders.
        let fwd = paths
            .iter()
            .find(|p| {
                matches!(&p.node, PlanNode::IndexScan { reverse: false, index, .. } if index.0 == 0)
            })
            .unwrap();
        let rev = paths
            .iter()
            .find(|p| {
                matches!(&p.node, PlanNode::IndexScan { reverse: true, index, .. } if index.0 == 0)
            })
            .unwrap();
        assert_eq!(fwd.props.order.reversed(), rev.props.order);
    }

    #[test]
    fn index_scan_order_reduces_via_key() {
        let db = simple_db();
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("t").unwrap());
        g.root = b;
        let mut planner = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let q = planner.graph.boxed(b).quantifiers[0].clone();
        let paths = access_paths(&mut planner, &q, &[]);
        // The pk index path's order is (k): a single column, since k is
        // the key and determines everything after it.
        let pk_path = paths
            .iter()
            .find(|p| matches!(&p.node, PlanNode::IndexScan { index, .. } if index.0 == 0))
            .unwrap();
        assert_eq!(pk_path.props.order.len(), 1);
    }

    #[test]
    fn range_predicate_narrows_index_scan() {
        let db = simple_db();
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("t").unwrap());
        let cols = g.boxed(b).quantifiers[0].cols.clone();
        let p = g.add_predicate(Predicate::new(
            CompareOp::Lt,
            Expr::col(cols[0]),
            Expr::int(10),
        ));
        g.boxed_mut(b).predicates.push(p);
        g.root = b;
        let mut planner = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let q = planner.graph.boxed(b).quantifiers[0].clone();
        let paths = access_paths(&mut planner, &q, &[p]);
        // Find the pk-index path: it must carry a range and cost less
        // than the unrestricted table scan.
        let ranged = paths
            .iter()
            .find(|p| p.count_ops(&|n| matches!(n, PlanNode::IndexScan { range: Some(_), .. })) > 0)
            .expect("range path exists");
        let full = paths
            .iter()
            .find(|p| p.count_ops(&|n| matches!(n, PlanNode::TableScan { .. })) > 0)
            .unwrap();
        assert!(ranged.cost.total < full.cost.total);
        assert!(ranged.cost.rows < full.cost.rows + 1.0);
    }

    #[test]
    fn local_predicates_set_predicate_property() {
        let db = q3_like_db(100);
        let mut g = QueryGraph::new();
        let b = g.add_box(BoxKind::Select);
        g.add_table_quantifier(b, db.catalog().table_by_name("customer").unwrap());
        let cols = g.boxed(b).quantifiers[0].cols.clone();
        let p = g.add_predicate(Predicate::col_eq_const(cols[1], Value::str("building")));
        g.boxed_mut(b).predicates.push(p);
        g.root = b;
        let mut planner = Planner::new(&g, db.catalog(), OptimizerConfig::default());
        let q = planner.graph.boxed(b).quantifiers[0].clone();
        let paths = access_paths(&mut planner, &q, &[p]);
        for path in &paths {
            assert_eq!(path.props.preds, vec![p]);
            assert!(path.props.eq.is_constant(cols[1]));
        }
    }
}
