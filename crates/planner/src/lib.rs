//! Bottom-up cost-based plan generation with interesting orders and
//! sort-ahead (paper §5.2).
//!
//! The planner walks the QGM bottom-up, box by box, generating alternative
//! subplans and pruning more costly subplans with comparable properties
//! (paper §3, citing Lohman 1988). Order optimization shows up in four places:
//!
//! * **access paths** — ordered index scans provide order properties for
//!   free ([`access`]);
//! * **join enumeration** — the interesting orders hung off each box by
//!   the order scan become *sort-ahead* candidates: the optimizer tries
//!   sorting the outer of a join for each one, letting a sort for an
//!   ORDER BY or GROUP BY sink arbitrarily deep into a join tree
//!   ([`join`]);
//! * **sort placement** — when a sort is unavoidable, *Reduce Order*
//!   yields the minimal sorting columns, and *Test Order* detects sorts
//!   that can be skipped entirely ([`planner`]);
//! * **group-by / distinct method choice** — order-based and hash-based
//!   alternatives are costed against each other, with §7 degrees of
//!   freedom deciding whether an existing order suffices.
//!
//! [`OptimizerConfig::order_optimization`] switches the machinery off
//! wholesale, reproducing the paper's "disabled DB2" baseline of Table 1.

#![deny(missing_docs)]

pub mod access;
pub mod cardinality;
pub mod config;
pub mod cost;
pub mod join;
pub mod plan;
pub mod planner;

pub use config::{OptimizerConfig, PlannerStats};
pub use cost::Cost;
pub use plan::{Plan, PlanNode, ScanRange};
pub use planner::Planner;
