//! The physical plan (QEP) representation and its renderer.
//!
//! A QEP is a dataflow tree of operators (paper §3). Each [`Plan`] wraps a
//! [`PlanNode`] with the stream's layout, its data properties, and its
//! estimated cost; the execution engine interprets the node tree.

use fto_common::{ColId, IndexId, QuantifierId, TableId, Value};
use fto_expr::{AggCall, Expr, PredId, RowLayout};
use fto_order::{OrderSpec, StreamProps};
use std::fmt::Write as _;
use std::sync::Arc;

use crate::cost::Cost;

/// Simulated page size as f64 (bytes) for spill arithmetic.
pub const SIM_PAGE_BYTES: f64 = 4096.0;

/// A key range restriction on the leading column of an index scan.
/// Bounds are inclusive; the residual predicate re-checks exact
/// open/closed semantics, so the range only needs to be *sound*.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanRange {
    /// Inclusive lower bound on the leading index column.
    pub lo: Option<Value>,
    /// Inclusive upper bound on the leading index column.
    pub hi: Option<Value>,
}

/// A physical plan operator.
#[derive(Clone, Debug)]
pub enum PlanNode {
    /// Sequential scan of a base table.
    TableScan {
        /// The table.
        table: TableId,
        /// The quantifier whose columns the scan produces.
        quantifier: QuantifierId,
    },
    /// Ordered scan through an index, fetching full rows.
    IndexScan {
        /// The index providing the order.
        index: IndexId,
        /// The indexed table.
        table: TableId,
        /// The quantifier whose columns the scan produces.
        quantifier: QuantifierId,
        /// Optional range restriction on the leading key column.
        range: Option<ScanRange>,
        /// Scan the index backwards, providing the reversed order (an
        /// ascending index satisfies a descending requirement for free).
        reverse: bool,
    },
    /// Filter rows by conjunctive predicates.
    Filter {
        /// Input plan.
        input: Arc<Plan>,
        /// Predicate ids (resolved against the query's predicate list).
        predicates: Vec<PredId>,
    },
    /// Compute an output row layout from expressions.
    Project {
        /// Input plan.
        input: Arc<Plan>,
        /// (output column, defining expression) pairs, in output order.
        exprs: Vec<(ColId, Expr)>,
    },
    /// Sort the input.
    Sort {
        /// Input plan.
        input: Arc<Plan>,
        /// Sort specification (already reduced to minimal columns).
        spec: OrderSpec,
    },
    /// Segmented (partial) sort: the input already satisfies the first
    /// `prefix_len` keys of `spec`, so rows arrive grouped contiguously
    /// by those prefix columns and only the residual suffix is sorted,
    /// one prefix group at a time — streaming, with a bounded working
    /// set of one group. Output is identical to a full stable sort on
    /// `spec`.
    SegmentedSort {
        /// Input plan, ordered on the spec's first `prefix_len` keys.
        input: Arc<Plan>,
        /// Full sort specification (already reduced to minimal columns).
        spec: OrderSpec,
        /// How many leading keys of `spec` the input's order property
        /// satisfies (`1 ≤ prefix_len < spec.len()`).
        prefix_len: usize,
        /// The planner's estimate of how many prefix groups the input
        /// forms — the quantity that justified choosing a segmented sort
        /// over a full sort. Carried so the executor can report it next
        /// to the actual group count (Q-error feedback).
        est_groups: u64,
    },
    /// Tuple-at-a-time nested-loop join (inner rescanned per outer row).
    NestedLoopJoin {
        /// Outer (driving) input.
        outer: Arc<Plan>,
        /// Inner input, re-evaluated per outer row.
        inner: Arc<Plan>,
        /// Join predicates evaluated on the concatenated row.
        predicates: Vec<PredId>,
    },
    /// Nested-loop join driving index probes into a base table; the
    /// paper's *ordered nested-loop join* when the outer is sorted on the
    /// probe columns and the index is clustered.
    IndexNestedLoopJoin {
        /// Outer (driving) input.
        outer: Arc<Plan>,
        /// Inner table.
        table: TableId,
        /// Quantifier for the inner table's columns.
        quantifier: QuantifierId,
        /// Index probed per outer row.
        index: IndexId,
        /// Outer columns supplying the probe key, aligned with the
        /// index's leading key parts.
        probe_cols: Vec<ColId>,
        /// Residual predicates on the concatenated row.
        predicates: Vec<PredId>,
    },
    /// Merge join of two streams sorted on the join keys.
    MergeJoin {
        /// Left input, sorted on `outer_keys`.
        outer: Arc<Plan>,
        /// Right input, sorted on `inner_keys`.
        inner: Arc<Plan>,
        /// Left join key columns.
        outer_keys: Vec<ColId>,
        /// Right join key columns.
        inner_keys: Vec<ColId>,
        /// Residual predicates on the concatenated row.
        predicates: Vec<PredId>,
    },
    /// Left outer join: every outer row appears, null-padded when no
    /// inner row passes all ON predicates. Executed as a hash join on the
    /// equi keys when present, otherwise as a nested loop; either way the
    /// outer's order is preserved.
    LeftOuterJoin {
        /// Preserved-side input.
        outer: Arc<Plan>,
        /// Null-supplying-side input.
        inner: Arc<Plan>,
        /// Equi-key columns (outer side), possibly empty.
        outer_keys: Vec<ColId>,
        /// Equi-key columns (inner side), aligned with `outer_keys`.
        inner_keys: Vec<ColId>,
        /// The full ON-clause conjunction.
        predicates: Vec<PredId>,
    },
    /// Hash join: build on the inner, probe with the outer. Preserves the
    /// outer's order (single-batch build, streaming probe).
    HashJoin {
        /// Probe-side input.
        outer: Arc<Plan>,
        /// Build-side input.
        inner: Arc<Plan>,
        /// Probe key columns (outer side).
        outer_keys: Vec<ColId>,
        /// Build key columns (inner side).
        inner_keys: Vec<ColId>,
        /// Residual predicates on the concatenated row.
        predicates: Vec<PredId>,
    },
    /// Order-based (streaming) group-by: input must arrive grouped.
    StreamGroupBy {
        /// Input plan (ordered so groups are contiguous).
        input: Arc<Plan>,
        /// Grouping columns.
        grouping: Vec<ColId>,
        /// Aggregate outputs: (result column, call).
        aggs: Vec<(ColId, AggCall)>,
    },
    /// Hash-based group-by.
    HashGroupBy {
        /// Input plan.
        input: Arc<Plan>,
        /// Grouping columns.
        grouping: Vec<ColId>,
        /// Aggregate outputs: (result column, call).
        aggs: Vec<(ColId, AggCall)>,
    },
    /// Duplicate elimination over contiguous duplicates (input ordered).
    StreamDistinct {
        /// Input plan.
        input: Arc<Plan>,
    },
    /// Hash-based duplicate elimination.
    HashDistinct {
        /// Input plan.
        input: Arc<Plan>,
    },
    /// Bag union of inputs with identical layouts.
    UnionAll {
        /// Input plans.
        inputs: Vec<Arc<Plan>>,
    },
    /// Pass through the first `n` rows.
    Limit {
        /// Input plan.
        input: Arc<Plan>,
        /// Row budget.
        n: u64,
    },
    /// Top-N: the first `n` rows under `spec`, computed by selection
    /// rather than a full sort (the classic payoff of fusing ORDER BY
    /// with a row limit).
    TopN {
        /// Input plan.
        input: Arc<Plan>,
        /// The ordering.
        spec: OrderSpec,
        /// Row budget.
        n: u64,
    },
}

/// A plan node together with its stream metadata.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The operator.
    pub node: PlanNode,
    /// Column layout of produced rows.
    pub layout: RowLayout,
    /// Data properties of the stream (order, predicates, keys, FDs).
    pub props: StreamProps,
    /// Estimated cost and cardinality.
    pub cost: Cost,
}

impl Plan {
    /// The operator name used in EXPLAIN output.
    pub fn op_name(&self) -> &'static str {
        match &self.node {
            PlanNode::TableScan { .. } => "table-scan",
            PlanNode::IndexScan { .. } => "index-scan",
            PlanNode::Filter { .. } => "filter",
            PlanNode::Project { .. } => "project",
            PlanNode::Sort { .. } => "sort",
            PlanNode::SegmentedSort { .. } => "segmented-sort",
            PlanNode::NestedLoopJoin { .. } => "nested-loop-join",
            PlanNode::IndexNestedLoopJoin { .. } => "index-nested-loop-join",
            PlanNode::MergeJoin { .. } => "merge-join",
            PlanNode::LeftOuterJoin { .. } => "left-outer-join",
            PlanNode::HashJoin { .. } => "hash-join",
            PlanNode::StreamGroupBy { .. } => "group-by(stream)",
            PlanNode::HashGroupBy { .. } => "group-by(hash)",
            PlanNode::StreamDistinct { .. } => "distinct(stream)",
            PlanNode::HashDistinct { .. } => "distinct(hash)",
            PlanNode::UnionAll { .. } => "union-all",
            PlanNode::Limit { .. } => "limit",
            PlanNode::TopN { .. } => "top-n",
        }
    }

    /// One-line description used by optimizer trace events: operator,
    /// estimated cost and rows, and the order property — enough to
    /// identify a candidate and see why pruning kept or killed it.
    /// Raw column ids (`c4`) keep the rendering registry-free and
    /// deterministic.
    pub fn trace_desc(&self) -> String {
        format!(
            "{} cost={:.1} rows={:.0} order={}",
            self.op_name(),
            self.cost.total,
            self.cost.rows,
            self.props.order
        )
    }

    /// Child plans, outer/left first.
    pub fn children(&self) -> Vec<&Arc<Plan>> {
        match &self.node {
            PlanNode::TableScan { .. } | PlanNode::IndexScan { .. } => vec![],
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::SegmentedSort { input, .. }
            | PlanNode::StreamGroupBy { input, .. }
            | PlanNode::HashGroupBy { input, .. }
            | PlanNode::StreamDistinct { input }
            | PlanNode::HashDistinct { input }
            | PlanNode::Limit { input, .. }
            | PlanNode::TopN { input, .. } => vec![input],
            PlanNode::NestedLoopJoin { outer, inner, .. }
            | PlanNode::MergeJoin { outer, inner, .. }
            | PlanNode::LeftOuterJoin { outer, inner, .. }
            | PlanNode::HashJoin { outer, inner, .. } => vec![outer, inner],
            PlanNode::IndexNestedLoopJoin { outer, .. } => vec![outer],
            PlanNode::UnionAll { inputs } => inputs.iter().collect(),
        }
    }

    /// Renders the plan as an indented tree, resolving column names with
    /// `name` (pass `|c| c.to_string()` when no registry is at hand).
    pub fn explain(&self, name: &dyn Fn(ColId) -> String) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, name, false);
        out
    }

    /// [`Plan::explain`] with the paper's data properties annotated under
    /// every operator: the order property, the key property (or the
    /// one-record condition), and the count of applied predicates — the
    /// state the optimizer reasoned over when it picked this plan.
    pub fn explain_properties(&self, name: &dyn Fn(ColId) -> String) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, name, true);
        out
    }

    /// [`Plan::explain`] with a caller-supplied annotation appended under
    /// every operator line. `annotate` receives each node's *pre-order*
    /// id (root = 0, children visited in [`Plan::children`] order — i.e.
    /// outer/left first) and the node itself; a non-empty return is
    /// rendered as an indented `· ...` sub-line. The id numbering matches
    /// the executor's instrumentation slots, so per-operator metrics can
    /// be printed next to estimates without any tree matching.
    pub fn explain_annotated(
        &self,
        name: &dyn Fn(ColId) -> String,
        annotate: &dyn Fn(usize, &Plan) -> String,
    ) -> String {
        let mut out = String::new();
        let mut next_id = 0usize;
        self.explain_annotated_into(&mut out, 0, name, annotate, &mut next_id);
        out
    }

    fn explain_annotated_into(
        &self,
        out: &mut String,
        depth: usize,
        name: &dyn Fn(ColId) -> String,
        annotate: &dyn Fn(usize, &Plan) -> String,
        next_id: &mut usize,
    ) {
        let id = *next_id;
        *next_id += 1;
        let indent = "  ".repeat(depth);
        let detail = self.detail(name);
        let _ = writeln!(
            out,
            "{indent}{}{}{} [rows={:.0} cost={:.1}]",
            self.op_name(),
            if detail.is_empty() { "" } else { " " },
            detail,
            self.cost.rows,
            self.cost.total,
        );
        let note = annotate(id, self);
        if !note.is_empty() {
            let _ = writeln!(out, "{indent}    · {note}");
        }
        for child in self.children() {
            child.explain_annotated_into(out, depth + 1, name, annotate, next_id);
        }
    }

    fn explain_into(
        &self,
        out: &mut String,
        depth: usize,
        name: &dyn Fn(ColId) -> String,
        properties: bool,
    ) {
        let indent = "  ".repeat(depth);
        let detail = self.detail(name);
        let _ = writeln!(
            out,
            "{indent}{}{}{} [rows={:.0} cost={:.1}]",
            self.op_name(),
            if detail.is_empty() { "" } else { " " },
            detail,
            self.cost.rows,
            self.cost.total,
        );
        if properties {
            let order = if self.props.order.is_empty() {
                "unordered".to_string()
            } else {
                let keys: Vec<String> = self
                    .props
                    .order
                    .keys()
                    .iter()
                    .map(|k| {
                        let mut n = name(k.col);
                        if k.dir == fto_common::Direction::Desc {
                            n.push_str(" desc");
                        }
                        n
                    })
                    .collect();
                format!("order: ({})", keys.join(", "))
            };
            let keys = if self.props.keys.is_one_record() {
                "one-record".to_string()
            } else if self.props.keys.is_empty() {
                "no keys".to_string()
            } else {
                let rendered: Vec<String> = self
                    .props
                    .keys
                    .keys()
                    .iter()
                    .map(|k| {
                        let cols: Vec<String> = k.iter().map(&name).collect();
                        format!("{{{}}}", cols.join(", "))
                    })
                    .collect();
                format!("keys: {}", rendered.join(" "))
            };
            let _ = writeln!(
                out,
                "{indent}    · {order} | {keys} | {} preds applied",
                self.props.preds.len()
            );
        }
        for child in self.children() {
            child.explain_into(out, depth + 1, name, properties);
        }
    }

    fn detail(&self, name: &dyn Fn(ColId) -> String) -> String {
        let cols = |cs: &[ColId]| cs.iter().map(|&c| name(c)).collect::<Vec<_>>().join(", ");
        let spec = |s: &OrderSpec| {
            s.keys()
                .iter()
                .map(|k| {
                    let mut n = name(k.col);
                    if k.dir == fto_common::Direction::Desc {
                        n.push_str(" desc");
                    }
                    n
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        match &self.node {
            PlanNode::TableScan { table, .. } => format!("{table}"),
            PlanNode::IndexScan {
                index,
                table,
                range,
                reverse,
                ..
            } => {
                let mut s = format!("{table} via {index}");
                if *reverse {
                    s.push_str(" reverse");
                }
                if range.is_some() {
                    s.push_str(" (range)");
                }
                s
            }
            PlanNode::Filter { predicates, .. } => format!("{} preds", predicates.len()),
            PlanNode::Project { exprs, .. } => {
                let names: Vec<String> = exprs.iter().map(|(c, _)| name(*c)).collect();
                names.join(", ")
            }
            PlanNode::Sort { spec: s, .. } => format!("({})", spec(s)),
            PlanNode::SegmentedSort {
                spec: s,
                prefix_len,
                ..
            } => {
                // Render the satisfied prefix and the sorted suffix on
                // either side of a bar: `(a | b, c)`.
                let mut pfx = s.clone();
                pfx.truncate(*prefix_len);
                let sfx = OrderSpec::new(s.keys()[*prefix_len..].to_vec());
                format!("({} | {})", spec(&pfx), spec(&sfx))
            }
            PlanNode::NestedLoopJoin { .. } => String::new(),
            PlanNode::IndexNestedLoopJoin {
                table,
                index,
                probe_cols,
                ..
            } => {
                let ordered = !self.props.order.is_empty();
                format!(
                    "{table} via {index} on ({}){}",
                    cols(probe_cols),
                    if ordered { " [ordered]" } else { "" }
                )
            }
            PlanNode::MergeJoin {
                outer_keys,
                inner_keys,
                ..
            } => format!("({}) = ({})", cols(outer_keys), cols(inner_keys)),
            PlanNode::HashJoin {
                outer_keys,
                inner_keys,
                ..
            } => format!("({}) = ({})", cols(outer_keys), cols(inner_keys)),
            PlanNode::LeftOuterJoin {
                outer_keys,
                inner_keys,
                predicates,
                ..
            } => {
                if outer_keys.is_empty() {
                    format!("{} on-preds", predicates.len())
                } else {
                    format!("({}) = ({})", cols(outer_keys), cols(inner_keys))
                }
            }
            PlanNode::StreamGroupBy { grouping, .. } | PlanNode::HashGroupBy { grouping, .. } => {
                format!("({})", cols(grouping))
            }
            PlanNode::StreamDistinct { .. } | PlanNode::HashDistinct { .. } => String::new(),
            PlanNode::UnionAll { inputs } => format!("{} inputs", inputs.len()),
            PlanNode::Limit { n, .. } => format!("{n}"),
            PlanNode::TopN { spec: s2, n, .. } => format!("{n} by ({})", spec(s2)),
        }
    }

    /// This node's estimated cost net of its inputs: `cost.total` minus
    /// the children's `cost.total`, floored at zero. Costs accumulate
    /// bottom-up, so this is the estimate-side analogue of the executor's
    /// per-operator "self" I/O delta and what calibration reports compare
    /// against actual `weighted_page_cost`.
    pub fn self_cost(&self) -> f64 {
        let children: f64 = self.children().iter().map(|c| c.cost.total).sum();
        (self.cost.total - children).max(0.0)
    }

    /// Counts operators of a kind in the tree (used by plan-shape tests,
    /// e.g. "the Figure 7 plan contains exactly one sort below the join").
    pub fn count_ops(&self, pred: &dyn Fn(&PlanNode) -> bool) -> usize {
        let mut n = usize::from(pred(&self.node));
        for c in self.children() {
            n += c.count_ops(pred);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::ColSet;
    use fto_order::StreamProps;

    fn leaf() -> Plan {
        Plan {
            node: PlanNode::TableScan {
                table: TableId(0),
                quantifier: QuantifierId(0),
            },
            layout: RowLayout::new(vec![ColId(0), ColId(1)]),
            props: StreamProps::base_table(ColSet::from_cols([ColId(0), ColId(1)]), vec![]),
            cost: Cost {
                total: 10.0,
                rows: 100.0,
            },
        }
    }

    #[test]
    fn explain_renders_tree() {
        let scan = Arc::new(leaf());
        let sort = Plan {
            node: PlanNode::Sort {
                input: scan.clone(),
                spec: OrderSpec::ascending([ColId(1)]),
            },
            layout: scan.layout.clone(),
            props: scan.props.clone(),
            cost: Cost {
                total: 20.0,
                rows: 100.0,
            },
        };
        let text = sort.explain(&|c| format!("col{}", c.0));
        assert!(text.contains("sort (col1)"), "{text}");
        assert!(text.contains("table-scan t0"), "{text}");
        // Child is indented under parent.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("sort"));
        assert!(lines[1].starts_with("  table-scan"));
    }

    #[test]
    fn segmented_sort_renders_prefix_bar_suffix() {
        let scan = Arc::new(leaf());
        let seg = Plan {
            node: PlanNode::SegmentedSort {
                input: scan.clone(),
                spec: OrderSpec::ascending([ColId(0), ColId(1)]),
                prefix_len: 1,
                est_groups: 4,
            },
            layout: scan.layout.clone(),
            props: scan.props.clone(),
            cost: scan.cost,
        };
        let text = seg.explain(&|c| format!("col{}", c.0));
        assert!(text.contains("segmented-sort (col0 | col1)"), "{text}");
        assert_eq!(seg.children().len(), 1);
    }

    #[test]
    fn count_ops() {
        let scan = Arc::new(leaf());
        let sort = Plan {
            node: PlanNode::Sort {
                input: scan.clone(),
                spec: OrderSpec::ascending([ColId(0)]),
            },
            layout: scan.layout.clone(),
            props: scan.props.clone(),
            cost: scan.cost,
        };
        assert_eq!(sort.count_ops(&|n| matches!(n, PlanNode::Sort { .. })), 1);
        assert_eq!(
            sort.count_ops(&|n| matches!(n, PlanNode::TableScan { .. })),
            1
        );
        assert_eq!(
            sort.count_ops(&|n| matches!(n, PlanNode::HashJoin { .. })),
            0
        );
    }

    #[test]
    fn children_shapes() {
        let scan = Arc::new(leaf());
        assert!(scan.children().is_empty());
        let join = Plan {
            node: PlanNode::NestedLoopJoin {
                outer: scan.clone(),
                inner: scan.clone(),
                predicates: vec![],
            },
            layout: RowLayout::new(vec![ColId(0), ColId(1)]),
            props: scan.props.clone(),
            cost: scan.cost,
        };
        assert_eq!(join.children().len(), 2);
        assert_eq!(join.op_name(), "nested-loop-join");
    }
}
