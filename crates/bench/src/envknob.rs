//! Strict parsing of environment-variable knobs (`FTO_THREADS`,
//! `FTO_TEST_THREADS`, `FTO_SLOW_MS`, ...).
//!
//! The old pattern — `var(..).ok().and_then(|v| v.parse().ok())
//! .unwrap_or(default)` — silently swallowed typos: `FTO_THREADS=fourr`
//! quietly ran serial, which is exactly the wrong behavior for a knob
//! you set to reproduce a parallel bug. [`env_parse`] distinguishes
//! "unset" (fine, use the default) from "set but unparseable" (an error
//! the caller must surface).

use std::str::FromStr;

/// Reads and parses the environment variable `name`.
///
/// Returns `Ok(None)` when the variable is unset, `Ok(Some(value))` when
/// it parses, and `Err(message)` when it is set but does not parse (or
/// is not valid Unicode). Callers must report the error rather than fall
/// back to a default.
pub fn env_parse<T: FromStr>(name: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("{name} is set but is not valid Unicode"))
        }
        Ok(raw) => raw
            .trim()
            .parse()
            .map(Some)
            .map_err(|e| format!("{name}={raw:?} is invalid: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own variable name: the process environment is
    // shared across concurrently running tests.

    #[test]
    fn unset_is_none() {
        assert_eq!(env_parse::<usize>("FTO_ENVKNOB_TEST_UNSET"), Ok(None));
    }

    #[test]
    fn valid_values_parse() {
        std::env::set_var("FTO_ENVKNOB_TEST_VALID", "4");
        assert_eq!(env_parse::<usize>("FTO_ENVKNOB_TEST_VALID"), Ok(Some(4)));
        std::env::set_var("FTO_ENVKNOB_TEST_VALID", " 0.25 ");
        assert_eq!(env_parse::<f64>("FTO_ENVKNOB_TEST_VALID"), Ok(Some(0.25)));
    }

    #[test]
    fn garbage_is_an_error_not_a_default() {
        std::env::set_var("FTO_ENVKNOB_TEST_BAD", "fourr");
        let err = env_parse::<usize>("FTO_ENVKNOB_TEST_BAD").unwrap_err();
        assert!(err.contains("FTO_ENVKNOB_TEST_BAD"), "{err}");
        assert!(err.contains("fourr"), "{err}");
    }
}
