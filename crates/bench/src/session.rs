//! [`Session`]: the end-to-end query pipeline over one database.

use fto_common::Result;
use fto_exec::{run_plan, QueryResult};
use fto_planner::{OptimizerConfig, Plan, Planner, PlannerStats};
use fto_qgm::{rewrite, OrderScan, QueryGraph};
use fto_sql::{bind, parse_query};
use fto_storage::Database;

/// A compiled query: the bound graph and the chosen plan.
pub struct Compiled {
    /// The query graph after rewrites and the order scan.
    pub graph: QueryGraph,
    /// The chosen physical plan.
    pub plan: Plan,
    /// Planner work counters.
    pub stats: PlannerStats,
}

impl Compiled {
    /// Renders the plan with resolved column names.
    pub fn explain(&self) -> String {
        let registry = &self.graph.registry;
        self.plan.explain(&|c| registry.name(c).to_string())
    }

    /// Renders the plan with the order/key/predicate properties the
    /// optimizer tracked for every stream (paper §5.2.1).
    pub fn explain_properties(&self) -> String {
        let registry = &self.graph.registry;
        self.plan
            .explain_properties(&|c| registry.name(c).to_string())
    }
}

/// A database plus the compilation pipeline.
pub struct Session {
    db: Database,
}

impl Session {
    /// Wraps a loaded database.
    pub fn new(db: Database) -> Session {
        Session { db }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Compiles SQL to a physical plan under the given configuration:
    /// parse → bind → predicate pushdown → view merging → order scan →
    /// cost-based planning.
    pub fn compile(&self, sql: &str, config: OptimizerConfig) -> Result<Compiled> {
        let ast = parse_query(sql)?;
        let mut graph = bind(&ast, self.db.catalog())?;
        rewrite::push_down_predicates(&mut graph);
        rewrite::merge_views(&mut graph);
        OrderScan::run(&mut graph, self.db.catalog());
        let mut planner = Planner::new(&graph, self.db.catalog(), config);
        let plan = planner.plan_query()?;
        let stats = planner.stats;
        Ok(Compiled { graph, plan, stats })
    }

    /// Executes a compiled query.
    pub fn execute(&self, compiled: &Compiled) -> Result<QueryResult> {
        run_plan(&self.db, &compiled.graph, &compiled.plan)
    }

    /// Compile + execute in one call.
    pub fn run(&self, sql: &str, config: OptimizerConfig) -> Result<(Compiled, QueryResult)> {
        let compiled = self.compile(sql, config)?;
        let result = self.execute(&compiled)?;
        Ok((compiled, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_tpcd::{build_database, TpcdConfig};

    fn session() -> Session {
        Session::new(
            build_database(TpcdConfig {
                scale: 0.002,
                seed: 11,
            })
            .unwrap(),
        )
    }

    #[test]
    fn q3_compiles_and_runs_both_modes() {
        let s = session();
        let sql = fto_tpcd::queries::q3_default();
        let (enabled, r1) = s.run(&sql, OptimizerConfig::db2_1996()).unwrap();
        let (disabled, r2) = s.run(&sql, OptimizerConfig::db2_1996_disabled()).unwrap();
        // Same answer regardless of optimization.
        assert_eq!(r1.rows, r2.rows);
        assert!(!r1.rows.is_empty());
        // Output ordered by rev desc, o_orderdate.
        for w in r1.rows.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let ra = a[1].as_double().unwrap();
            let rb = b[1].as_double().unwrap();
            assert!(
                ra > rb || (ra == rb && a[2].total_cmp(&b[2]).is_le()),
                "order violated"
            );
        }
        // The enabled plan does strictly less sorting work.
        let sorts = |c: &Compiled| {
            c.plan
                .count_ops(&|n| matches!(n, fto_planner::PlanNode::Sort { .. }))
        };
        assert!(sorts(&enabled) <= sorts(&disabled), "{}", enabled.explain());
    }

    #[test]
    fn explain_uses_column_names() {
        let s = session();
        let sql = fto_tpcd::queries::q3_default();
        let c = s.compile(&sql, OptimizerConfig::default()).unwrap();
        let text = c.explain();
        assert!(text.contains("group-by"), "{text}");
        assert!(
            text.contains("rev") || text.contains("o_orderdate"),
            "{text}"
        );
    }

    #[test]
    fn section6_example_runs() {
        let s = session();
        let (c, r) = s
            .run(
                &fto_tpcd::queries::section6_example(),
                OptimizerConfig::default(),
            )
            .unwrap();
        assert!(!r.rows.is_empty());
        // Ordered by o_orderkey.
        let mut last = i64::MIN;
        for row in &r.rows {
            let k = row[0].as_int().unwrap();
            assert!(k >= last);
            last = k;
        }
        let _ = c;
    }
}
