//! Ablation study over the design choices DESIGN.md calls out: Q3 run
//! under the full optimizer, with sort-ahead off, with all order
//! optimization off, and under the modern (hash-capable) operator
//! inventory.
//!
//! ```text
//! cargo run -p fto-bench --release --bin ablations [-- <scale>]
//! ```

use fto_bench::harness::ablation;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    println!("Ablations on TPC-D Q3 (scale {scale})");
    println!();
    println!("| configuration                  | elapsed      | sim. pages | sorts |");
    println!("|--------------------------------|--------------|------------|-------|");
    for (name, cell) in ablation(scale).unwrap() {
        println!(
            "| {:<30} | {:>10.3?} | {:>10.0} | {:>5} |",
            name, cell.elapsed, cell.page_cost, cell.sorts
        );
    }
}
