//! Regenerates the paper's **Table 1**: elapsed time for TPC-D Query 3
//! with order optimization enabled vs disabled.
//!
//! ```text
//! cargo run -p fto-bench --release --bin table1 [-- <scale> [runs]]
//! ```
//!
//! The paper reports 192 s vs 393 s (ratio 2.04) on a 1 GB database on a
//! 1995 RS/6000. We run the same query at laptop scale on the in-memory
//! engine; absolute numbers differ, the winner and the ≈2× factor are the
//! reproduced shape.

use fto_bench::harness::table1;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    println!("Table 1: Elapsed Time for Query 3 (scale factor {scale}, best of {runs} runs)");
    println!();
    let (enabled, disabled) = match table1(scale, runs) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    assert_eq!(
        enabled.rows, disabled.rows,
        "both modes must return the same result"
    );
    let ratio = disabled.elapsed.as_secs_f64() / enabled.elapsed.as_secs_f64();
    let page_ratio = disabled.page_cost / enabled.page_cost.max(1.0);

    println!("| build                   | elapsed      | sim. page cost | sorts in plan |");
    println!("|-------------------------|--------------|----------------|---------------|");
    println!(
        "| order optimization on   | {:>10.3?} | {:>14.0} | {:>13} |",
        enabled.elapsed, enabled.page_cost, enabled.sorts
    );
    println!(
        "| order optimization off  | {:>10.3?} | {:>14.0} | {:>13} |",
        disabled.elapsed, disabled.page_cost, disabled.sorts
    );
    println!();
    println!("elapsed-time ratio (disabled / enabled):   {ratio:.2}   (paper: 2.04)");
    println!("simulated-page ratio (disabled / enabled): {page_ratio:.2}");
    println!("result rows (both modes): {}", enabled.rows);
}
