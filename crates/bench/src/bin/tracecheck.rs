//! Validates a Chrome trace-event JSON file emitted by the execution
//! profiler (`\profile` in the REPL, [`fto_exec::Session::profile`]).
//!
//! ```text
//! cargo run -p fto-bench --bin tracecheck -- <trace.json>
//! ```
//!
//! Checks, per lane (`tid`):
//!
//! * `B`/`E` events balance and nest properly, with matching names;
//! * timestamps are monotonically non-decreasing;
//! * at least one lane carries an `operator`-category span.
//!
//! Exits 0 when the trace is valid, 1 with a diagnosis otherwise. The
//! parser is deliberately line-oriented — the profiler emits one event
//! object per line — so this stays dependency-free; it is a checker for
//! our own exporter, not a general JSON parser.

use std::collections::HashMap;

/// One parsed trace event line (only the fields the checks need).
struct Event {
    name: String,
    ph: String,
    cat: String,
    ts: u64,
    tid: u64,
    line_no: usize,
}

/// Extracts a `"key":"string"` field from an event line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extracts a `"key":123` numeric field from an event line.
fn num_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn fail(msg: &str) -> ! {
    eprintln!("tracecheck: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: tracecheck <trace.json>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let trimmed = text.trim();
    if !trimmed.starts_with('[') || !trimmed.ends_with(']') {
        fail("not a JSON array (expected [...])");
    }

    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let ph = str_field(line, "ph").unwrap_or_else(|| fail(&format!("line {}: no ph", i + 1)));
        if ph == "M" {
            continue; // metadata (thread_name) events carry no ts
        }
        events.push(Event {
            name: str_field(line, "name")
                .unwrap_or_else(|| fail(&format!("line {}: no name", i + 1))),
            ph,
            cat: str_field(line, "cat").unwrap_or_default(),
            ts: num_field(line, "ts").unwrap_or_else(|| fail(&format!("line {}: no ts", i + 1))),
            tid: num_field(line, "tid").unwrap_or_else(|| fail(&format!("line {}: no tid", i + 1))),
            line_no: i + 1,
        });
    }
    if events.is_empty() {
        fail("no events");
    }

    // Per-lane: balanced, properly nested spans and monotone timestamps.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut operator_spans = 0usize;
    for e in &events {
        if let Some(&prev) = last_ts.get(&e.tid) {
            if e.ts < prev {
                fail(&format!(
                    "line {}: lane {} ts went backwards ({} -> {})",
                    e.line_no, e.tid, prev, e.ts
                ));
            }
        }
        last_ts.insert(e.tid, e.ts);
        let stack = stacks.entry(e.tid).or_default();
        match e.ph.as_str() {
            "B" => {
                if e.cat == "operator" {
                    operator_spans += 1;
                }
                stack.push(e.name.clone());
            }
            "E" => match stack.pop() {
                Some(open) if open == e.name => {}
                Some(open) => fail(&format!(
                    "line {}: lane {} closes {:?} but {:?} is open",
                    e.line_no, e.tid, e.name, open
                )),
                None => fail(&format!(
                    "line {}: lane {} closes {:?} with no span open",
                    e.line_no, e.tid, e.name
                )),
            },
            "i" => {}
            other => fail(&format!("line {}: unknown phase {other:?}", e.line_no)),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            fail(&format!("lane {tid}: span {open:?} never closed"));
        }
    }
    if operator_spans == 0 {
        fail("no operator spans in any lane");
    }

    let lanes = stacks.len();
    println!(
        "tracecheck: OK: {} events, {} lanes, {} operator spans",
        events.len(),
        lanes,
        operator_spans
    );
}
