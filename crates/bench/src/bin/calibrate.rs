//! Cost-model calibration report: per-operator estimated self cost vs
//! the weighted page cost actually charged, over the TPC-D workload
//! queries.
//!
//! ```text
//! cargo run -p fto-bench --release --bin calibrate [-- <scale> [factor]]
//! ```
//!
//! Operators whose actual cost diverges from the estimate by more than
//! `factor` (default 3) in either direction are marked `!!` — those are
//! the places where the model's ranking can no longer be trusted and
//! future cost-model work should start.

use fto_bench::harness::{calibration_report, tpcd_db};
use fto_planner::OptimizerConfig;
use fto_tpcd::queries;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let factor: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3.0);

    let db = match tpcd_db(scale) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("cost-model calibration (scale {scale}, divergence factor {factor})");
    let workload: Vec<(&str, String)> = vec![
        ("tpcd q3", queries::q3_default()),
        ("tpcd q1", queries::q1("1998-09-02")),
        ("order report", queries::order_report()),
        ("section 6 example", queries::section6_example()),
    ];
    let mut total = 0usize;
    let mut flagged = 0usize;
    for (name, sql) in workload {
        println!("\n== {name} ==");
        let report = match calibration_report(&db, &sql, OptimizerConfig::default(), factor) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{:>3} {:2} {:24} {:>10} {:>10} {:>10} {:>10}",
            "id", "", "operator", "est rows", "act rows", "est wpc", "act wpc"
        );
        for op in &report {
            println!(
                "{:>3} {:2} {:24} {:>10.0} {:>10} {:>10.1} {:>10.1}",
                op.id,
                if op.flagged { "!!" } else { "" },
                op.name,
                op.est_rows,
                op.actual_rows,
                op.est_self_cost,
                op.actual_wpc,
            );
        }
        total += report.len();
        flagged += report.iter().filter(|o| o.flagged).count();
    }
    println!("\n{flagged} of {total} operators diverge by more than {factor}x");
}
