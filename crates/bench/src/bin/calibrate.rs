//! Cost-model calibration report: per-operator estimated self cost vs
//! the weighted page cost actually charged, over the TPC-D workload
//! queries.
//!
//! ```text
//! cargo run -p fto-bench --release --bin calibrate [-- <scale> [factor]]
//! ```
//!
//! Operators whose actual cost diverges from the estimate by more than
//! `factor` (default 3) in either direction are marked `!!` — those are
//! the places where the model's ranking can no longer be trusted and
//! future cost-model work should start.
//!
//! A second section calibrates the external-sort spill model: the big
//! order-by query runs under a sweep of memory budgets and the cost
//! model's `sort_spill_passes` estimate is compared against the merge
//! passes the executor actually performed (`!!` past a ±1 divergence).
//!
//! A third section grades plan quality: every query in the differential
//! corpus plus the TPC-D workload runs instrumented, and the worst
//! per-operator cardinality Q-errors (`max(est,act)/min(est,act)`, both
//! sides clamped to one row) are ranked. The run exits nonzero if any
//! operator's Q-error exceeds `QERROR_CEILING` — a deliberately generous
//! bound, since LIMIT early termination legitimately inflates Q-errors.

use fto_bench::corpus::{emp_db, EMP_QUERIES};
use fto_bench::harness::{calibration_report, tpcd_db};
use fto_bench::Session;
use fto_common::row_bytes;
use fto_planner::{cost, OptimizerConfig};
use fto_storage::Database;
use fto_tpcd::queries;

/// Plan-quality regression gate: the calibration run fails (exit 1) when
/// any operator misestimates by more than this factor. Generous on
/// purpose — the corpus includes LIMIT queries whose early termination
/// makes large Q-errors legitimate.
const QERROR_CEILING: f64 = 400.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let factor: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3.0);

    let db = match tpcd_db(scale) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("cost-model calibration (scale {scale}, divergence factor {factor})");
    let workload: Vec<(&str, String)> = vec![
        ("tpcd q3", queries::q3_default()),
        ("tpcd q1", queries::q1("1998-09-02")),
        ("order report", queries::order_report()),
        ("section 6 example", queries::section6_example()),
    ];
    let mut total = 0usize;
    let mut flagged = 0usize;
    for (name, sql) in workload {
        println!("\n== {name} ==");
        let report = match calibration_report(&db, &sql, OptimizerConfig::default(), factor) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{:>3} {:2} {:24} {:>10} {:>10} {:>10} {:>10}",
            "id", "", "operator", "est rows", "act rows", "est wpc", "act wpc"
        );
        for op in &report {
            println!(
                "{:>3} {:2} {:24} {:>10.0} {:>10} {:>10.1} {:>10.1}",
                op.id,
                if op.flagged { "!!" } else { "" },
                op.name,
                op.est_rows,
                op.actual_rows,
                op.est_self_cost,
                op.actual_wpc,
            );
        }
        total += report.len();
        flagged += report.iter().filter(|o| o.flagged).count();
    }
    println!("\n{flagged} of {total} operators diverge by more than {factor}x");

    // Spill-model calibration: estimated merge passes (from the bytes the
    // sort actually handled) against the executor's recorded passes.
    println!("\n== external sort: estimated vs actual merge passes ==");
    let sort_sql = "select o_orderdate, o_orderkey, o_totalprice from orders \
                    order by o_orderdate, o_orderkey";
    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "budget", "sort bytes", "est", "actual"
    );
    let mut pass_flagged = 0usize;
    for budget in [4usize << 10, 16 << 10, 64 << 10, 256 << 10] {
        let out = Session::new(&db)
            .config(OptimizerConfig::default().with_memory_budget(budget))
            .execute(sort_sql)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        let bytes: usize = out.rows().iter().map(|r| row_bytes(r)).sum();
        let est = cost::sort_spill_passes(bytes as f64, budget);
        let actual = out.spill.merge_passes;
        let diverged = (est - actual as f64).abs() > 1.0;
        pass_flagged += diverged as usize;
        println!(
            "{:>9}K {:>12} {:>10.0} {:>8} {}",
            budget >> 10,
            bytes,
            est,
            actual,
            if diverged { "!!" } else { "" }
        );
    }
    println!("{pass_flagged} budget(s) diverge from the spill model by more than one pass");

    // Plan-quality section: rank the worst per-operator cardinality
    // misestimates across the differential corpus and the TPC-D workload.
    println!("\n== plan quality: worst per-operator cardinality Q-errors ==");
    let corpus_db = emp_db();
    let mut rows: Vec<(f64, String, f64, u64, String)> = Vec::new();
    let mut graded = 0usize;
    let corpus: Vec<(String, &Database)> = EMP_QUERIES
        .iter()
        .enumerate()
        .map(|(i, sql)| (format!("corpus q{i:02}: {sql}"), &corpus_db))
        .chain(
            [
                ("tpcd q3", queries::q3_default()),
                ("tpcd q1", queries::q1("1998-09-02")),
                ("order report", queries::order_report()),
                ("section 6 example", queries::section6_example()),
            ]
            .into_iter()
            .map(|(name, sql)| (format!("{name}: {sql}"), &db)),
        )
        .collect();
    for (label, target) in &corpus {
        let sql = label.split_once(": ").expect("label carries sql").1;
        let (_, metrics) = Session::new(target)
            .config(OptimizerConfig::default())
            .plan(sql)
            .and_then(|q| q.execute_instrumented())
            .unwrap_or_else(|e| {
                eprintln!("error: {label}: {e}");
                std::process::exit(1);
            });
        for (id, op) in metrics.ops.iter().enumerate() {
            graded += 1;
            rows.push((
                op.rows_q_error(),
                format!("{}#{id}", op.name),
                op.est_rows,
                op.rows,
                label.clone(),
            ));
        }
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!(
        "{:>8} {:20} {:>10} {:>10}  query",
        "q-err", "operator", "est rows", "act rows"
    );
    for (q, op, est, act, label) in rows.iter().take(10) {
        let (sql_at, _) = label.split_at(label.len().min(60));
        println!("{q:>8.2} {op:20} {est:>10.0} {act:>10}  {sql_at}");
    }
    let worst = rows.first().map(|r| r.0).unwrap_or(1.0);
    println!("\n{graded} operators graded; worst Q-error {worst:.2} (ceiling {QERROR_CEILING})");
    if worst > QERROR_CEILING {
        eprintln!("plan quality regression: Q-error {worst:.2} exceeds {QERROR_CEILING}");
        std::process::exit(1);
    }
}
