//! Regenerates the §5.2 join-enumeration complexity observation: pushing
//! down sort-ahead orders grows enumeration work roughly quadratically in
//! the number of interesting orders n (the paper notes n < 3 in
//! practice, keeping the overhead acceptable).
//!
//! ```text
//! cargo run -p fto-bench --release --bin enumeration [-- <max_n>]
//! ```

use fto_bench::harness::enumeration_complexity;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("Join-enumeration work vs number of sort-ahead orders (TPC-D Q3)");
    println!();
    println!("| n (sort-ahead orders) | subplans generated | vs n=0 |");
    println!("|-----------------------|--------------------|--------|");
    let points = enumeration_complexity(0.005, max_n).unwrap();
    let base = points[0].1.max(1);
    for (n, plans) in &points {
        println!(
            "| {:>21} | {:>18} | {:>5.2}x |",
            n,
            plans,
            *plans as f64 / base as f64
        );
    }
    println!();
    println!(
        "The paper's claim: complexity grows by O(n^2) for n sort-ahead \
         orders, tolerable because n < 3 in practice."
    );
}
