//! Morsel-parallelism benchmark: the TPC-D workload run serially and at
//! parallel degrees 1, 2 and 4, reporting wall-clock latency
//! (best-of-N plus p50/p95/p99 from an [`fto_obs`] log-linear
//! histogram), simulated page I/O and row counts per (query, degree)
//! cell, and asserting along the way that every parallel run returns
//! exactly the serial answer and passes the instrumented rollup check.
//!
//! ```text
//! cargo run -p fto-bench --release --bin perfbench [-- <scale> [runs]]
//! ```
//!
//! Results are printed as a table and written to `BENCH_PR4.json` in the
//! current directory (machine cores included, so single-core containers
//! don't read as regressions).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use fto_bench::harness::tpcd_db;
use fto_bench::Session;
use fto_obs::metrics::Histogram;
use fto_planner::OptimizerConfig;
use fto_tpcd::queries;

const DEGREES: &[usize] = &[1, 2, 4];

struct Cell {
    threads: usize,
    best: Duration,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    pages: u64,
    rows: usize,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = parse_arg_or_exit(args.next(), "scale", 0.02);
    let runs: usize = parse_arg_or_exit(args.next(), "runs", 3);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = match tpcd_db(scale) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let workload: Vec<(&str, String)> = vec![
        ("q3", queries::q3_default()),
        ("q1", queries::q1("1998-09-02")),
        ("order_report", queries::order_report()),
        (
            "orders_by_date",
            "select o_orderdate, o_orderkey, o_totalprice from orders \
             order by o_orderdate, o_orderkey"
                .to_string(),
        ),
    ];

    println!("Morsel-parallelism benchmark (scale {scale}, {runs} runs, {cores} core(s))");
    println!();
    println!("| query          | threads | best         | p50 us  | p95 us  | p99 us  | sim. pages | rows  |");
    println!("|----------------|---------|--------------|---------|---------|---------|------------|-------|");

    let mut results: Vec<(&str, Vec<Cell>)> = Vec::new();
    for (name, sql) in &workload {
        let serial_rows = Session::new(&db)
            .config(OptimizerConfig::default().with_threads(1))
            .plan(sql)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .execute()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .rows;
        let mut cells = Vec::new();
        for &p in DEGREES {
            let prepared = Session::new(&db)
                .config(OptimizerConfig::default().with_threads(p))
                .plan(sql)
                .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
            // Correctness gates first: identical rows, exact rollup.
            let (out, metrics) = prepared
                .execute_instrumented()
                .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
            assert_eq!(
                out.rows, serial_rows,
                "{name} threads {p}: parallel answer diverged from serial"
            );
            metrics
                .validate()
                .unwrap_or_else(|e| panic!("{name} threads {p}: rollup broken: {e}"));
            // Then time the plain execution path: best of `runs`, with
            // every run's latency observed into a histogram so the table
            // reports tail behavior, not just the flattering minimum.
            let mut latency = Histogram::new();
            let mut best = Duration::MAX;
            let mut last = None;
            for _ in 0..runs {
                let start = Instant::now();
                let out = prepared
                    .execute()
                    .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
                let elapsed = start.elapsed();
                latency.observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
                best = best.min(elapsed);
                last = Some(out);
            }
            let out = last.expect("runs >= 1");
            let snap = latency.snapshot();
            let cell = Cell {
                threads: p,
                best,
                p50_us: snap.p50,
                p95_us: snap.p95,
                p99_us: snap.p99,
                pages: out.io.sequential_pages + out.io.random_pages,
                rows: out.rows.len(),
            };
            println!(
                "| {:<14} | {:>7} | {:>10.3?} | {:>7} | {:>7} | {:>7} | {:>10} | {:>5} |",
                name,
                cell.threads,
                cell.best,
                cell.p50_us,
                cell.p95_us,
                cell.p99_us,
                cell.pages,
                cell.rows
            );
            cells.push(cell);
        }
        results.push((name, cells));
    }

    let json = render_json(scale, runs, cores, &results);
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    println!();
    println!("wrote BENCH_PR4.json");
}

/// Parses an optional positional argument strictly: absent uses the
/// default, present-but-unparseable reports the error and exits 2.
fn parse_arg_or_exit<T: std::str::FromStr>(arg: Option<String>, what: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match arg {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {what} argument {raw:?} is invalid: {e}");
                std::process::exit(2);
            }
        },
    }
}

/// Hand-rolled JSON writer — the workspace is offline and carries no
/// serde dependency; the schema is flat enough to emit directly.
fn render_json(scale: f64, runs: usize, cores: usize, results: &[(&str, Vec<Cell>)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"morsel_parallelism\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"runs\": {runs},");
    let _ = writeln!(s, "  \"cores\": {cores},");
    s.push_str("  \"queries\": [\n");
    for (qi, (name, cells)) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{name}\",");
        s.push_str("      \"cells\": [\n");
        for (ci, c) in cells.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"threads\": {}, \"best_ms\": {:.3}, \"p50_us\": {}, \
                 \"p95_us\": {}, \"p99_us\": {}, \"pages\": {}, \"rows\": {}}}",
                c.threads,
                c.best.as_secs_f64() * 1e3,
                c.p50_us,
                c.p95_us,
                c.p99_us,
                c.pages,
                c.rows
            );
            s.push_str(if ci + 1 < cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ]\n");
        s.push_str(if qi + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}
