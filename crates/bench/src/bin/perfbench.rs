//! Executor performance benchmark, three sections:
//!
//! 1. **Columnar-kernel microbench** — filter, projection, group-by key
//!    computation and sort-key encoding over typed column batches
//!    (100k–1M rows per column type), timed row-at-a-time through the
//!    reference evaluators against the vectorized kernels
//!    ([`fto_expr::vector`], [`fto_common::column::encode_batch_keys`]),
//!    asserting identical results and reporting rows/sec each way.
//! 2. **Sort-kernel microbench** — 100k-row sorts of every key shape
//!    (int, int pair with desc, double, string, date+bool, mixed with
//!    NULLs), timed through the legacy `Value`-comparator path and the
//!    normalized-binary-key codec path ([`fto_common::sortkey`]),
//!    asserting both orders identical and reporting rows/sec each way.
//! 3. **Morsel-parallelism** — the TPC-D workload run at parallel
//!    degrees 1, 2 and 4, reporting wall-clock latency (best-of-N plus
//!    p50/p95/p99 from an [`fto_obs`] log-linear histogram), simulated
//!    page I/O and row counts per (query, degree) cell, asserting along
//!    the way that every parallel run returns exactly the serial answer
//!    and passes the instrumented rollup check.
//! 4. **External sort / bounded memory** — sort- and group-heavy TPC-D
//!    queries run unbounded and under 64 KiB / 4 KiB memory budgets,
//!    reporting wall-clock, spill page traffic, runs formed and merge
//!    passes per cell, asserting every bounded run returns exactly the
//!    unbounded answer.
//! 5. **Segmented sort** — 1M prefix-ordered rows at group counts 10,
//!    1k and 100k, timed through the full two-key sort against the
//!    segmented path (boundary detection + per-group suffix sorts, the
//!    work `SegmentedSortOp` does), asserting identical output; plus an
//!    end-to-end TPC-D query where the clustered lineitem index supplies
//!    the prefix, run with the segmented enforcer on and off.
//!
//! ```text
//! cargo run -p fto-bench --release --bin perfbench [-- <scale> [runs]]
//! ```
//!
//! Results are printed as tables and written to `BENCH_PR8.json` in the
//! current directory (machine cores included, so single-core containers
//! don't read as regressions).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use fto_bench::harness::tpcd_db;
use fto_bench::Session;
use fto_common::column::{encode_batch_keys_arena, Batch};
use fto_common::{sortkey, ColId, Direction, Rng, Row, Value};
use fto_exec::sortkernel::{self, SortKeys};
use fto_expr::{vector, CompareOp, Expr, Predicate, RowLayout};
use fto_obs::metrics::Histogram;
use fto_planner::OptimizerConfig;
use fto_tpcd::queries;

const DEGREES: &[usize] = &[1, 2, 4];

struct Cell {
    threads: usize,
    best: Duration,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    pages: u64,
    rows: usize,
}

/// Rows per shape in the columnar-kernel microbench: fixed-width column
/// types get a full million rows, variable-width strings and the mixed
/// `Value` fallback run 250k so the row baseline stays affordable.
const COL_ROWS_FIXED: usize = 1_000_000;
const COL_ROWS_VAR: usize = 250_000;

/// One input to the columnar-kernel microbench: the same data held both
/// ways (pre-materialized rows for the row-at-a-time baseline, a typed
/// [`Batch`] for the vectorized kernels), plus the predicate and key
/// sets each kernel runs. Two columns per shape: `c0` is high-cardinality
/// payload (filter + sort keys), `c1` is a low-cardinality group key.
struct ColShape {
    name: &'static str,
    rows: Vec<Row>,
    batch: Batch,
    filter: Predicate,
}

impl ColShape {
    fn new(name: &'static str, rows: Vec<Row>, filter: Predicate) -> Self {
        let batch = Batch::from_rows(&rows);
        ColShape {
            name,
            rows,
            batch,
            filter,
        }
    }
}

fn columnar_workload(rng: &mut Rng) -> Vec<ColShape> {
    let gt = |lit: Value| Predicate::new(CompareOp::Gt, Expr::col(ColId(0)), Expr::Lit(lit));
    let mut shapes = Vec::new();

    let ints: Vec<Row> = (0..COL_ROWS_FIXED)
        .map(|_| {
            vec![
                Value::Int(rng.range_i64(0, 1_000_000)),
                Value::Int(rng.range_i64(0, 1000)),
            ]
            .into()
        })
        .collect();
    shapes.push(ColShape::new("int64", ints, gt(Value::Int(500_000))));

    let doubles: Vec<Row> = (0..COL_ROWS_FIXED)
        .map(|_| {
            vec![
                Value::Double(rng.range_f64(-1e9, 1e9)),
                Value::Double(rng.range_i64(0, 1000) as f64),
            ]
            .into()
        })
        .collect();
    shapes.push(ColShape::new("float64", doubles, gt(Value::Double(0.0))));

    let dates: Vec<Row> = (0..COL_ROWS_FIXED)
        .map(|_| {
            vec![
                Value::Date(rng.range_i32(0, 20_000)),
                Value::Date(rng.range_i32(8000, 8100)),
            ]
            .into()
        })
        .collect();
    shapes.push(ColShape::new("date32", dates, gt(Value::Date(10_000))));

    let bools: Vec<Row> = (0..COL_ROWS_FIXED)
        .map(|_| vec![Value::Bool(rng.bool()), Value::Bool(rng.bool())].into())
        .collect();
    shapes.push(ColShape::new(
        "bool",
        bools,
        Predicate::col_eq_const(ColId(0), Value::Bool(true)),
    ));

    let strs: Vec<Row> = (0..COL_ROWS_VAR)
        .map(|_| {
            let payload = format!("cust#{:08}", rng.range_i64(0, 100_000));
            let group = format!("grp#{:03}", rng.range_i64(0, 500));
            vec![Value::str(payload), Value::str(group)].into()
        })
        .collect();
    shapes.push(ColShape::new("utf8", strs, gt(Value::str("cust#00050000"))));

    let mixed: Vec<Row> = (0..COL_ROWS_VAR)
        .map(|_| {
            let payload = if rng.chance(0.1) {
                Value::Null
            } else if rng.bool() {
                Value::Int(rng.range_i64(-1000, 1000))
            } else {
                Value::Double(rng.range_f64(-1000.0, 1000.0))
            };
            let group = if rng.bool() {
                Value::Int(rng.range_i64(0, 8))
            } else {
                Value::Double(rng.range_i64(0, 8) as f64)
            };
            vec![payload, group].into()
        })
        .collect();
    shapes.push(ColShape::new("mixed_nulls", mixed, gt(Value::Int(0))));
    shapes
}

struct KernelCell {
    kernel: &'static str,
    shape: &'static str,
    rows: usize,
    row_best: Duration,
    vec_best: Duration,
}

impl KernelCell {
    fn rows_per_sec(&self, d: Duration) -> f64 {
        self.rows as f64 / d.as_secs_f64()
    }
    fn speedup(&self) -> f64 {
        self.row_best.as_secs_f64() / self.vec_best.as_secs_f64()
    }
}

/// Best-of-`runs` timing; returns the last run's result so callers can
/// cross-check the two implementations against each other.
fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..runs {
        let start = Instant::now();
        let r = std::hint::black_box(f());
        best = best.min(start.elapsed());
        out = Some(r);
    }
    (best, out.expect("runs >= 1"))
}

/// Times the four vectorized executor kernels against their row-at-a-time
/// reference implementations on every column type, asserting identical
/// results (selection vectors, projected rows, group counts, key bytes).
fn run_columnar_bench(runs: usize) -> Vec<KernelCell> {
    let mut rng = Rng::new(0xC01_BE4C);
    let layout = RowLayout::new(vec![ColId(0), ColId(1)]);
    let proj_exprs = [Expr::col(ColId(1)), Expr::col(ColId(0))];
    let group_keys: SortKeys = vec![(1, Direction::Asc)];
    let mut cells = Vec::new();
    println!("Columnar-kernel microbench (best of {runs}; row baseline vs vectorized)");
    println!();
    println!(
        "| kernel          | shape        | rows    | row rows/s   | vec rows/s   | speedup |"
    );
    println!(
        "|-----------------|--------------|---------|--------------|--------------|---------|"
    );
    for shape in columnar_workload(&mut rng) {
        let n = shape.rows.len();

        // Filter: predicate to selection vector.
        let (row_best, row_sel) = best_of(runs, || {
            let mut out: Vec<u32> = Vec::new();
            for (i, row) in shape.rows.iter().enumerate() {
                if shape.filter.eval(row, &layout).expect("filter eval") {
                    out.push(i as u32);
                }
            }
            out
        });
        let (vec_best, vec_sel) = best_of(runs, || {
            let mut sel: Vec<u32> = (0..n as u32).collect();
            vector::filter_selection(&shape.filter, &shape.batch, &layout, &mut sel)
                .expect("filter_selection");
            sel
        });
        assert_eq!(
            row_sel, vec_sel,
            "{}: filter selections diverged",
            shape.name
        );
        cells.push(KernelCell {
            kernel: "filter",
            shape: shape.name,
            rows: n,
            row_best,
            vec_best,
        });

        // Projection: column permutation (vectorized path is an Arc clone
        // per output column; the row path clones every value).
        let (row_best, row_proj) = best_of(runs, || {
            shape
                .rows
                .iter()
                .map(|row| {
                    proj_exprs
                        .iter()
                        .map(|e| e.eval(row, &layout).expect("project eval"))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                })
                .collect::<Vec<Row>>()
        });
        let (vec_best, vec_proj) = best_of(runs, || {
            vector::project_batch(&proj_exprs, &shape.batch, &layout).expect("project_batch")
        });
        assert_eq!(
            row_proj,
            vec_proj.to_rows(),
            "{}: projections diverged",
            shape.name
        );
        cells.push(KernelCell {
            kernel: "projection",
            shape: shape.name,
            rows: n,
            row_best,
            vec_best,
        });

        // Group-by key computation: distinct-key table build, value-keyed
        // (row engine) vs normalized-byte-keyed (columnar engine).
        let (row_best, row_groups) = best_of(runs, || {
            let mut map: HashMap<Vec<Value>, u64> = HashMap::new();
            for row in &shape.rows {
                *map.entry(vec![row[1].clone()]).or_insert(0) += 1;
            }
            map
        });
        let (vec_best, vec_groups) = best_of(runs, || {
            let (mut kb, mut ko) = (Vec::new(), Vec::new());
            encode_batch_keys_arena(&shape.batch, &group_keys, &mut kb, &mut ko);
            let mut map: HashMap<Vec<u8>, u64> = HashMap::new();
            for i in 0..n {
                let key = &kb[ko[i]..ko[i + 1]];
                if let Some(c) = map.get_mut(key) {
                    *c += 1;
                } else {
                    map.insert(key.to_vec(), 1);
                }
            }
            map
        });
        // Byte keys canonicalize Int 5 == Double 5.0 exactly like Value
        // equality, so the group sets must correspond one-to-one.
        assert_eq!(
            row_groups.len(),
            vec_groups.len(),
            "{}: group cardinality diverged",
            shape.name
        );
        let mut row_counts: Vec<u64> = row_groups.values().copied().collect();
        let mut vec_counts: Vec<u64> = vec_groups.values().copied().collect();
        row_counts.sort_unstable();
        vec_counts.sort_unstable();
        assert_eq!(
            row_counts, vec_counts,
            "{}: group counts diverged",
            shape.name
        );
        cells.push(KernelCell {
            kernel: "group_key",
            shape: shape.name,
            rows: n,
            row_best,
            vec_best,
        });

        // Sort-key encoding: per-row codec vs column-at-a-time, on the
        // engine's most common sort shape (single ORDER BY column —
        // descending for two shapes so the inversion pass is measured).
        let dir = match shape.name {
            "date32" | "utf8" => Direction::Desc,
            _ => Direction::Asc,
        };
        let sort_keys: SortKeys = vec![(0, dir)];
        let (row_best, row_keys) = best_of(runs, || {
            shape
                .rows
                .iter()
                .map(|row| sortkey::encode_key(row, &sort_keys))
                .collect::<Vec<_>>()
        });
        let (vec_best, (kb, ko)) = best_of(runs, || {
            let (mut kb, mut ko) = (Vec::new(), Vec::new());
            encode_batch_keys_arena(&shape.batch, &sort_keys, &mut kb, &mut ko);
            (kb, ko)
        });
        for (i, expected) in row_keys.iter().enumerate() {
            assert_eq!(
                &kb[ko[i]..ko[i + 1]],
                &expected[..],
                "{}: key encoding diverged at row {i}",
                shape.name
            );
        }
        cells.push(KernelCell {
            kernel: "sortkey_encode",
            shape: shape.name,
            rows: n,
            row_best,
            vec_best,
        });
    }
    for c in &cells {
        println!(
            "| {:<15} | {:<12} | {:>7} | {:>12.0} | {:>12.0} | {:>6.2}x |",
            c.kernel,
            c.shape,
            c.rows,
            c.rows_per_sec(c.row_best),
            c.rows_per_sec(c.vec_best),
            c.speedup()
        );
    }
    println!();
    cells
}

/// Rows sorted per key shape in the sort-kernel microbench.
const SORT_ROWS: usize = 100_000;

struct SortCell {
    shape: &'static str,
    rows: usize,
    legacy_best: Duration,
    codec_best: Duration,
}

impl SortCell {
    fn rows_per_sec(&self, d: Duration) -> f64 {
        self.rows as f64 / d.as_secs_f64()
    }
    fn speedup(&self) -> f64 {
        self.legacy_best.as_secs_f64() / self.codec_best.as_secs_f64()
    }
}

/// One 100k-row input per key shape the codec encodes differently:
/// fixed-width single int (radix path), two-column int with a desc part,
/// doubles (NaN-free), strings, date+bool, and a mixed nullable column.
fn sort_workload(rng: &mut Rng) -> Vec<(&'static str, Vec<Row>, SortKeys)> {
    let asc = |cols: &[usize]| -> SortKeys { cols.iter().map(|&c| (c, Direction::Asc)).collect() };
    let mut shapes: Vec<(&'static str, Vec<Row>, SortKeys)> = Vec::new();

    let ints: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            vec![
                Value::Int(rng.range_i64(-1_000_000, 1_000_000)),
                Value::Int(0),
            ]
            .into()
        })
        .collect();
    shapes.push(("int", ints, asc(&[0])));

    let pairs: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            vec![
                Value::Int(rng.range_i64(0, 1000)),
                Value::Int(rng.range_i64(0, 1_000_000)),
            ]
            .into()
        })
        .collect();
    shapes.push((
        "int_pair_desc",
        pairs,
        vec![(0, Direction::Asc), (1, Direction::Desc)],
    ));

    let doubles: Vec<Row> = (0..SORT_ROWS)
        .map(|_| vec![Value::Double(rng.range_f64(-1e9, 1e9)), Value::Int(0)].into())
        .collect();
    shapes.push(("double", doubles, asc(&[0])));

    let strs: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            let s = format!(
                "cust#{:08}-{:04}",
                rng.range_i64(0, 100_000),
                rng.range_i64(0, 100)
            );
            vec![Value::str(s), Value::Int(0)].into()
        })
        .collect();
    shapes.push(("str", strs, asc(&[0])));

    let datebool: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            vec![
                Value::Date(rng.range_i32(8000, 12000)),
                Value::Bool(rng.bool()),
            ]
            .into()
        })
        .collect();
    shapes.push(("date_bool", datebool, asc(&[0, 1])));

    let mixed: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            let v = if rng.chance(0.1) {
                Value::Null
            } else if rng.bool() {
                Value::Int(rng.range_i64(-1000, 1000))
            } else {
                Value::Double(rng.range_f64(-1000.0, 1000.0))
            };
            vec![v, Value::Int(rng.range_i64(0, 100))].into()
        })
        .collect();
    shapes.push(("mixed_nulls", mixed, asc(&[0, 1])));
    shapes
}

/// Times the legacy `Value`-comparator sort against the normalized-key
/// codec sort (best of `runs` each, sorting a fresh clone every run),
/// asserting the two outputs identical.
fn run_sort_bench(runs: usize) -> Vec<SortCell> {
    let mut rng = Rng::new(0x5eed_be4c);
    let mut cells = Vec::new();
    println!("Sort-kernel microbench ({SORT_ROWS} rows/shape, best of {runs})");
    println!();
    println!("| shape          | legacy rows/s | codec rows/s | speedup |");
    println!("|----------------|---------------|--------------|---------|");
    for (shape, rows, keys) in sort_workload(&mut rng) {
        let mut best = [Duration::MAX; 2];
        let mut outputs: [Option<Vec<Row>>; 2] = [None, None];
        for _ in 0..runs {
            for (i, codec) in [false, true].into_iter().enumerate() {
                let mut input = rows.clone();
                let start = Instant::now();
                sortkernel::sort_rows_with(&mut input, &keys, codec);
                best[i] = best[i].min(start.elapsed());
                outputs[i] = Some(input);
            }
        }
        assert_eq!(
            outputs[0], outputs[1],
            "{shape}: codec order diverged from legacy"
        );
        let cell = SortCell {
            shape,
            rows: SORT_ROWS,
            legacy_best: best[0],
            codec_best: best[1],
        };
        println!(
            "| {:<14} | {:>13.0} | {:>12.0} | {:>6.2}x |",
            cell.shape,
            cell.rows_per_sec(cell.legacy_best),
            cell.rows_per_sec(cell.codec_best),
            cell.speedup()
        );
        cells.push(cell);
    }
    println!();
    cells
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = parse_arg_or_exit(args.next(), "scale", 0.02);
    let runs: usize = parse_arg_or_exit(args.next(), "runs", 3);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let kernel_cells = run_columnar_bench(runs.max(1));
    let sort_cells = run_sort_bench(runs.max(1));

    let db = match tpcd_db(scale) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let workload: Vec<(&str, String)> = vec![
        ("q3", queries::q3_default()),
        ("q1", queries::q1("1998-09-02")),
        ("order_report", queries::order_report()),
        (
            "orders_by_date",
            "select o_orderdate, o_orderkey, o_totalprice from orders \
             order by o_orderdate, o_orderkey"
                .to_string(),
        ),
    ];

    println!("Morsel-parallelism benchmark (scale {scale}, {runs} runs, {cores} core(s))");
    println!();
    println!("| query          | threads | best         | p50 us  | p95 us  | p99 us  | sim. pages | rows  |");
    println!("|----------------|---------|--------------|---------|---------|---------|------------|-------|");

    let mut results: Vec<(&str, Vec<Cell>)> = Vec::new();
    for (name, sql) in &workload {
        let serial_rows = Session::new(&db)
            .config(OptimizerConfig::default().with_threads(1))
            .plan(sql)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .execute()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .rows()
            .to_vec();
        let mut cells = Vec::new();
        for &p in DEGREES {
            let prepared = Session::new(&db)
                .config(OptimizerConfig::default().with_threads(p))
                .plan(sql)
                .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
            // Correctness gates first: identical rows, exact rollup.
            let (out, metrics) = prepared
                .execute_instrumented()
                .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
            assert_eq!(
                out.rows(),
                &serial_rows[..],
                "{name} threads {p}: parallel answer diverged from serial"
            );
            metrics
                .validate()
                .unwrap_or_else(|e| panic!("{name} threads {p}: rollup broken: {e}"));
            // Then time the plain execution path: best of `runs`, with
            // every run's latency observed into a histogram so the table
            // reports tail behavior, not just the flattering minimum.
            let mut latency = Histogram::new();
            let mut best = Duration::MAX;
            let mut last = None;
            for _ in 0..runs {
                let start = Instant::now();
                let out = prepared
                    .execute()
                    .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
                let elapsed = start.elapsed();
                latency.observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
                best = best.min(elapsed);
                last = Some(out);
            }
            let out = last.expect("runs >= 1");
            let snap = latency.snapshot();
            let cell = Cell {
                threads: p,
                best,
                p50_us: snap.p50,
                p95_us: snap.p95,
                p99_us: snap.p99,
                pages: out.io.sequential_pages + out.io.random_pages,
                rows: out.num_rows(),
            };
            println!(
                "| {:<14} | {:>7} | {:>10.3?} | {:>7} | {:>7} | {:>7} | {:>10} | {:>5} |",
                name,
                cell.threads,
                cell.best,
                cell.p50_us,
                cell.p95_us,
                cell.p99_us,
                cell.pages,
                cell.rows
            );
            cells.push(cell);
        }
        results.push((name, cells));
    }

    let ext_cells = run_extsort_bench(&db, runs.max(1));
    let seg_cells = run_segmented_bench(runs.max(1));
    let seg_query = run_segmented_query_bench(&db, runs.max(1));

    let json = render_json(
        scale,
        runs,
        cores,
        &kernel_cells,
        &sort_cells,
        &results,
        &ext_cells,
        &seg_cells,
        &seg_query,
    );
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    println!();
    println!("wrote BENCH_PR8.json");
}

/// One (query, budget) cell of the external-sort benchmark. `budget` of
/// `None` is the unbounded baseline.
struct ExtCell {
    query: &'static str,
    budget: Option<usize>,
    best: Duration,
    spill_pages_written: u64,
    spill_pages_read: u64,
    runs_formed: u64,
    merge_passes: u64,
    rows: usize,
}

/// Times bounded-memory execution against the in-memory baseline on the
/// workload's sort- and group-heavy queries, asserting bit-identical rows
/// at every budget and reporting the spill traffic each budget caused.
fn run_extsort_bench(db: &fto_storage::Database, runs: usize) -> Vec<ExtCell> {
    const BUDGETS: &[Option<usize>] = &[None, Some(64 << 10), Some(4 << 10)];
    let workload: Vec<(&str, String)> = vec![
        (
            "orders_by_date",
            "select o_orderdate, o_orderkey, o_totalprice from orders \
             order by o_orderdate, o_orderkey"
                .to_string(),
        ),
        ("q1", queries::q1("1998-09-02")),
        (
            // Grouping off the index order forces the hash group-by (and
            // its partition-spill path under the small budgets).
            "lineitem_group",
            "select l_partkey, count(*) as n, sum(l_extendedprice) as total \
             from lineitem group by l_partkey order by l_partkey"
                .to_string(),
        ),
    ];
    println!("External-sort benchmark (best of {runs}; bounded vs in-memory)");
    println!();
    println!(
        "| query          | budget  | best         | spill w | spill r | runs | passes | rows  |"
    );
    println!(
        "|----------------|---------|--------------|---------|---------|------|--------|-------|"
    );
    let mut cells = Vec::new();
    for (name, sql) in &workload {
        let mut baseline: Option<Vec<Row>> = None;
        for &budget in BUDGETS {
            let mut config = OptimizerConfig::default();
            if let Some(bytes) = budget {
                config = config.with_memory_budget(bytes);
            }
            let prepared = Session::new(db)
                .config(config)
                .plan(sql)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut best = Duration::MAX;
            let mut last = None;
            for _ in 0..runs {
                let start = Instant::now();
                let out = prepared
                    .execute()
                    .unwrap_or_else(|e| panic!("{name} budget {budget:?}: {e}"));
                best = best.min(start.elapsed());
                last = Some(out);
            }
            let out = last.expect("runs >= 1");
            match &baseline {
                None => baseline = Some(out.rows().to_vec()),
                Some(expected) => assert_eq!(
                    out.rows(),
                    &expected[..],
                    "{name} budget {budget:?}: bounded answer diverged from unbounded"
                ),
            }
            let cell = ExtCell {
                query: name,
                budget,
                best,
                spill_pages_written: out.io.spill_pages_written,
                spill_pages_read: out.io.spill_pages_read,
                runs_formed: out.spill.runs_formed,
                merge_passes: out.spill.merge_passes,
                rows: out.num_rows(),
            };
            println!(
                "| {:<14} | {:>7} | {:>10.3?} | {:>7} | {:>7} | {:>4} | {:>6} | {:>5} |",
                cell.query,
                cell.budget
                    .map_or_else(|| "none".to_string(), |b| format!("{}K", b >> 10)),
                cell.best,
                cell.spill_pages_written,
                cell.spill_pages_read,
                cell.runs_formed,
                cell.merge_passes,
                cell.rows
            );
            cells.push(cell);
        }
    }
    println!();
    cells
}

/// Rows in the segmented-sort microbench.
const SEG_ROWS: usize = 1_000_000;

/// One group-count cell of the segmented-sort benchmark.
struct SegCell {
    groups: usize,
    rows: usize,
    full_best: Duration,
    seg_best: Duration,
}

impl SegCell {
    fn speedup(&self) -> f64 {
        self.full_best.as_secs_f64() / self.seg_best.as_secs_f64()
    }
}

/// One end-to-end cell: the clustered-prefix TPC-D query with the
/// segmented enforcer on vs off.
struct SegQueryCell {
    query: &'static str,
    full_best: Duration,
    seg_best: Duration,
    rows: usize,
}

/// Times the full two-key sort against the segmented path — boundary
/// detection on the prefix column plus per-group suffix-key sorts, the
/// same work `SegmentedSortOp` performs — on 1M rows already ordered by
/// the prefix, at increasing group counts. Both outputs must be
/// identical. The segmented path wins on two fronts: it never encodes
/// or compares the prefix (an order-id string here, the shape a
/// clustered index delivers — the full sort pays var-width key encodes
/// and long common-prefix memcmps for it), and each group sort touches
/// a working set of n/G rows with short fixed-width suffix keys.
fn run_segmented_bench(runs: usize) -> Vec<SegCell> {
    let mut rng = Rng::new(0x5e6_be4c);
    let full_keys: SortKeys = vec![(0, Direction::Asc), (1, Direction::Asc)];
    let suffix_keys: SortKeys = vec![(1, Direction::Asc)];
    let mut cells = Vec::new();
    println!("Segmented-sort microbench ({SEG_ROWS} prefix-ordered rows, best of {runs})");
    println!();
    println!("| groups  | full sort    | segmented    | speedup |");
    println!("|---------|--------------|--------------|---------|");
    for &groups in &[10usize, 1_000, 100_000] {
        let per_group = SEG_ROWS / groups;
        // Prefix-ordered input: order-id ascending, residual column
        // random — the stream shape a clustered index (or ordered join
        // output) delivers.
        let rows: Vec<Row> = (0..SEG_ROWS)
            .map(|i| {
                vec![
                    Value::str(format!("ord#{:08}", i / per_group)),
                    Value::Int(rng.range_i64(0, 1_000_000)),
                ]
                .into()
            })
            .collect();

        let (full_best, full_out) = {
            let mut best = Duration::MAX;
            let mut out = None;
            for _ in 0..runs {
                let mut input = rows.clone();
                let start = Instant::now();
                sortkernel::sort_rows_with(&mut input, &full_keys, true);
                best = best.min(start.elapsed());
                out = Some(input);
            }
            (best, out.expect("runs >= 1"))
        };

        let (seg_best, seg_out) = {
            let mut best = Duration::MAX;
            let mut out = None;
            for _ in 0..runs {
                let input = rows.clone();
                let start = Instant::now();
                // Boundary scan on the prefix column (value equality —
                // what the operator does per batch on arena key bytes).
                let mut bounds = vec![0usize];
                for i in 1..input.len() {
                    if input[i][0] != input[i - 1][0] {
                        bounds.push(i);
                    }
                }
                bounds.push(input.len());
                // Per-group suffix sorts, emitted in arrival order.
                let mut sorted: Vec<Row> = Vec::with_capacity(input.len());
                let mut it = input.into_iter();
                let mut group: Vec<Row> = Vec::new();
                for w in bounds.windows(2) {
                    group.extend(it.by_ref().take(w[1] - w[0]));
                    sortkernel::sort_rows_with(&mut group, &suffix_keys, true);
                    sorted.append(&mut group);
                }
                best = best.min(start.elapsed());
                out = Some(sorted);
            }
            (best, out.expect("runs >= 1"))
        };

        assert_eq!(
            full_out, seg_out,
            "groups={groups}: segmented order diverged from the full sort"
        );
        let cell = SegCell {
            groups,
            rows: SEG_ROWS,
            full_best,
            seg_best,
        };
        println!(
            "| {:>7} | {:>10.3?} | {:>10.3?} | {:>6.2}x |",
            cell.groups,
            cell.full_best,
            cell.seg_best,
            cell.speedup()
        );
        cells.push(cell);
    }
    println!();
    cells
}

/// The end-to-end leg: a query whose plan sorts lineitem by
/// (l_orderkey, l_shipdate) on top of the clustered (l_orderkey,
/// l_linenumber) index — the segmented enforcer sorts only l_shipdate
/// within each order's lines. Run with the enforcer on (default) and
/// off, asserting identical rows.
fn run_segmented_query_bench(db: &fto_storage::Database, runs: usize) -> SegQueryCell {
    let sql = "select l_orderkey, l_shipdate, l_extendedprice from lineitem \
               order by l_orderkey, l_shipdate";
    let mut bests = [Duration::MAX; 2];
    let mut outputs: [Option<Vec<Row>>; 2] = [None, None];
    for (i, segmented) in [false, true].into_iter().enumerate() {
        let prepared = Session::new(db)
            .config(OptimizerConfig::default().with_segmented_sort(segmented))
            .plan(sql)
            .unwrap_or_else(|e| panic!("clustered_prefix: {e}"));
        if segmented {
            assert!(
                prepared.explain().contains("segmented-sort"),
                "clustered_prefix: expected a segmented plan\n{}",
                prepared.explain()
            );
        }
        for _ in 0..runs {
            let start = Instant::now();
            let out = prepared
                .execute()
                .unwrap_or_else(|e| panic!("clustered_prefix segmented={segmented}: {e}"));
            bests[i] = bests[i].min(start.elapsed());
            outputs[i] = Some(out.rows().to_vec());
        }
    }
    assert_eq!(
        outputs[0], outputs[1],
        "clustered_prefix: segmented answer diverged from the full sort"
    );
    let cell = SegQueryCell {
        query: "lineitem_clustered_prefix",
        full_best: bests[0],
        seg_best: bests[1],
        rows: outputs[0].as_ref().map_or(0, |r| r.len()),
    };
    println!("Segmented sort end-to-end (clustered prefix, best of {runs})");
    println!();
    println!("| query                     | full sort    | segmented    | speedup | rows  |");
    println!("|---------------------------|--------------|--------------|---------|-------|");
    println!(
        "| {:<25} | {:>10.3?} | {:>10.3?} | {:>6.2}x | {:>5} |",
        cell.query,
        cell.full_best,
        cell.seg_best,
        cell.full_best.as_secs_f64() / cell.seg_best.as_secs_f64(),
        cell.rows
    );
    println!();
    cell
}

/// Parses an optional positional argument strictly: absent uses the
/// default, present-but-unparseable reports the error and exits 2.
fn parse_arg_or_exit<T: std::str::FromStr>(arg: Option<String>, what: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match arg {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {what} argument {raw:?} is invalid: {e}");
                std::process::exit(2);
            }
        },
    }
}

/// Hand-rolled JSON writer — the workspace is offline and carries no
/// serde dependency; the schema is flat enough to emit directly.
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: f64,
    runs: usize,
    cores: usize,
    kernel_cells: &[KernelCell],
    sort_cells: &[SortCell],
    results: &[(&str, Vec<Cell>)],
    ext_cells: &[ExtCell],
    seg_cells: &[SegCell],
    seg_query: &SegQueryCell,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"bench\": \"columnar_kernels_sort_codec_morsel_extsort_segmented\","
    );
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"runs\": {runs},");
    let _ = writeln!(s, "  \"cores\": {cores},");
    s.push_str("  \"columnar_kernels\": [\n");
    for (i, c) in kernel_cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"rows\": {}, \
             \"row_rows_per_sec\": {:.0}, \"vec_rows_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            c.kernel,
            c.shape,
            c.rows,
            c.rows_per_sec(c.row_best),
            c.rows_per_sec(c.vec_best),
            c.speedup()
        );
        s.push_str(if i + 1 < kernel_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"sort_kernel\": [\n");
    for (i, c) in sort_cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"shape\": \"{}\", \"rows\": {}, \"legacy_rows_per_sec\": {:.0}, \
             \"codec_rows_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            c.shape,
            c.rows,
            c.rows_per_sec(c.legacy_best),
            c.rows_per_sec(c.codec_best),
            c.speedup()
        );
        s.push_str(if i + 1 < sort_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"queries\": [\n");
    for (qi, (name, cells)) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{name}\",");
        s.push_str("      \"cells\": [\n");
        for (ci, c) in cells.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"threads\": {}, \"best_ms\": {:.3}, \"p50_us\": {}, \
                 \"p95_us\": {}, \"p99_us\": {}, \"pages\": {}, \"rows\": {}}}",
                c.threads,
                c.best.as_secs_f64() * 1e3,
                c.p50_us,
                c.p95_us,
                c.p99_us,
                c.pages,
                c.rows
            );
            s.push_str(if ci + 1 < cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ]\n");
        s.push_str(if qi + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"external_sort\": [\n");
    for (i, c) in ext_cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"query\": \"{}\", \"budget_bytes\": {}, \"best_ms\": {:.3}, \
             \"spill_pages_written\": {}, \"spill_pages_read\": {}, \
             \"runs_formed\": {}, \"merge_passes\": {}, \"rows\": {}}}",
            c.query,
            c.budget
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            c.best.as_secs_f64() * 1e3,
            c.spill_pages_written,
            c.spill_pages_read,
            c.runs_formed,
            c.merge_passes,
            c.rows
        );
        s.push_str(if i + 1 < ext_cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"segmented_sort\": [\n");
    for (i, c) in seg_cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"groups\": {}, \"rows\": {}, \"full_ms\": {:.3}, \
             \"segmented_ms\": {:.3}, \"speedup\": {:.3}}}",
            c.groups,
            c.rows,
            c.full_best.as_secs_f64() * 1e3,
            c.seg_best.as_secs_f64() * 1e3,
            c.speedup()
        );
        s.push_str(if i + 1 < seg_cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"segmented_sort_query\": {{\"query\": \"{}\", \"full_ms\": {:.3}, \
         \"segmented_ms\": {:.3}, \"speedup\": {:.3}, \"rows\": {}}}",
        seg_query.query,
        seg_query.full_best.as_secs_f64() * 1e3,
        seg_query.seg_best.as_secs_f64() * 1e3,
        seg_query.full_best.as_secs_f64() / seg_query.seg_best.as_secs_f64(),
        seg_query.rows
    );
    s.push_str("}\n");
    s
}
