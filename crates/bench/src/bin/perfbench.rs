//! Executor performance benchmark, two sections:
//!
//! 1. **Sort-kernel microbench** — 100k-row sorts of every key shape
//!    (int, int pair with desc, double, string, date+bool, mixed with
//!    NULLs), timed through the legacy `Value`-comparator path and the
//!    normalized-binary-key codec path ([`fto_common::sortkey`]),
//!    asserting both orders identical and reporting rows/sec each way.
//! 2. **Morsel-parallelism** — the TPC-D workload run at parallel
//!    degrees 1, 2 and 4, reporting wall-clock latency (best-of-N plus
//!    p50/p95/p99 from an [`fto_obs`] log-linear histogram), simulated
//!    page I/O and row counts per (query, degree) cell, asserting along
//!    the way that every parallel run returns exactly the serial answer
//!    and passes the instrumented rollup check.
//!
//! ```text
//! cargo run -p fto-bench --release --bin perfbench [-- <scale> [runs]]
//! ```
//!
//! Results are printed as tables and written to `BENCH_PR5.json` in the
//! current directory (machine cores included, so single-core containers
//! don't read as regressions).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use fto_bench::harness::tpcd_db;
use fto_bench::Session;
use fto_common::{Direction, Rng, Row, Value};
use fto_exec::sortkernel::{self, SortKeys};
use fto_obs::metrics::Histogram;
use fto_planner::OptimizerConfig;
use fto_tpcd::queries;

const DEGREES: &[usize] = &[1, 2, 4];

struct Cell {
    threads: usize,
    best: Duration,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    pages: u64,
    rows: usize,
}

/// Rows sorted per key shape in the sort-kernel microbench.
const SORT_ROWS: usize = 100_000;

struct SortCell {
    shape: &'static str,
    rows: usize,
    legacy_best: Duration,
    codec_best: Duration,
}

impl SortCell {
    fn rows_per_sec(&self, d: Duration) -> f64 {
        self.rows as f64 / d.as_secs_f64()
    }
    fn speedup(&self) -> f64 {
        self.legacy_best.as_secs_f64() / self.codec_best.as_secs_f64()
    }
}

/// One 100k-row input per key shape the codec encodes differently:
/// fixed-width single int (radix path), two-column int with a desc part,
/// doubles (NaN-free), strings, date+bool, and a mixed nullable column.
fn sort_workload(rng: &mut Rng) -> Vec<(&'static str, Vec<Row>, SortKeys)> {
    let asc = |cols: &[usize]| -> SortKeys { cols.iter().map(|&c| (c, Direction::Asc)).collect() };
    let mut shapes: Vec<(&'static str, Vec<Row>, SortKeys)> = Vec::new();

    let ints: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            vec![
                Value::Int(rng.range_i64(-1_000_000, 1_000_000)),
                Value::Int(0),
            ]
            .into()
        })
        .collect();
    shapes.push(("int", ints, asc(&[0])));

    let pairs: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            vec![
                Value::Int(rng.range_i64(0, 1000)),
                Value::Int(rng.range_i64(0, 1_000_000)),
            ]
            .into()
        })
        .collect();
    shapes.push((
        "int_pair_desc",
        pairs,
        vec![(0, Direction::Asc), (1, Direction::Desc)],
    ));

    let doubles: Vec<Row> = (0..SORT_ROWS)
        .map(|_| vec![Value::Double(rng.range_f64(-1e9, 1e9)), Value::Int(0)].into())
        .collect();
    shapes.push(("double", doubles, asc(&[0])));

    let strs: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            let s = format!(
                "cust#{:08}-{:04}",
                rng.range_i64(0, 100_000),
                rng.range_i64(0, 100)
            );
            vec![Value::str(s), Value::Int(0)].into()
        })
        .collect();
    shapes.push(("str", strs, asc(&[0])));

    let datebool: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            vec![
                Value::Date(rng.range_i32(8000, 12000)),
                Value::Bool(rng.bool()),
            ]
            .into()
        })
        .collect();
    shapes.push(("date_bool", datebool, asc(&[0, 1])));

    let mixed: Vec<Row> = (0..SORT_ROWS)
        .map(|_| {
            let v = if rng.chance(0.1) {
                Value::Null
            } else if rng.bool() {
                Value::Int(rng.range_i64(-1000, 1000))
            } else {
                Value::Double(rng.range_f64(-1000.0, 1000.0))
            };
            vec![v, Value::Int(rng.range_i64(0, 100))].into()
        })
        .collect();
    shapes.push(("mixed_nulls", mixed, asc(&[0, 1])));
    shapes
}

/// Times the legacy `Value`-comparator sort against the normalized-key
/// codec sort (best of `runs` each, sorting a fresh clone every run),
/// asserting the two outputs identical.
fn run_sort_bench(runs: usize) -> Vec<SortCell> {
    let mut rng = Rng::new(0x5eed_be4c);
    let mut cells = Vec::new();
    println!("Sort-kernel microbench ({SORT_ROWS} rows/shape, best of {runs})");
    println!();
    println!("| shape          | legacy rows/s | codec rows/s | speedup |");
    println!("|----------------|---------------|--------------|---------|");
    for (shape, rows, keys) in sort_workload(&mut rng) {
        let mut best = [Duration::MAX; 2];
        let mut outputs: [Option<Vec<Row>>; 2] = [None, None];
        for _ in 0..runs {
            for (i, codec) in [false, true].into_iter().enumerate() {
                let mut input = rows.clone();
                let start = Instant::now();
                sortkernel::sort_rows_with(&mut input, &keys, codec);
                best[i] = best[i].min(start.elapsed());
                outputs[i] = Some(input);
            }
        }
        assert_eq!(
            outputs[0], outputs[1],
            "{shape}: codec order diverged from legacy"
        );
        let cell = SortCell {
            shape,
            rows: SORT_ROWS,
            legacy_best: best[0],
            codec_best: best[1],
        };
        println!(
            "| {:<14} | {:>13.0} | {:>12.0} | {:>6.2}x |",
            cell.shape,
            cell.rows_per_sec(cell.legacy_best),
            cell.rows_per_sec(cell.codec_best),
            cell.speedup()
        );
        cells.push(cell);
    }
    println!();
    cells
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = parse_arg_or_exit(args.next(), "scale", 0.02);
    let runs: usize = parse_arg_or_exit(args.next(), "runs", 3);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let sort_cells = run_sort_bench(runs.max(1));

    let db = match tpcd_db(scale) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let workload: Vec<(&str, String)> = vec![
        ("q3", queries::q3_default()),
        ("q1", queries::q1("1998-09-02")),
        ("order_report", queries::order_report()),
        (
            "orders_by_date",
            "select o_orderdate, o_orderkey, o_totalprice from orders \
             order by o_orderdate, o_orderkey"
                .to_string(),
        ),
    ];

    println!("Morsel-parallelism benchmark (scale {scale}, {runs} runs, {cores} core(s))");
    println!();
    println!("| query          | threads | best         | p50 us  | p95 us  | p99 us  | sim. pages | rows  |");
    println!("|----------------|---------|--------------|---------|---------|---------|------------|-------|");

    let mut results: Vec<(&str, Vec<Cell>)> = Vec::new();
    for (name, sql) in &workload {
        let serial_rows = Session::new(&db)
            .config(OptimizerConfig::default().with_threads(1))
            .plan(sql)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .execute()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .rows;
        let mut cells = Vec::new();
        for &p in DEGREES {
            let prepared = Session::new(&db)
                .config(OptimizerConfig::default().with_threads(p))
                .plan(sql)
                .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
            // Correctness gates first: identical rows, exact rollup.
            let (out, metrics) = prepared
                .execute_instrumented()
                .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
            assert_eq!(
                out.rows, serial_rows,
                "{name} threads {p}: parallel answer diverged from serial"
            );
            metrics
                .validate()
                .unwrap_or_else(|e| panic!("{name} threads {p}: rollup broken: {e}"));
            // Then time the plain execution path: best of `runs`, with
            // every run's latency observed into a histogram so the table
            // reports tail behavior, not just the flattering minimum.
            let mut latency = Histogram::new();
            let mut best = Duration::MAX;
            let mut last = None;
            for _ in 0..runs {
                let start = Instant::now();
                let out = prepared
                    .execute()
                    .unwrap_or_else(|e| panic!("{name} threads {p}: {e}"));
                let elapsed = start.elapsed();
                latency.observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
                best = best.min(elapsed);
                last = Some(out);
            }
            let out = last.expect("runs >= 1");
            let snap = latency.snapshot();
            let cell = Cell {
                threads: p,
                best,
                p50_us: snap.p50,
                p95_us: snap.p95,
                p99_us: snap.p99,
                pages: out.io.sequential_pages + out.io.random_pages,
                rows: out.rows.len(),
            };
            println!(
                "| {:<14} | {:>7} | {:>10.3?} | {:>7} | {:>7} | {:>7} | {:>10} | {:>5} |",
                name,
                cell.threads,
                cell.best,
                cell.p50_us,
                cell.p95_us,
                cell.p99_us,
                cell.pages,
                cell.rows
            );
            cells.push(cell);
        }
        results.push((name, cells));
    }

    let json = render_json(scale, runs, cores, &sort_cells, &results);
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!();
    println!("wrote BENCH_PR5.json");
}

/// Parses an optional positional argument strictly: absent uses the
/// default, present-but-unparseable reports the error and exits 2.
fn parse_arg_or_exit<T: std::str::FromStr>(arg: Option<String>, what: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match arg {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {what} argument {raw:?} is invalid: {e}");
                std::process::exit(2);
            }
        },
    }
}

/// Hand-rolled JSON writer — the workspace is offline and carries no
/// serde dependency; the schema is flat enough to emit directly.
fn render_json(
    scale: f64,
    runs: usize,
    cores: usize,
    sort_cells: &[SortCell],
    results: &[(&str, Vec<Cell>)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"sort_key_codec_and_morsel_parallelism\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"runs\": {runs},");
    let _ = writeln!(s, "  \"cores\": {cores},");
    s.push_str("  \"sort_kernel\": [\n");
    for (i, c) in sort_cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"shape\": \"{}\", \"rows\": {}, \"legacy_rows_per_sec\": {:.0}, \
             \"codec_rows_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            c.shape,
            c.rows,
            c.rows_per_sec(c.legacy_best),
            c.rows_per_sec(c.codec_best),
            c.speedup()
        );
        s.push_str(if i + 1 < sort_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"queries\": [\n");
    for (qi, (name, cells)) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{name}\",");
        s.push_str("      \"cells\": [\n");
        for (ci, c) in cells.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"threads\": {}, \"best_ms\": {:.3}, \"p50_us\": {}, \
                 \"p95_us\": {}, \"p99_us\": {}, \"pages\": {}, \"rows\": {}}}",
                c.threads,
                c.best.as_secs_f64() * 1e3,
                c.p50_us,
                c.p95_us,
                c.p99_us,
                c.pages,
                c.rows
            );
            s.push_str(if ci + 1 < cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ]\n");
        s.push_str(if qi + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}
