//! Regenerates the paper's plan figures as ASCII plan trees, with
//! structural checks that our optimizer chose the published shapes.
//!
//! ```text
//! cargo run -p fto-bench --bin figures            # all figures
//! cargo run -p fto-bench --bin figures -- fig7    # one figure
//! ```
//!
//! * **Figure 1** — QEP for `select a.y, sum(b.y) from a, b where
//!   a.x = b.x group by a.y`.
//! * **Figure 6** — the §6 example: one sort-ahead below two joins
//!   satisfies the merge join, the GROUP BY, and the ORDER BY.
//! * **Figure 7** — TPC-D Q3 with order optimization: early sort on the
//!   order key, ordered nested-loop join into lineitem, streaming
//!   group-by with no extra sort.
//! * **Figure 8** — Q3 with order optimization disabled: the group-by
//!   needs its own three-column sort.

use fto_bench::harness::{paper_example_db, tpcd_db, FIG1_SQL, FIG6_SQL};
use fto_bench::Session;
use fto_planner::{OptimizerConfig, PlanNode};
use fto_tpcd::queries;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let run = |name: &str| which == "all" || which == name;
    if run("fig1") {
        fig1();
    }
    if run("fig6") {
        fig6();
    }
    if run("fig7") || run("fig8") {
        fig7_fig8(&which);
    }
}

fn fig1() {
    let db = paper_example_db(2000).unwrap();
    let prepared = Session::new(&db)
        .config(OptimizerConfig::db2_1996())
        .plan(FIG1_SQL)
        .unwrap();
    println!("── Figure 1: simple QGM and QEP example ──");
    println!("{FIG1_SQL}\n");
    println!("{}", prepared.explain());
    let out = prepared.execute().unwrap();
    println!("({} groups)\n", out.num_rows());
}

fn fig6() {
    let db = paper_example_db(2000).unwrap();
    let prepared = Session::new(&db)
        .config(OptimizerConfig::db2_1996())
        .plan(FIG6_SQL)
        .unwrap();
    println!("── Figure 6: one sort-ahead satisfies merge-join, GROUP BY, and ORDER BY ──");
    println!("{FIG6_SQL}\n");
    println!("{}", prepared.explain());

    // Structural check: the group-by streams (no sort directly beneath
    // it) and the plan output needs no final sort for the ORDER BY.
    let streaming = prepared
        .plan()
        .count_ops(&|n| matches!(n, PlanNode::StreamGroupBy { .. }));
    let top_is_sort = matches!(prepared.plan().node, PlanNode::Sort { .. });
    println!(
        "[check] streaming group-by: {}  |  top-level sort avoided: {}\n",
        yes(streaming > 0),
        yes(!top_is_sort)
    );
}

fn fig7_fig8(which: &str) {
    let db = tpcd_db(0.02).unwrap();
    let sql = queries::q3_default();
    let enabled = Session::new(&db)
        .config(OptimizerConfig::db2_1996())
        .plan(&sql)
        .unwrap();
    let disabled = Session::new(&db)
        .config(OptimizerConfig::db2_1996_disabled())
        .plan(&sql)
        .unwrap();
    if which == "all" || which == "fig7" {
        println!("── Figure 7: Query 3 in the production version (order optimization on) ──\n");
        println!("{}", enabled.explain());
        let ordered_nlj = enabled
            .plan()
            .count_ops(&|n| matches!(n, PlanNode::IndexNestedLoopJoin { .. }));
        let group_sort = sort_feeding_group_by(enabled.plan());
        println!(
            "[check] ordered nested-loop join into lineitem: {}  |  group-by needs no own sort: {}\n",
            yes(ordered_nlj > 0),
            yes(!group_sort)
        );
    }
    if which == "all" || which == "fig8" {
        println!("── Figure 8: Query 3 with order optimization disabled ──\n");
        println!("{}", disabled.explain());
        let group_sort = sort_feeding_group_by(disabled.plan());
        println!(
            "[check] group-by forced to sort on all three grouping columns: {}\n",
            yes(group_sort)
        );
    }
}

/// True when a StreamGroupBy in the tree is fed directly by a Sort.
fn sort_feeding_group_by(plan: &fto_planner::Plan) -> bool {
    if let PlanNode::StreamGroupBy { input, .. } = &plan.node {
        if matches!(input.node, PlanNode::Sort { .. }) {
            return true;
        }
    }
    plan.children().iter().any(|c| sort_feeding_group_by(c))
}

fn yes(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}
