//! An interactive SQL shell over a generated TPC-D database — the
//! quickest way to poke at the optimizer.
//!
//! ```text
//! cargo run -p fto-bench --release --bin repl [-- <scale>]
//! ```
//!
//! Commands:
//!
//! * `<sql>;`            — run a query, print rows (first 20) + timing
//! * `explain <sql>;`    — show the chosen plan without running it
//! * `explain analyze <sql>;` — run it and show the plan annotated with
//!   per-operator actuals (rows, batches, self pages vs estimate, time)
//! * `explain+ <sql>;`   — the plan with per-stream order/key properties
//! * `compare <sql>;`    — plans + timings with order optimization on/off
//! * `.mode modern|1996` — operator inventory (hash ops on/off)
//! * `.tables`           — list tables
//! * `.quit`             — exit
//!
//! Set `FTO_THREADS=<p>` to run every query morsel-parallel at degree
//! `p`; `explain analyze` then shows per-worker actuals under each
//! exchange.

use fto_bench::{Session, StatementOutput};
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, TpcdConfig};
use std::io::{BufRead, Write};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    eprintln!("loading TPC-D at scale {scale}...");
    let db = build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })
    .expect("tpcd generation");
    eprintln!("ready. end statements with ';'. try: .tables, explain <sql>;, compare <sql>;");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut modern = true;
    print_prompt();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.starts_with('.') {
            match trimmed {
                ".quit" | ".exit" => break,
                ".tables" => {
                    for t in db.catalog().tables() {
                        let stats = db.catalog().stats(t.id);
                        println!("  {} ({} rows)", t.name, stats.row_count);
                    }
                }
                ".mode modern" => {
                    modern = true;
                    println!("operator inventory: modern (hash join/grouping on)");
                }
                ".mode 1996" => {
                    modern = false;
                    println!("operator inventory: 1996 (order-based only)");
                }
                other => println!("unknown command {other}"),
            }
            print_prompt();
            continue;
        }
        buffer.push_str(&line);
        buffer.push(' ');
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let statement = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if !statement.is_empty() {
            dispatch(&db, &statement, modern);
        }
        print_prompt();
    }
}

fn print_prompt() {
    print!("fto> ");
    let _ = std::io::stdout().flush();
}

/// Parallel degree for every query the shell runs, from `FTO_THREADS`
/// (default 1 = serial).
fn env_threads() -> usize {
    std::env::var("FTO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn base_config(modern: bool) -> OptimizerConfig {
    let cfg = if modern {
        OptimizerConfig::default()
    } else {
        OptimizerConfig::db2_1996()
    };
    cfg.with_threads(env_threads())
}

fn disabled_config(modern: bool) -> OptimizerConfig {
    let cfg = if modern {
        OptimizerConfig::disabled()
    } else {
        OptimizerConfig::db2_1996_disabled()
    };
    cfg.with_threads(env_threads())
}

fn dispatch(db: &Database, statement: &str, modern: bool) {
    let lower = statement.to_ascii_lowercase();
    let compile = |sql: &str, cfg: OptimizerConfig| Session::new(db).config(cfg).plan(sql);
    if let Some(sql) = lower.strip_prefix("explain+ ") {
        match compile(sql, base_config(modern)) {
            Ok(q) => println!("{}", q.explain_properties()),
            Err(e) => println!("error: {e}"),
        }
    } else if lower.starts_with("explain ") || lower.starts_with("explain\t") {
        // `explain [analyze] <sql>` is part of the statement grammar;
        // Session::run parses and dispatches it.
        match Session::new(db).config(base_config(modern)).run(&lower) {
            Ok(StatementOutput::Explain(text)) => println!("{text}"),
            Ok(StatementOutput::Rows(r)) => println!("{} rows", r.rows.len()),
            Err(e) => println!("error: {e}"),
        }
    } else if let Some(sql) = lower.strip_prefix("compare ") {
        for (label, cfg) in [
            ("order optimization ON", base_config(modern)),
            ("order optimization OFF", disabled_config(modern)),
        ] {
            match compile(sql, cfg).and_then(|q| q.execute().map(|r| (q, r))) {
                Ok((q, r)) => {
                    println!("── {label} ──");
                    println!("{}", q.explain());
                    println!("{} rows in {:?}  ({})\n", r.rows.len(), r.elapsed, r.io);
                }
                Err(e) => println!("error: {e}"),
            }
        }
    } else {
        match compile(&lower, base_config(modern)).and_then(|q| q.execute().map(|r| (q, r))) {
            Ok((q, r)) => {
                let graph = q.graph();
                let names: Vec<&str> = graph
                    .boxed(graph.root)
                    .output
                    .iter()
                    .map(|o| graph.registry.name(o.col))
                    .collect();
                println!("{}", names.join(" | "));
                for row in r.rows.iter().take(20) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                if r.rows.len() > 20 {
                    println!("... ({} rows total)", r.rows.len());
                }
                println!("{} rows in {:?}  ({})", r.rows.len(), r.elapsed, r.io);
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
