//! An interactive SQL shell over a generated TPC-D database — the
//! quickest way to poke at the optimizer.
//!
//! ```text
//! cargo run -p fto-bench --release --bin repl [-- <scale>]
//! ```
//!
//! Commands:
//!
//! * `<sql>;`            — run a query, print rows (first 20) + timing
//! * `explain <sql>;`    — show the chosen plan without running it
//! * `explain analyze <sql>;` — run it and show the plan annotated with
//!   per-operator actuals (rows, batches, self pages vs estimate, time)
//! * `explain optimizer <sql>;` — plan it and show the optimizer's
//!   decision trace (plans generated/pruned, sorts added/avoided,
//!   sort-ahead variants) with an enumeration summary
//! * `explain+ <sql>;`   — the plan with per-stream order/key properties
//! * `compare <sql>;`    — plans + timings with order optimization on/off
//! * `\metrics`          — dump the session metrics registry (counters,
//!   latency/rows/pages histograms)
//! * `\slow`             — dump the slow-query log (queries over
//!   `FTO_SLOW_MS`, default 100, **or** misestimated past
//!   `FTO_QERR_LIMIT`, with plan + worst operator + optimizer trace)
//! * `\profile <path>`   — profile every subsequent plain query: write
//!   its execution timeline to `<path>` as Chrome trace-event JSON
//!   (load in `chrome://tracing` / Perfetto) and folded stacks to
//!   `<path>.folded`; `\profile off` disables
//! * `.mode modern|1996` — operator inventory (hash ops on/off)
//! * `.tables`           — list tables
//! * `.quit`             — exit
//!
//! Environment knobs (an unparseable value is an error, not a silent
//! default): `FTO_THREADS=<p>` runs every query morsel-parallel at
//! degree `p` (`explain analyze` then shows per-worker actuals under
//! each exchange); `FTO_SLOW_MS=<ms>` sets the slow-query threshold;
//! `FTO_QERR_LIMIT=<factor>` sets the misestimation threshold (default
//! 16); `FTO_PROFILE_OUT=<path>` starts the shell with profiling on, as
//! if `\profile <path>` had been typed; `FTO_MEMORY_BUDGET=<bytes>`
//! caps per-query executor memory — sorts form spilled runs, hash
//! group-bys spill partitions, and `\metrics` grows `spill.*` /
//! `pool.*` counters; combined with `FTO_THREADS` each worker pipeline
//! runs under a budget/P sub-budget.

use fto_bench::{envknob, ObsOptions, Observability, Session, StatementOutput};
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::{build_database, TpcdConfig};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn main() {
    let scale: f64 = match std::env::args().nth(1) {
        None => 0.01,
        Some(arg) => match arg.parse() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: scale argument {arg:?} is invalid: {e}");
                std::process::exit(2);
            }
        },
    };
    let slow_ms = env_knob_or_exit::<u64>("FTO_SLOW_MS").unwrap_or(100);
    let qerr_limit = env_knob_or_exit::<f64>("FTO_QERR_LIMIT");
    let mut profile_out: Option<PathBuf> =
        env_knob_or_exit::<String>("FTO_PROFILE_OUT").map(PathBuf::from);
    // Fail on a bad FTO_THREADS / FTO_MEMORY_BUDGET now, before the data
    // load, rather than at the first statement that reads them.
    let _ = env_threads();
    let _ = env_memory_budget();
    let obs = Observability::new(ObsOptions {
        slow_query_threshold: Duration::from_millis(slow_ms),
        qerror_threshold: qerr_limit.unwrap_or(ObsOptions::default().qerror_threshold),
        ..ObsOptions::default()
    });
    eprintln!("loading TPC-D at scale {scale}...");
    let db = build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })
    .expect("tpcd generation");
    eprintln!(
        "ready. end statements with ';'. try: .tables, explain <sql>;, compare <sql>;, \\metrics"
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut modern = true;
    print_prompt();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.starts_with('\\') {
            match trimmed {
                "\\metrics" => print!("{}", obs.metrics_snapshot()),
                "\\slow" => print!("{}", obs.slow_log().render()),
                "\\profile off" => {
                    profile_out = None;
                    println!("profiling off");
                }
                "\\profile" => match &profile_out {
                    Some(p) => println!("profiling to {}", p.display()),
                    None => println!("profiling off (use \\profile <path>)"),
                },
                other => {
                    if let Some(path) = other.strip_prefix("\\profile ") {
                        profile_out = Some(PathBuf::from(path.trim()));
                        println!(
                            "profiling plain queries to {} (+ .folded)",
                            profile_out.as_ref().unwrap().display()
                        );
                    } else {
                        println!("unknown command {other}");
                    }
                }
            }
            print_prompt();
            continue;
        }
        if trimmed.starts_with('.') {
            match trimmed {
                ".quit" | ".exit" => break,
                ".tables" => {
                    for t in db.catalog().tables() {
                        let stats = db.catalog().stats(t.id);
                        println!("  {} ({} rows)", t.name, stats.row_count);
                    }
                }
                ".mode modern" => {
                    modern = true;
                    println!("operator inventory: modern (hash join/grouping on)");
                }
                ".mode 1996" => {
                    modern = false;
                    println!("operator inventory: 1996 (order-based only)");
                }
                other => println!("unknown command {other}"),
            }
            print_prompt();
            continue;
        }
        buffer.push_str(&line);
        buffer.push(' ');
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let statement = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if !statement.is_empty() {
            dispatch(&db, &obs, &statement, modern, profile_out.as_deref());
        }
        print_prompt();
    }
}

fn print_prompt() {
    print!("fto> ");
    let _ = std::io::stdout().flush();
}

/// Reads an environment knob strictly: unset returns `None`, an
/// unparseable value reports the error and exits with status 2.
fn env_knob_or_exit<T: std::str::FromStr>(name: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    match envknob::env_parse::<T>(name) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Parallel degree for every query the shell runs, from `FTO_THREADS`
/// (default 1 = serial).
fn env_threads() -> usize {
    env_knob_or_exit::<usize>("FTO_THREADS").unwrap_or(1)
}

/// Per-query executor memory budget in bytes, from `FTO_MEMORY_BUDGET`
/// (default unbounded).
fn env_memory_budget() -> Option<usize> {
    env_knob_or_exit::<usize>("FTO_MEMORY_BUDGET")
}

fn apply_knobs(cfg: OptimizerConfig) -> OptimizerConfig {
    let cfg = cfg.with_threads(env_threads());
    match env_memory_budget() {
        Some(bytes) => cfg.with_memory_budget(bytes),
        None => cfg,
    }
}

fn base_config(modern: bool) -> OptimizerConfig {
    apply_knobs(if modern {
        OptimizerConfig::default()
    } else {
        OptimizerConfig::db2_1996()
    })
}

fn disabled_config(modern: bool) -> OptimizerConfig {
    apply_knobs(if modern {
        OptimizerConfig::disabled()
    } else {
        OptimizerConfig::db2_1996_disabled()
    })
}

/// Writes one profiled execution's timeline artifacts: Chrome
/// trace-event JSON at `path`, folded flamegraph stacks at
/// `path.folded`.
fn write_profile(path: &Path, profile: &fto_bench::ExecutionProfile) {
    let folded = PathBuf::from(format!("{}.folded", path.display()));
    match std::fs::write(path, profile.to_chrome_trace())
        .and_then(|()| std::fs::write(&folded, profile.to_folded_stacks()))
    {
        Ok(()) => println!(
            "profile: {} events in {} lanes -> {} (+ {})",
            profile.event_count(),
            profile.lanes.len(),
            path.display(),
            folded.display()
        ),
        Err(e) => println!("profile write error: {e}"),
    }
}

fn dispatch(
    db: &Database,
    obs: &Observability,
    statement: &str,
    modern: bool,
    profile_out: Option<&Path>,
) {
    let lower = statement.to_ascii_lowercase();
    let session = |cfg: OptimizerConfig| Session::new(db).config(cfg).observe(obs.clone());
    let compile = |sql: &str, cfg: OptimizerConfig| session(cfg).plan(sql);
    if let Some(sql) = lower.strip_prefix("explain+ ") {
        match compile(sql, base_config(modern)) {
            Ok(q) => println!("{}", q.explain_properties()),
            Err(e) => println!("error: {e}"),
        }
    } else if lower.starts_with("explain ") || lower.starts_with("explain\t") {
        // `explain [analyze | optimizer] <sql>` is part of the statement
        // grammar; Session::run parses and dispatches it.
        match session(base_config(modern)).run(&lower) {
            Ok(StatementOutput::Explain(text)) => println!("{text}"),
            Ok(StatementOutput::Rows(r)) => println!("{} rows", r.num_rows()),
            Err(e) => println!("error: {e}"),
        }
    } else if let Some(sql) = lower.strip_prefix("compare ") {
        for (label, cfg) in [
            ("order optimization ON", base_config(modern)),
            ("order optimization OFF", disabled_config(modern)),
        ] {
            match compile(sql, cfg).and_then(|q| q.execute().map(|r| (q, r))) {
                Ok((q, r)) => {
                    println!("── {label} ──");
                    println!("{}", q.explain());
                    println!("{} rows in {:?}  ({})\n", r.num_rows(), r.elapsed, r.io);
                }
                Err(e) => println!("error: {e}"),
            }
        }
    } else {
        // Plain query. With `\profile` active, run through the profiled
        // path (identical rows and totals) and write the timeline out.
        fn run<'db>(
            q: fto_bench::PreparedQuery<'db>,
            profile_out: Option<&Path>,
        ) -> fto_common::Result<(fto_bench::PreparedQuery<'db>, fto_bench::QueryOutput)> {
            match profile_out {
                Some(path) => q.execute_profiled().map(|(r, _, profile)| {
                    write_profile(path, &profile);
                    (q, r)
                }),
                None => q.execute().map(|r| (q, r)),
            }
        }
        match compile(&lower, base_config(modern)).and_then(|q| run(q, profile_out)) {
            Ok((q, r)) => {
                let graph = q.graph();
                let names: Vec<&str> = graph
                    .boxed(graph.root)
                    .output
                    .iter()
                    .map(|o| graph.registry.name(o.col))
                    .collect();
                println!("{}", names.join(" | "));
                for row in r.rows().iter().take(20) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                if r.num_rows() > 20 {
                    println!("... ({} rows total)", r.num_rows());
                }
                println!("{} rows in {:?}  ({})", r.num_rows(), r.elapsed, r.io);
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
