//! Reusable experiment runners behind the table/figure binaries and the
//! Criterion benches. Each function regenerates one artifact of the
//! paper's evaluation; DESIGN.md maps artifacts to these entry points.

use crate::session::{Compiled, Session};
use fto_common::Result;
use fto_planner::{OptimizerConfig, PlanNode};
use fto_tpcd::{build_database, queries, TpcdConfig};
use std::time::Duration;

/// Outcome of one Table 1 cell: a timed Q3 execution.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// Elapsed wall-clock time (best of `runs`).
    pub elapsed: Duration,
    /// Simulated weighted page cost.
    pub page_cost: f64,
    /// Number of sorts in the plan.
    pub sorts: usize,
    /// Number of result rows (sanity check across modes).
    pub rows: usize,
}

/// Table 1: Q3 elapsed time with order optimization enabled vs disabled.
pub fn table1(scale: f64, runs: usize) -> Result<(Table1Cell, Table1Cell)> {
    let session = Session::new(build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })?);
    let sql = queries::q3_default();
    // The paper's comparison isolates order *reasoning* over the 1996
    // operator inventory (no hash join / hash grouping existed in DB2/CS
    // when the paper was written; Figures 7-8 are pure sort/merge/NLJ).
    let enabled = run_cell(&session, &sql, OptimizerConfig::db2_1996(), runs)?;
    let disabled = run_cell(&session, &sql, OptimizerConfig::db2_1996_disabled(), runs)?;
    Ok((enabled, disabled))
}

fn run_cell(
    session: &Session,
    sql: &str,
    config: OptimizerConfig,
    runs: usize,
) -> Result<Table1Cell> {
    let compiled = session.compile(sql, config)?;
    let mut best = Duration::MAX;
    let mut rows = 0;
    let mut page_cost = 0.0;
    for _ in 0..runs.max(1) {
        let result = session.execute(&compiled)?;
        best = best.min(result.elapsed);
        rows = result.rows.len();
        page_cost = result.io.weighted_page_cost();
    }
    Ok(Table1Cell {
        elapsed: best,
        page_cost,
        sorts: compiled
            .plan
            .count_ops(&|n| matches!(n, PlanNode::Sort { .. })),
        rows,
    })
}

/// Compiles Q3 in both modes and returns the two explain trees
/// (Figures 7 and 8).
pub fn q3_plans(scale: f64) -> Result<(Compiled, Compiled)> {
    let session = Session::new(build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })?);
    let sql = queries::q3_default();
    let enabled = session.compile(&sql, OptimizerConfig::db2_1996())?;
    let disabled = session.compile(&sql, OptimizerConfig::db2_1996_disabled())?;
    Ok((enabled, disabled))
}

/// The §5.2 enumeration-complexity experiment: planner work vs the number
/// of sort-ahead orders admitted. Returns `(n, plans_generated)` pairs.
pub fn enumeration_complexity(scale: f64, max_orders: usize) -> Result<Vec<(usize, u64)>> {
    let session = Session::new(build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })?);
    let sql = queries::q3_default();
    let mut out = Vec::new();
    for n in 0..=max_orders {
        let cfg = OptimizerConfig {
            sort_ahead: n > 0,
            max_sort_ahead: n,
            ..OptimizerConfig::default()
        };
        let compiled = session.compile(&sql, cfg)?;
        out.push((n, compiled.stats.plans_generated));
    }
    Ok(out)
}

/// One ablation run: Q3 with a single technique disabled.
pub fn ablation(scale: f64) -> Result<Vec<(String, Table1Cell)>> {
    let session = Session::new(build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })?);
    let sql = queries::q3_default();
    let configs: Vec<(&str, OptimizerConfig)> = vec![
        ("full (modern: hash ops on)", OptimizerConfig::default()),
        ("1996 inventory, order opt on", OptimizerConfig::db2_1996()),
        (
            "1996, no sort-ahead",
            OptimizerConfig {
                sort_ahead: false,
                ..OptimizerConfig::db2_1996()
            },
        ),
        (
            "1996, order opt disabled",
            OptimizerConfig::db2_1996_disabled(),
        ),
        ("modern, order opt disabled", OptimizerConfig::disabled()),
    ];
    let mut out = Vec::new();
    for (name, cfg) in configs {
        out.push((name.to_string(), run_cell(&session, &sql, cfg, 3)?));
    }
    Ok(out)
}

/// The paper's running-example schema (§1 Figure 1 and §6 Figure 6):
/// tables a(x, y), b(x, y), c(x, z) with a key on a.x and indexes on b.x
/// and c.x, loaded with correlated data.
pub fn paper_example_db(rows: i64) -> Result<fto_storage::Database> {
    use fto_catalog::{Catalog, ColumnDef, KeyDef};
    use fto_common::{DataType, Direction, Value};

    let mut cat = Catalog::new();
    let a = cat.create_table(
        "a",
        vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("y", DataType::Int),
        ],
        vec![KeyDef::primary([0])],
    )?;
    let b = cat.create_table(
        "b",
        vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("y", DataType::Int),
        ],
        vec![],
    )?;
    cat.create_index("b_x_ix", b, vec![(0, Direction::Asc)], false, true)?;
    let c = cat.create_table(
        "c",
        vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("z", DataType::Int),
        ],
        vec![],
    )?;
    cat.create_index("c_x_ix", c, vec![(0, Direction::Asc)], false, true)?;

    let mut db = fto_storage::Database::new(cat);
    let int_row = |v: &[i64]| -> fto_common::Row { v.iter().map(|&i| Value::Int(i)).collect() };
    db.load_table(a, (0..rows).map(|i| int_row(&[i, (i * 7) % 100])).collect())?;
    db.load_table(
        b,
        (0..rows * 3)
            .map(|i| int_row(&[i % rows, (i * 13) % 50]))
            .collect(),
    )?;
    db.load_table(
        c,
        (0..rows * 2)
            .map(|i| int_row(&[i % rows, (i * 3) % 25]))
            .collect(),
    )?;
    Ok(db)
}

/// Figure 1's example query over the paper's demo schema.
pub const FIG1_SQL: &str = "select a.y, sum(b.y) from a, b where a.x = b.x group by a.y";

/// Figure 6's example query (§6): one sort-ahead below two joins serves
/// the merge-join, the GROUP BY, and the ORDER BY.
pub const FIG6_SQL: &str = "select a.x, a.y, b.y, sum(c.z) \
     from a, b, c \
     where a.x = b.x and b.x = c.x \
     group by a.x, a.y, b.y \
     order by a.x";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_at_small_scale() {
        let (enabled, disabled) = table1(0.002, 1).unwrap();
        assert_eq!(enabled.rows, disabled.rows);
        // The enabled plan sorts no more than the disabled one.
        assert!(enabled.sorts <= disabled.sorts);
    }

    #[test]
    fn enumeration_grows_with_orders() {
        let points = enumeration_complexity(0.001, 2).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[2].1 >= points[0].1);
    }
}
