//! Reusable experiment runners behind the table/figure binaries and the
//! timing benches. Each function regenerates one artifact of the
//! paper's evaluation; DESIGN.md maps artifacts to these entry points.

use fto_common::{FtoError, Result};
use fto_exec::Session;
use fto_planner::{OptimizerConfig, Plan, PlanNode};
use fto_storage::Database;
use fto_tpcd::{build_database, queries, TpcdConfig};
use std::time::Duration;

/// Builds the TPC-D database the Q3 experiments run over.
pub fn tpcd_db(scale: f64) -> Result<Database> {
    build_database(TpcdConfig {
        scale,
        ..TpcdConfig::default()
    })
}

/// Outcome of one Table 1 cell: a timed Q3 execution.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// Elapsed wall-clock time (best of `runs`).
    pub elapsed: Duration,
    /// Simulated weighted page cost.
    pub page_cost: f64,
    /// Number of sorts in the plan.
    pub sorts: usize,
    /// Number of result rows (sanity check across modes).
    pub rows: usize,
}

/// Table 1: Q3 elapsed time with order optimization enabled vs disabled.
pub fn table1(scale: f64, runs: usize) -> Result<(Table1Cell, Table1Cell)> {
    let db = tpcd_db(scale)?;
    let sql = queries::q3_default();
    // The paper's comparison isolates order *reasoning* over the 1996
    // operator inventory (no hash join / hash grouping existed in DB2/CS
    // when the paper was written; Figures 7-8 are pure sort/merge/NLJ).
    let enabled = run_cell(&db, &sql, OptimizerConfig::db2_1996(), runs)?;
    let disabled = run_cell(&db, &sql, OptimizerConfig::db2_1996_disabled(), runs)?;
    Ok((enabled, disabled))
}

/// Compiles once, executes `runs` times through the streaming engine,
/// and reports the best run.
pub fn run_cell(
    db: &Database,
    sql: &str,
    config: OptimizerConfig,
    runs: usize,
) -> Result<Table1Cell> {
    let prepared = Session::new(db).config(config).plan(sql)?;
    let mut best = Duration::MAX;
    let mut rows = 0;
    let mut page_cost = 0.0;
    for _ in 0..runs.max(1) {
        let out = prepared.execute()?;
        best = best.min(out.elapsed);
        rows = out.num_rows();
        page_cost = out.io.weighted_page_cost();
    }
    Ok(Table1Cell {
        elapsed: best,
        page_cost,
        sorts: prepared
            .plan()
            .count_ops(&|n| matches!(n, PlanNode::Sort { .. })),
        rows,
    })
}

/// One row of a cost-model calibration report: an operator's estimated
/// self cost against the weighted page cost it actually incurred.
#[derive(Debug, Clone)]
pub struct OpCalibration {
    /// Pre-order plan-node id (matches `PlanMetrics` slots and
    /// `explain_annotated` numbering).
    pub id: usize,
    /// Operator name (`Plan::op_name`).
    pub name: String,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Rows actually produced.
    pub actual_rows: u64,
    /// Estimated self cost, net of children (page-calibrated units).
    pub est_self_cost: f64,
    /// Weighted page cost the operator itself actually charged.
    pub actual_wpc: f64,
    /// True when estimate and actual diverge by more than the report's
    /// factor (and the operator's I/O footprint is at least a page).
    pub flagged: bool,
}

/// Executes `sql` instrumented and compares, per operator, the
/// optimizer's estimated self cost against the
/// [`fto_storage::IoStats::weighted_page_cost`] the operator actually
/// charged. An operator is flagged when the two diverge by more than
/// `factor` in either direction; operators whose footprint stays under
/// one page on both sides are never flagged (pure-CPU operators measure
/// nothing the page model can confirm).
pub fn calibration_report(
    db: &Database,
    sql: &str,
    config: OptimizerConfig,
    factor: f64,
) -> Result<Vec<OpCalibration>> {
    fn walk(p: &Plan, ests: &mut Vec<(String, f64, f64)>) {
        ests.push((p.op_name().to_string(), p.cost.rows, p.self_cost()));
        for c in p.children() {
            walk(c, ests);
        }
    }
    let prepared = Session::new(db).config(config).plan(sql)?;
    let (_, metrics) = prepared.execute_instrumented()?;
    metrics.validate().map_err(FtoError::internal)?;
    let mut ests = Vec::new();
    walk(prepared.plan(), &mut ests);
    let factor = factor.max(1.0);
    let mut out = Vec::with_capacity(ests.len());
    for (id, (name, est_rows, est_self_cost)) in ests.into_iter().enumerate() {
        let self_io = metrics
            .self_io(id)
            .ok_or_else(|| FtoError::internal("inconsistent metric attribution"))?;
        let actual_wpc = self_io.weighted_page_cost();
        let material = actual_wpc.max(est_self_cost) >= 1.0;
        let flagged = material
            && (actual_wpc > est_self_cost * factor || est_self_cost > actual_wpc * factor);
        out.push(OpCalibration {
            id,
            name,
            est_rows,
            actual_rows: metrics.ops[id].rows,
            est_self_cost,
            actual_wpc,
            flagged,
        });
    }
    Ok(out)
}

/// The §5.2 enumeration-complexity experiment: planner work vs the number
/// of sort-ahead orders admitted. Returns `(n, plans_generated)` pairs.
pub fn enumeration_complexity(scale: f64, max_orders: usize) -> Result<Vec<(usize, u64)>> {
    let db = tpcd_db(scale)?;
    let sql = queries::q3_default();
    let mut out = Vec::new();
    for n in 0..=max_orders {
        let cfg = OptimizerConfig::default()
            .with_sort_ahead(n > 0)
            .with_max_sort_ahead(n);
        let prepared = Session::new(&db).config(cfg).plan(&sql)?;
        out.push((n, prepared.planner_stats().plans_generated));
    }
    Ok(out)
}

/// One ablation run: Q3 with a single technique disabled.
pub fn ablation(scale: f64) -> Result<Vec<(String, Table1Cell)>> {
    let db = tpcd_db(scale)?;
    let sql = queries::q3_default();
    let configs: Vec<(&str, OptimizerConfig)> = vec![
        ("full (modern: hash ops on)", OptimizerConfig::default()),
        ("1996 inventory, order opt on", OptimizerConfig::db2_1996()),
        (
            "1996, no sort-ahead",
            OptimizerConfig::db2_1996().with_sort_ahead(false),
        ),
        (
            "1996, order opt disabled",
            OptimizerConfig::db2_1996_disabled(),
        ),
        ("modern, order opt disabled", OptimizerConfig::disabled()),
    ];
    let mut out = Vec::new();
    for (name, cfg) in configs {
        out.push((name.to_string(), run_cell(&db, &sql, cfg, 3)?));
    }
    Ok(out)
}

/// The paper's running-example schema (§1 Figure 1 and §6 Figure 6):
/// tables a(x, y), b(x, y), c(x, z) with a key on a.x and indexes on b.x
/// and c.x, loaded with correlated data.
pub fn paper_example_db(rows: i64) -> Result<fto_storage::Database> {
    use fto_catalog::{Catalog, ColumnDef, KeyDef};
    use fto_common::{DataType, Direction, Value};

    let mut cat = Catalog::new();
    let a = cat.create_table(
        "a",
        vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("y", DataType::Int),
        ],
        vec![KeyDef::primary([0])],
    )?;
    let b = cat.create_table(
        "b",
        vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("y", DataType::Int),
        ],
        vec![],
    )?;
    cat.create_index("b_x_ix", b, vec![(0, Direction::Asc)], false, true)?;
    let c = cat.create_table(
        "c",
        vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("z", DataType::Int),
        ],
        vec![],
    )?;
    cat.create_index("c_x_ix", c, vec![(0, Direction::Asc)], false, true)?;

    let mut db = fto_storage::Database::new(cat);
    let int_row = |v: &[i64]| -> fto_common::Row { v.iter().map(|&i| Value::Int(i)).collect() };
    db.load_table(a, (0..rows).map(|i| int_row(&[i, (i * 7) % 100])).collect())?;
    db.load_table(
        b,
        (0..rows * 3)
            .map(|i| int_row(&[i % rows, (i * 13) % 50]))
            .collect(),
    )?;
    db.load_table(
        c,
        (0..rows * 2)
            .map(|i| int_row(&[i % rows, (i * 3) % 25]))
            .collect(),
    )?;
    Ok(db)
}

/// Figure 1's example query over the paper's demo schema.
pub const FIG1_SQL: &str = "select a.y, sum(b.y) from a, b where a.x = b.x group by a.y";

/// Figure 6's example query (§6): one sort-ahead below two joins serves
/// the merge-join, the GROUP BY, and the ORDER BY.
pub const FIG6_SQL: &str = "select a.x, a.y, b.y, sum(c.z) \
     from a, b, c \
     where a.x = b.x and b.x = c.x \
     group by a.x, a.y, b.y \
     order by a.x";

#[cfg(test)]
mod tests {
    use super::*;
    use fto_exec::PreparedQuery;

    #[test]
    fn table1_shape_holds_at_small_scale() {
        let (enabled, disabled) = table1(0.002, 1).unwrap();
        assert_eq!(enabled.rows, disabled.rows);
        // The enabled plan sorts no more than the disabled one.
        assert!(enabled.sorts <= disabled.sorts);
    }

    #[test]
    fn enumeration_grows_with_orders() {
        let points = enumeration_complexity(0.001, 2).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[2].1 >= points[0].1);
    }

    #[test]
    fn q3_runs_in_both_modes_with_same_rows() {
        let db = tpcd_db(0.002).unwrap();
        let sql = queries::q3_default();
        let enabled = Session::new(&db)
            .config(OptimizerConfig::db2_1996())
            .plan(&sql)
            .unwrap();
        let disabled = Session::new(&db)
            .config(OptimizerConfig::db2_1996_disabled())
            .plan(&sql)
            .unwrap();
        let r1 = enabled.execute().unwrap();
        let r2 = disabled.execute().unwrap();
        // Same answer regardless of optimization.
        assert_eq!(r1.rows(), r2.rows());
        assert!(!r1.rows().is_empty());
        // Output ordered by rev desc, o_orderdate.
        for w in r1.rows().windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let ra = a[1].as_double().unwrap();
            let rb = b[1].as_double().unwrap();
            assert!(
                ra > rb || (ra == rb && a[2].total_cmp(&b[2]).is_le()),
                "order violated"
            );
        }
        // The enabled plan does strictly less sorting work.
        let sorts = |q: &PreparedQuery| q.plan().count_ops(&|n| matches!(n, PlanNode::Sort { .. }));
        assert!(sorts(&enabled) <= sorts(&disabled), "{}", enabled.explain());
    }

    #[test]
    fn calibration_report_covers_every_operator() {
        let db = tpcd_db(0.002).unwrap();
        let sql = queries::q3_default();
        let report = calibration_report(&db, &sql, OptimizerConfig::default(), 3.0).unwrap();
        let prepared = Session::new(&db).plan(&sql).unwrap();
        assert_eq!(report.len(), prepared.plan().count_ops(&|_| true));
        assert_eq!(report[0].id, 0);
        // Something in the plan actually touched pages.
        assert!(report.iter().any(|o| o.actual_wpc > 0.0), "{report:?}");
        // CPU-only operators (filters, projects) are never flagged.
        for op in &report {
            if op.actual_wpc < 1.0 && op.est_self_cost < 1.0 {
                assert!(!op.flagged, "{op:?}");
            }
        }
    }

    #[test]
    fn explain_uses_column_names() {
        let db = tpcd_db(0.002).unwrap();
        let q = Session::new(&db).plan(&queries::q3_default()).unwrap();
        let text = q.explain();
        assert!(text.contains("group-by"), "{text}");
        assert!(
            text.contains("rev") || text.contains("o_orderdate"),
            "{text}"
        );
    }

    #[test]
    fn section6_example_runs() {
        let db = tpcd_db(0.002).unwrap();
        let out = Session::new(&db)
            .execute(&queries::section6_example())
            .unwrap();
        assert!(!out.rows().is_empty());
        // Ordered by o_orderkey.
        let mut last = i64::MIN;
        for row in out.rows() {
            let k = row[0].as_int().unwrap();
            assert!(k >= last);
            last = k;
        }
    }
}
