//! The shared emp/dept differential-test corpus: one small two-table
//! database with enough indexes to exercise every access path, plus the
//! 30-query workload the end-to-end, differential, and trace-determinism
//! suites all run. Lives here (rather than in a test file) so every
//! suite exercises literally the same queries against literally the same
//! data.

use fto_catalog::{Catalog, ColumnDef, KeyDef};
use fto_common::{DataType, Direction, Value};
use fto_storage::Database;

/// The emp/dept schema the end-to-end suites exercise: 12 departments,
/// 400 employees, a primary key on each table, and two secondary indexes
/// on `emp` (by department; by grade then id).
pub fn emp_db() -> Database {
    let mut cat = Catalog::new();
    let dept = cat
        .create_table(
            "dept",
            vec![
                ColumnDef::new("dept_id", DataType::Int),
                ColumnDef::new("dept_name", DataType::Str),
                ColumnDef::new("budget", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    let emp = cat
        .create_table(
            "emp",
            vec![
                ColumnDef::new("emp_id", DataType::Int),
                ColumnDef::new("emp_dept", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
                ColumnDef::new("grade", DataType::Int),
            ],
            vec![KeyDef::primary([0])],
        )
        .unwrap();
    cat.create_index("emp_dept_ix", emp, vec![(1, Direction::Asc)], false, false)
        .unwrap();
    cat.create_index(
        "emp_grade_ix",
        emp,
        vec![(3, Direction::Asc), (0, Direction::Asc)],
        false,
        false,
    )
    .unwrap();
    let mut db = Database::new(cat);
    db.load_table(
        dept,
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("dept{i}")),
                    Value::Int(1000 * (i % 5)),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db.load_table(
        emp,
        (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Int(30_000 + (i * 97) % 50_000),
                    Value::Int(i % 5),
                ]
                .into_boxed_slice()
            })
            .collect(),
    )
    .unwrap();
    db
}

/// The workload corpus over [`emp_db`]: sorts, group-bys, distinct,
/// views, unions, HAVING, outer joins, IN-subqueries, LIMIT — every
/// statement shape the engine supports.
pub const EMP_QUERIES: &[&str] = &[
    "select emp_id, salary from emp where grade = 3 order by emp_id",
    "select emp_id, grade from emp where emp_dept = 2 order by grade desc, emp_id",
    "select dept_name, count(*) as n, sum(salary) as total \
     from dept, emp where dept_id = emp_dept group by dept_name order by dept_name",
    "select dept_id, dept_name, budget, count(*) as n from dept, emp \
     where dept_id = emp_dept group by dept_id, dept_name, budget order by dept_id",
    "select distinct grade from emp order by grade",
    "select distinct emp_dept, grade from emp order by emp_dept, grade",
    "select v.emp_id, v.salary from \
     (select emp_id, salary from emp where grade = 1) as v order by v.emp_id",
    "select emp_dept, sum(salary * 2) as double_pay, avg(salary) as pay, \
     min(salary) as lo, max(salary) as hi from emp group by emp_dept order by emp_dept",
    "select emp_dept, count(distinct grade) as g from emp group by emp_dept order by emp_dept",
    "select emp_id from emp where salary >= 40000 and salary < 60000 and grade <> 0 \
     order by emp_id",
    "select e.emp_id, d.dept_name, b.emp_id from emp e, dept d, emp b \
     where e.emp_dept = d.dept_id and b.emp_id = e.emp_id order by e.emp_id",
    "select emp_id, salary from emp order by salary desc, emp_id limit 7",
    "select emp_id from emp limit 5",
    "select grade from emp where grade < 2 union all select grade from emp where grade < 2 \
     order by 1",
    "select grade from emp where grade < 2 union select grade from emp where grade < 2 \
     order by 1",
    "select emp_id from emp where grade = 0 union all select emp_id from emp where grade = 1 \
     order by emp_id desc limit 4",
    "select emp_dept, count(*) as n from emp group by emp_dept having count(*) > 33 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having min(salary) < 31000 \
     order by emp_dept",
    "select emp_dept, count(*) as n from emp group by emp_dept having emp_dept * 2 >= 20 \
     order by emp_dept",
    "select dept_name, emp_id from dept join emp on dept_id = emp_dept order by emp_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and emp_id < 3 \
     order by dept_id, emp_id",
    "select dept_id, count(emp_id) as n from dept \
     left join emp on dept_id = emp_dept and grade = 0 group by dept_id order by dept_id",
    "select count(*) as n, sum(salary) as s from emp where grade = 99",
    "select dept_id, emp_id from dept \
     left join emp on dept_id = emp_dept and grade = 0 and emp_id < 50 \
     where emp_id is null order by dept_id",
    "select dept_id, emp_id from dept left join emp on dept_id = emp_dept and grade = 9 \
     where emp_id is not null order by dept_id",
    "select emp_id, emp_dept from emp \
     where emp_dept in (select dept_id from dept where budget = 0) order by emp_id",
    "select dept_id from dept where dept_id in (select emp_dept from emp where grade = 1) \
     order by dept_id",
    "select emp_id from emp where grade = 99 order by emp_id",
    "select grade, emp_id from emp where grade = 2 order by grade, emp_id",
];
