//! Benchmark harnesses regenerating the paper's tables and figures.
//!
//! The compile-and-execute pipeline itself lives in
//! [`fto_exec::Session`]; this crate layers the paper's experiments on
//! top. The binaries in `src/bin/` regenerate every table and figure of
//! the paper (see DESIGN.md's experiment index); the benches in
//! `benches/` time the same workloads with a plain best-of-N harness.

#![deny(missing_docs)]

pub mod corpus;
pub mod envknob;
pub mod harness;

pub use fto_exec::{
    ExecutionProfile, ObsOptions, Observability, PlanMetrics, PreparedQuery, QueryOutput, Session,
    StatementOutput,
};
