//! The benchmark harness and the `Session` facade tying the whole stack
//! together: SQL → QGM → rewrites → order scan → cost-based plan →
//! execution.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper (see DESIGN.md's experiment index); the Criterion benches in
//! `benches/` measure the same workloads under the harness.

#![deny(missing_docs)]

pub mod harness;
pub mod session;

pub use session::{Compiled, Session};
