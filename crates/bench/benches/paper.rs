//! Timing benches regenerating the paper's evaluation with a plain
//! best-of-N harness (the container is offline, so no external bench
//! framework — `cargo bench -p fto-bench --bench paper`):
//!
//! * `table1/q3_order_opt_{on,off}` — Table 1's two cells;
//! * `fig6/section6_{on,off}` — the §6 example query;
//! * `ablation/*` — the design-choice ablations from DESIGN.md;
//! * `enumeration/*` — planning cost vs admitted sort-ahead orders.

use fto_bench::harness::{paper_example_db, tpcd_db, FIG6_SQL};
use fto_bench::Session;
use fto_planner::OptimizerConfig;
use fto_storage::Database;
use fto_tpcd::queries;
use std::time::{Duration, Instant};

const SCALE: f64 = 0.005;
const RUNS: usize = 10;

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    let mut best = Duration::MAX;
    for _ in 0..RUNS {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    println!("{name:<40} best of {RUNS}: {best:>12.3?}");
}

fn bench_execution(db: &Database, group: &str, cases: &[(&str, OptimizerConfig)]) {
    for (name, cfg) in cases {
        let prepared = Session::new(db)
            .config(cfg.clone())
            .plan(&queries::q3_default())
            .expect("compile");
        bench(&format!("{group}/{name}"), || {
            prepared.execute().expect("execute").num_rows()
        });
    }
}

fn main() {
    let db = tpcd_db(SCALE).expect("tpcd generation");

    bench_execution(
        &db,
        "table1",
        &[
            ("q3_order_opt_on", OptimizerConfig::db2_1996()),
            ("q3_order_opt_off", OptimizerConfig::db2_1996_disabled()),
        ],
    );

    let example = paper_example_db(3000).expect("example db");
    for (name, cfg) in [
        ("section6_on", OptimizerConfig::db2_1996()),
        ("section6_off", OptimizerConfig::db2_1996_disabled()),
    ] {
        let prepared = Session::new(&example)
            .config(cfg)
            .plan(FIG6_SQL)
            .expect("compile");
        bench(&format!("fig6/{name}"), || {
            prepared.execute().expect("execute").num_rows()
        });
    }

    bench_execution(
        &db,
        "ablation",
        &[
            ("full_modern", OptimizerConfig::default()),
            (
                "no_sort_ahead",
                OptimizerConfig::db2_1996().with_sort_ahead(false),
            ),
            (
                "no_merge_join",
                OptimizerConfig::db2_1996().with_merge_join(false),
            ),
            ("modern_disabled", OptimizerConfig::disabled()),
        ],
    );

    // The §5.2 complexity observation as a timing: planning cost vs
    // number of admitted sort-ahead orders.
    let sql = queries::q3_default();
    for n in [0usize, 2, 4] {
        let cfg = OptimizerConfig::default()
            .with_sort_ahead(n > 0)
            .with_max_sort_ahead(n);
        bench(&format!("enumeration/plan_q3_sort_ahead_{n}"), || {
            Session::new(&db)
                .config(cfg.clone())
                .plan(&sql)
                .expect("compile")
                .planner_stats()
                .plans_generated
        });
    }
}
