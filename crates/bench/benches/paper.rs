//! Criterion benches regenerating the paper's evaluation under a
//! statistical harness:
//!
//! * `table1/q3_order_opt_{on,off}` — Table 1's two cells;
//! * `fig6/section6_{on,off}` — the §6 example query;
//! * `ablation/*` — the design-choice ablations from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use fto_bench::harness::{paper_example_db, FIG6_SQL};
use fto_bench::Session;
use fto_planner::OptimizerConfig;
use fto_tpcd::{build_database, queries, TpcdConfig};

const SCALE: f64 = 0.005;

fn q3_session() -> Session {
    Session::new(
        build_database(TpcdConfig {
            scale: SCALE,
            ..TpcdConfig::default()
        })
        .expect("tpcd generation"),
    )
}

fn bench_table1(c: &mut Criterion) {
    let session = q3_session();
    let sql = queries::q3_default();
    let mut group = c.benchmark_group("table1");
    for (name, cfg) in [
        ("q3_order_opt_on", OptimizerConfig::db2_1996()),
        ("q3_order_opt_off", OptimizerConfig::db2_1996_disabled()),
    ] {
        let compiled = session.compile(&sql, cfg).expect("compile");
        group.bench_function(name, |b| {
            b.iter(|| session.execute(&compiled).expect("execute").rows.len())
        });
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let session = Session::new(paper_example_db(3000).expect("example db"));
    let mut group = c.benchmark_group("fig6");
    for (name, cfg) in [
        ("section6_on", OptimizerConfig::db2_1996()),
        ("section6_off", OptimizerConfig::db2_1996_disabled()),
    ] {
        let compiled = session.compile(FIG6_SQL, cfg).expect("compile");
        group.bench_function(name, |b| {
            b.iter(|| session.execute(&compiled).expect("execute").rows.len())
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let session = q3_session();
    let sql = queries::q3_default();
    let mut group = c.benchmark_group("ablation");
    let configs = [
        ("full_modern", OptimizerConfig::default()),
        (
            "no_sort_ahead",
            OptimizerConfig {
                sort_ahead: false,
                ..OptimizerConfig::db2_1996()
            },
        ),
        (
            "no_merge_join",
            OptimizerConfig {
                enable_merge_join: false,
                ..OptimizerConfig::db2_1996()
            },
        ),
        ("modern_disabled", OptimizerConfig::disabled()),
    ];
    for (name, cfg) in configs {
        let compiled = session.compile(&sql, cfg).expect("compile");
        group.bench_function(name, |b| {
            b.iter(|| session.execute(&compiled).expect("execute").rows.len())
        });
    }
    group.finish();
}

fn bench_planning_time(c: &mut Criterion) {
    // The §5.2 complexity observation as a timing: planning cost vs
    // number of admitted sort-ahead orders.
    let session = q3_session();
    let sql = queries::q3_default();
    let mut group = c.benchmark_group("enumeration");
    for n in [0usize, 2, 4] {
        let cfg = OptimizerConfig {
            sort_ahead: n > 0,
            max_sort_ahead: n,
            ..OptimizerConfig::default()
        };
        group.bench_function(format!("plan_q3_sort_ahead_{n}"), |b| {
            b.iter(|| {
                session
                    .compile(&sql, cfg.clone())
                    .expect("compile")
                    .stats
                    .plans_generated
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig6, bench_ablations, bench_planning_time
);
criterion_main!(benches);
