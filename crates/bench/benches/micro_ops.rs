//! Microbenchmarks of the four fundamental operations themselves
//! (paper §4): reduction must be cheap enough to run on every order
//! comparison the planner makes. Plain timing harness (the container is
//! offline, so no external bench framework): each op runs in a batch of
//! `ITERS` iterations, best of `RUNS` batches.

use fto_common::{ColId, ColSet, Value};
use fto_order::{EquivalenceClasses, FdSet, FlexOrder, OrderContext, OrderSpec};
use std::time::{Duration, Instant};

const ITERS: usize = 10_000;
const RUNS: usize = 20;

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    let mut best = Duration::MAX;
    for _ in 0..RUNS {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed());
    }
    println!(
        "{name:<24} {:>10.1?}/iter (best of {RUNS} x {ITERS})",
        best / ITERS as u32
    );
}

/// A context with 32 columns, 8 equivalence pairs, 4 constants, and 4
/// key FDs — a busy multi-join query's worth of facts.
fn busy_context() -> OrderContext {
    let mut eq = EquivalenceClasses::new();
    for i in 0..8u32 {
        eq.merge(ColId(i), ColId(i + 16));
    }
    for i in 8..12u32 {
        eq.bind_constant(ColId(i), Value::Int(i as i64));
    }
    let mut fds = FdSet::new();
    let all: ColSet = (0..32u32).map(ColId).collect();
    for lead in [0u32, 4, 16, 20] {
        fds.add_key(ColSet::singleton(ColId(lead)), all.clone());
    }
    OrderContext::new(eq, &fds)
}

fn specs() -> Vec<OrderSpec> {
    vec![
        OrderSpec::ascending([ColId(8), ColId(1), ColId(17), ColId(2)]),
        OrderSpec::ascending([ColId(16), ColId(3), ColId(9)]),
        OrderSpec::ascending((0..8u32).map(ColId)),
    ]
}

fn main() {
    let ctx = busy_context();
    let specs = specs();

    bench("ops/reduce", || {
        specs
            .iter()
            .map(|s| ctx.reduce(std::hint::black_box(s)).len())
            .sum::<usize>()
    });

    bench("ops/test_order", || {
        let mut hits = 0;
        for i in &specs {
            for p in &specs {
                if ctx.test_order(std::hint::black_box(i), p) {
                    hits += 1;
                }
            }
        }
        hits
    });

    bench("ops/cover", || {
        let mut covers = 0;
        for i in &specs {
            for j in &specs {
                if ctx.cover(i, j).is_some() {
                    covers += 1;
                }
            }
        }
        covers
    });

    let targets: ColSet = (16..32u32).map(ColId).collect();
    bench("ops/homogenize", || {
        specs
            .iter()
            .filter(|s| ctx.homogenize(s, &targets).is_some())
            .count()
    });

    let flex = FlexOrder::group_by((0..6u32).map(ColId), [ColId(7)]);
    let prop = OrderSpec::ascending([
        ColId(2),
        ColId(0),
        ColId(1),
        ColId(5),
        ColId(3),
        ColId(4),
        ColId(7),
    ]);
    bench("ops/flex_satisfied_by", || {
        flex.satisfied_by(std::hint::black_box(&prop), &ctx)
    });
}
