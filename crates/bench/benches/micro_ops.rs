//! Microbenchmarks of the four fundamental operations themselves
//! (paper §4): reduction must be cheap enough to run on every order
//! comparison the planner makes.

use criterion::{criterion_group, criterion_main, Criterion};
use fto_common::{ColId, ColSet, Value};
use fto_order::{EquivalenceClasses, FdSet, FlexOrder, OrderContext, OrderSpec};

/// A context with 32 columns, 8 equivalence pairs, 4 constants, and 4
/// key FDs — a busy multi-join query's worth of facts.
fn busy_context() -> OrderContext {
    let mut eq = EquivalenceClasses::new();
    for i in 0..8u32 {
        eq.merge(ColId(i), ColId(i + 16));
    }
    for i in 8..12u32 {
        eq.bind_constant(ColId(i), Value::Int(i as i64));
    }
    let mut fds = FdSet::new();
    let all: ColSet = (0..32u32).map(ColId).collect();
    for lead in [0u32, 4, 16, 20] {
        fds.add_key(ColSet::singleton(ColId(lead)), all.clone());
    }
    OrderContext::new(eq, &fds)
}

fn specs() -> Vec<OrderSpec> {
    vec![
        OrderSpec::ascending([ColId(8), ColId(1), ColId(17), ColId(2)]),
        OrderSpec::ascending([ColId(16), ColId(3), ColId(9)]),
        OrderSpec::ascending((0..8u32).map(ColId)),
    ]
}

fn bench_reduce(c: &mut Criterion) {
    let ctx = busy_context();
    let specs = specs();
    c.bench_function("ops/reduce", |b| {
        b.iter(|| {
            specs
                .iter()
                .map(|s| ctx.reduce(std::hint::black_box(s)).len())
                .sum::<usize>()
        })
    });
}

fn bench_test_order(c: &mut Criterion) {
    let ctx = busy_context();
    let specs = specs();
    c.bench_function("ops/test_order", |b| {
        b.iter(|| {
            let mut hits = 0;
            for i in &specs {
                for p in &specs {
                    if ctx.test_order(std::hint::black_box(i), p) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
}

fn bench_cover(c: &mut Criterion) {
    let ctx = busy_context();
    let specs = specs();
    c.bench_function("ops/cover", |b| {
        b.iter(|| {
            let mut covers = 0;
            for i in &specs {
                for j in &specs {
                    if ctx.cover(i, j).is_some() {
                        covers += 1;
                    }
                }
            }
            covers
        })
    });
}

fn bench_homogenize(c: &mut Criterion) {
    let ctx = busy_context();
    let specs = specs();
    let targets: ColSet = (16..32u32).map(ColId).collect();
    c.bench_function("ops/homogenize", |b| {
        b.iter(|| {
            specs
                .iter()
                .filter(|s| ctx.homogenize(s, &targets).is_some())
                .count()
        })
    });
}

fn bench_flex_satisfaction(c: &mut Criterion) {
    let ctx = busy_context();
    let flex = FlexOrder::group_by((0..6u32).map(ColId), [ColId(7)]);
    let prop = OrderSpec::ascending([
        ColId(2),
        ColId(0),
        ColId(1),
        ColId(5),
        ColId(3),
        ColId(4),
        ColId(7),
    ]);
    c.bench_function("ops/flex_satisfied_by", |b| {
        b.iter(|| flex.satisfied_by(std::hint::black_box(&prop), &ctx))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reduce, bench_test_order, bench_cover, bench_homogenize, bench_flex_satisfaction
);
criterion_main!(benches);
