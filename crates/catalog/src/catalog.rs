//! The catalog itself: the registry of tables, indexes, and statistics.

use crate::index::IndexDef;
use crate::stats::TableStats;
use crate::table::{ColumnDef, KeyDef, TableDef};
use fto_common::{Direction, FtoError, IndexId, Result, TableId};
use std::collections::HashMap;

/// The schema registry.
#[derive(Default, Debug)]
pub struct Catalog {
    tables: Vec<TableDef>,
    indexes: Vec<IndexDef>,
    stats: Vec<TableStats>,
    table_names: HashMap<String, TableId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table and returns its id.
    ///
    /// A primary key automatically gets a clustered unique index named
    /// `<table>_pk`, mirroring DB2's behaviour of clustering by the primary
    /// index unless told otherwise.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        keys: Vec<KeyDef>,
    ) -> Result<TableId> {
        let name = name.into().to_ascii_lowercase();
        if self.table_names.contains_key(&name) {
            return Err(FtoError::Catalog(format!("table '{name}' already exists")));
        }
        for key in &keys {
            for &ord in &key.columns {
                if ord >= columns.len() {
                    return Err(FtoError::Catalog(format!(
                        "key column ordinal {ord} out of range for table '{name}'"
                    )));
                }
            }
        }
        let id = TableId::from(self.tables.len());
        let primary = keys.iter().find(|k| k.primary).cloned();
        self.tables.push(TableDef {
            id,
            name: name.clone(),
            columns,
            keys,
            indexes: vec![],
        });
        self.stats.push(TableStats::default());
        self.table_names.insert(name.clone(), id);
        if let Some(pk) = primary {
            let key: Vec<(usize, Direction)> =
                pk.columns.iter().map(|&o| (o, Direction::Asc)).collect();
            self.create_index(format!("{name}_pk"), id, key, true, true)?;
        }
        Ok(id)
    }

    /// Creates an ordered index and returns its id.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        key: Vec<(usize, Direction)>,
        unique: bool,
        clustered: bool,
    ) -> Result<IndexId> {
        let name = name.into().to_ascii_lowercase();
        let arity = self.table(table)?.arity();
        if key.is_empty() {
            return Err(FtoError::Catalog(format!("index '{name}' has no key")));
        }
        for &(ord, _) in &key {
            if ord >= arity {
                return Err(FtoError::Catalog(format!(
                    "index '{name}' key ordinal {ord} out of range"
                )));
            }
        }
        if clustered {
            let already = self.indexes_for(table).any(|ix| ix.clustered);
            if already {
                return Err(FtoError::Catalog(format!(
                    "table {table} already has a clustered index"
                )));
            }
        }
        let id = IndexId::from(self.indexes.len());
        self.indexes.push(IndexDef {
            id,
            name,
            table,
            key,
            unique,
            clustered,
        });
        self.tables[table.index()].indexes.push(id);
        Ok(id)
    }

    /// Looks a table up by id.
    pub fn table(&self, id: TableId) -> Result<&TableDef> {
        self.tables
            .get(id.index())
            .ok_or_else(|| FtoError::Catalog(format!("unknown table {id}")))
    }

    /// Looks a table up by name.
    pub fn table_by_name(&self, name: &str) -> Result<&TableDef> {
        let id = self
            .table_names
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| FtoError::Resolution(format!("unknown table '{name}'")))?;
        self.table(id)
    }

    /// Looks an index up by id.
    pub fn index(&self, id: IndexId) -> Result<&IndexDef> {
        self.indexes
            .get(id.index())
            .ok_or_else(|| FtoError::Catalog(format!("unknown index {id}")))
    }

    /// All indexes over a table.
    pub fn indexes_for(&self, table: TableId) -> impl Iterator<Item = &IndexDef> {
        self.indexes.iter().filter(move |ix| ix.table == table)
    }

    /// All tables.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// Statistics for a table (default statistics if never analysed).
    pub fn stats(&self, table: TableId) -> &TableStats {
        &self.stats[table.index()]
    }

    /// Installs statistics for a table (the engine's `RUNSTATS`).
    pub fn set_stats(&mut self, table: TableId, stats: TableStats) {
        self.stats[table.index()] = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fto_common::DataType;

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ]
    }

    #[test]
    fn create_and_lookup_table() {
        let mut cat = Catalog::new();
        let id = cat.create_table("T1", cols(), vec![]).unwrap();
        assert_eq!(cat.table(id).unwrap().name, "t1");
        assert_eq!(cat.table_by_name("t1").unwrap().id, id);
        assert_eq!(cat.table_by_name("T1").unwrap().id, id);
        assert!(cat.table_by_name("zzz").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.create_table("t", cols(), vec![]).unwrap();
        assert!(cat.create_table("T", cols(), vec![]).is_err());
    }

    #[test]
    fn primary_key_gets_clustered_index() {
        let mut cat = Catalog::new();
        let id = cat
            .create_table("t", cols(), vec![KeyDef::primary([0])])
            .unwrap();
        let ixs: Vec<_> = cat.indexes_for(id).collect();
        assert_eq!(ixs.len(), 1);
        assert!(ixs[0].clustered);
        assert!(ixs[0].unique);
        assert_eq!(ixs[0].name, "t_pk");
        assert_eq!(ixs[0].key, vec![(0, Direction::Asc)]);
    }

    #[test]
    fn second_clustered_index_rejected() {
        let mut cat = Catalog::new();
        let id = cat
            .create_table("t", cols(), vec![KeyDef::primary([0])])
            .unwrap();
        let err = cat.create_index("ix2", id, vec![(1, Direction::Asc)], false, true);
        assert!(err.is_err());
        // Non-clustered secondary index is fine.
        cat.create_index("ix3", id, vec![(1, Direction::Asc)], false, false)
            .unwrap();
        assert_eq!(cat.indexes_for(id).count(), 2);
    }

    #[test]
    fn bad_key_ordinal_rejected() {
        let mut cat = Catalog::new();
        assert!(cat
            .create_table("t", cols(), vec![KeyDef::primary([9])])
            .is_err());
        let id = cat.create_table("u", cols(), vec![]).unwrap();
        assert!(cat
            .create_index("ix", id, vec![(9, Direction::Asc)], false, false)
            .is_err());
        assert!(cat.create_index("ix", id, vec![], false, false).is_err());
    }

    #[test]
    fn stats_roundtrip() {
        let mut cat = Catalog::new();
        let id = cat.create_table("t", cols(), vec![]).unwrap();
        assert_eq!(cat.stats(id).row_count, 0);
        cat.set_stats(
            id,
            TableStats {
                row_count: 42,
                pages: 3,
                columns: vec![],
            },
        );
        assert_eq!(cat.stats(id).row_count, 42);
    }

    #[test]
    fn index_lookup_by_id() {
        let mut cat = Catalog::new();
        let t = cat.create_table("t", cols(), vec![]).unwrap();
        let ix = cat
            .create_index("ix", t, vec![(0, Direction::Desc)], false, false)
            .unwrap();
        assert_eq!(cat.index(ix).unwrap().name, "ix");
        assert!(cat.index(IndexId(99)).is_err());
    }
}
