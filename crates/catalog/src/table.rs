//! Table, column, and key definitions.

use fto_common::{DataType, IndexId, TableId};

/// A column definition within a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (lower-cased at creation).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether NULLs are admitted.
    pub nullable: bool,
}

impl ColumnDef {
    /// Creates a non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: false,
        }
    }

    /// Marks the column nullable.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// A key (uniqueness constraint) over a table.
///
/// In the paper, "key" always means a set of columns whose values determine
/// the whole record; the primary flag only influences which index the
/// storage layer clusters by default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyDef {
    /// Column ordinals (positions in the table's column list).
    pub columns: Vec<usize>,
    /// True for the table's primary key.
    pub primary: bool,
}

impl KeyDef {
    /// Creates a non-primary unique key.
    pub fn unique(columns: impl Into<Vec<usize>>) -> Self {
        KeyDef {
            columns: columns.into(),
            primary: false,
        }
    }

    /// Creates the primary key.
    pub fn primary(columns: impl Into<Vec<usize>>) -> Self {
        KeyDef {
            columns: columns.into(),
            primary: true,
        }
    }
}

/// A table definition.
#[derive(Clone, Debug)]
pub struct TableDef {
    /// The table's id in the catalog.
    pub id: TableId,
    /// Table name (lower-cased).
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Keys (uniqueness constraints).
    pub keys: Vec<KeyDef>,
    /// Indexes defined over this table.
    pub indexes: Vec<IndexId>,
}

impl TableDef {
    /// Ordinal of the named column, if it exists.
    pub fn column_ordinal(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lname)
    }

    /// The primary key, if declared.
    pub fn primary_key(&self) -> Option<&KeyDef> {
        self.keys.iter().find(|k| k.primary)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Estimated width in bytes of one row, from declared column types.
    pub fn row_width(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.data_type {
                DataType::Int | DataType::Double => 8,
                DataType::Str => 24,
                DataType::Date => 4,
                DataType::Bool => 1,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TableDef {
        TableDef {
            id: TableId(0),
            name: "orders".into(),
            columns: vec![
                ColumnDef::new("o_orderkey", DataType::Int),
                ColumnDef::new("o_custkey", DataType::Int),
                ColumnDef::new("o_comment", DataType::Str).nullable(),
            ],
            keys: vec![KeyDef::primary([0]), KeyDef::unique([1, 0])],
            indexes: vec![],
        }
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = table();
        assert_eq!(t.column_ordinal("O_CUSTKEY"), Some(1));
        assert_eq!(t.column_ordinal("o_orderkey"), Some(0));
        assert_eq!(t.column_ordinal("nope"), None);
    }

    #[test]
    fn primary_key() {
        let t = table();
        assert_eq!(t.primary_key().unwrap().columns, vec![0]);
        assert!(!t.keys[1].primary);
    }

    #[test]
    fn row_width_from_types() {
        let t = table();
        assert_eq!(t.row_width(), 8 + 8 + 24);
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn nullable_flag() {
        let t = table();
        assert!(!t.columns[0].nullable);
        assert!(t.columns[2].nullable);
    }
}
