//! Ordered (B-tree style) index definitions.

use fto_common::{Direction, IndexId, TableId};

/// One ordered index over a table.
///
/// An index provides its key order to scans (paper §3), supports equality
/// probes for nested-loop joins, and — when `clustered` — implies the base
/// rows are laid out in key order, so full and range scans read pages
/// sequentially instead of randomly.
#[derive(Clone, Debug)]
pub struct IndexDef {
    /// The index's id in the catalog.
    pub id: IndexId,
    /// Index name (lower-cased).
    pub name: String,
    /// The indexed table.
    pub table: TableId,
    /// Key parts: (column ordinal, direction), major to minor.
    pub key: Vec<(usize, Direction)>,
    /// True when the index enforces uniqueness of its key.
    pub unique: bool,
    /// True when base rows are physically clustered in this index's order.
    pub clustered: bool,
}

impl IndexDef {
    /// The ordinals of the key columns, major to minor.
    pub fn key_ordinals(&self) -> impl Iterator<Item = usize> + '_ {
        self.key.iter().map(|(o, _)| *o)
    }

    /// True when the index's leading key part is the given ordinal.
    pub fn leads_with(&self, ordinal: usize) -> bool {
        self.key.first().is_some_and(|(o, _)| *o == ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_accessors() {
        let idx = IndexDef {
            id: IndexId(0),
            name: "ix".into(),
            table: TableId(1),
            key: vec![(2, Direction::Asc), (0, Direction::Desc)],
            unique: false,
            clustered: true,
        };
        assert_eq!(idx.key_ordinals().collect::<Vec<_>>(), vec![2, 0]);
        assert!(idx.leads_with(2));
        assert!(!idx.leads_with(0));
    }
}
