//! Table and column statistics used by the planner's cardinality and cost
//! estimation.

use fto_common::Value;

/// Per-column statistics.
#[derive(Clone, Debug, Default)]
pub struct ColStats {
    /// Number of distinct values (0 when unknown).
    pub ndv: u64,
    /// Minimum value seen.
    pub min: Option<Value>,
    /// Maximum value seen.
    pub max: Option<Value>,
}

impl ColStats {
    /// Estimated selectivity of `col = constant` under uniformity.
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndv == 0 {
            0.1 // textbook default when distinct count is unknown
        } else {
            1.0 / self.ndv as f64
        }
    }

    /// Estimated selectivity of a range predicate (`<`, `>`, ...) against a
    /// constant, interpolating between min and max when both are numeric.
    pub fn range_selectivity(&self, bound: &Value, less_than: bool) -> f64 {
        let (min, max, b) = match (
            self.min.as_ref().and_then(numeric),
            self.max.as_ref().and_then(numeric),
            numeric(bound),
        ) {
            (Some(lo), Some(hi), Some(b)) if hi > lo => (lo, hi, b),
            _ => return 0.33, // textbook default
        };
        let frac = ((b - min) / (max - min)).clamp(0.0, 1.0);
        if less_than {
            frac
        } else {
            1.0 - frac
        }
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        Value::Date(d) => Some(*d as f64),
        _ => None,
    }
}

/// Per-table statistics.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: u64,
    /// Number of data pages occupied.
    pub pages: u64,
    /// Column statistics (indexed by column ordinal).
    pub columns: Vec<ColStats>,
}

impl TableStats {
    /// Builds statistics by scanning rows (the engine's `RUNSTATS`).
    pub fn from_rows<'a>(
        rows: impl IntoIterator<Item = &'a [Value]>,
        arity: usize,
        rows_per_page: u64,
    ) -> Self {
        let mut columns: Vec<ColStats> = vec![ColStats::default(); arity];
        let mut distinct: Vec<std::collections::HashSet<Value>> = vec![Default::default(); arity];
        let mut row_count = 0u64;
        for row in rows {
            row_count += 1;
            for (i, v) in row.iter().enumerate().take(arity) {
                if v.is_null() {
                    continue;
                }
                distinct[i].insert(v.clone());
                let cs = &mut columns[i];
                if cs.min.as_ref().is_none_or(|m| v < m) {
                    cs.min = Some(v.clone());
                }
                if cs.max.as_ref().is_none_or(|m| v > m) {
                    cs.max = Some(v.clone());
                }
            }
        }
        for (i, set) in distinct.into_iter().enumerate() {
            columns[i].ndv = set.len() as u64;
        }
        let rows_per_page = rows_per_page.max(1);
        TableStats {
            row_count,
            pages: row_count.div_ceil(rows_per_page).max(1),
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_computes_ndv_min_max() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(3), Value::str("b")],
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(3), Value::Null],
        ];
        let stats = TableStats::from_rows(rows.iter().map(|r| r.as_slice()), 2, 2);
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.pages, 2);
        assert_eq!(stats.columns[0].ndv, 2);
        assert_eq!(stats.columns[0].min, Some(Value::Int(1)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(3)));
        assert_eq!(stats.columns[1].ndv, 2); // NULL not counted
    }

    #[test]
    fn empty_table_occupies_one_page() {
        let stats = TableStats::from_rows(std::iter::empty(), 1, 10);
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.pages, 1);
    }

    #[test]
    fn eq_selectivity() {
        let cs = ColStats {
            ndv: 4,
            ..Default::default()
        };
        assert!((cs.eq_selectivity() - 0.25).abs() < 1e-9);
        assert!((ColStats::default().eq_selectivity() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let cs = ColStats {
            ndv: 100,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(100)),
        };
        let s = cs.range_selectivity(&Value::Int(25), true);
        assert!((s - 0.25).abs() < 1e-9);
        let s = cs.range_selectivity(&Value::Int(25), false);
        assert!((s - 0.75).abs() < 1e-9);
        // Out-of-range bound clamps.
        assert_eq!(cs.range_selectivity(&Value::Int(1000), true), 1.0);
        // Non-numeric falls back to default.
        let s = cs.range_selectivity(&Value::str("x"), true);
        assert!((s - 0.33).abs() < 1e-9);
    }

    #[test]
    fn date_ranges_are_numeric() {
        let cs = ColStats {
            ndv: 10,
            min: Some(Value::Date(0)),
            max: Some(Value::Date(10)),
        };
        let s = cs.range_selectivity(&Value::Date(5), true);
        assert!((s - 0.5).abs() < 1e-9);
    }
}
