//! The catalog: table, key, and index definitions plus table statistics.
//!
//! Everything order optimization knows about the *schema* comes from here:
//!
//! * keys (uniqueness constraints) become functional dependencies
//!   (`{key} → {all columns}`, paper §4.1);
//! * ordered indexes are the non-sort source of order properties
//!   (paper §3: "a stream's order, if any, always originates from an
//!   ordered index scan or a sort");
//! * statistics feed the planner's cost and cardinality estimates.

#![deny(missing_docs)]

pub mod catalog;
pub mod index;
pub mod stats;
pub mod table;

pub use catalog::Catalog;
pub use index::IndexDef;
pub use stats::{ColStats, TableStats};
pub use table::{ColumnDef, KeyDef, TableDef};
